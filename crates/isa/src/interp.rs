//! Functional (timing-free) machine interpreter.
//!
//! Used for differential testing of the compiler: a lowered
//! [`MachProgram`] must compute the same architectural
//! memory and return value as the IR interpreter did on the source program.
//! Checkpoint stores write color-0 slots in a shadow map; region boundaries
//! are functional no-ops.

use crate::inst::{MachAddr, MachInst};
use crate::program::MachProgram;
use crate::reg::{MOperand, NUM_PHYS_REGS};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Interpreter limits.
#[derive(Debug, Clone)]
pub struct MachInterpConfig {
    /// Maximum dynamic instructions before aborting.
    pub max_steps: u64,
}

impl Default for MachInterpConfig {
    fn default() -> Self {
        MachInterpConfig {
            max_steps: 200_000_000,
        }
    }
}

/// Failures the machine interpreter can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachInterpError {
    /// The step limit was exceeded.
    StepLimit(u64),
    /// Misaligned 8-byte access.
    Unaligned(u64),
    /// Execution ran past the last instruction.
    PcOutOfRange(u64),
}

impl fmt::Display for MachInterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachInterpError::StepLimit(n) => write!(f, "step limit of {n} exceeded"),
            MachInterpError::Unaligned(a) => write!(f, "unaligned access at {a:#x}"),
            MachInterpError::PcOutOfRange(pc) => write!(f, "pc {pc} out of range"),
        }
    }
}

impl Error for MachInterpError {}

/// Result of a functional machine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachOutcome {
    /// Returned value, if any.
    pub ret: Option<i64>,
    /// Final architectural memory (checkpoint storage excluded).
    pub memory: BTreeMap<u64, i64>,
    /// Final checkpoint storage.
    pub ckpt_memory: BTreeMap<u64, i64>,
    /// Dynamic instructions executed.
    pub dyn_insts: u64,
    /// Dynamic regular stores.
    pub dyn_stores: u64,
    /// Dynamic checkpoint stores.
    pub dyn_ckpts: u64,
    /// Dynamic loads.
    pub dyn_loads: u64,
    /// Dynamic region boundaries.
    pub dyn_boundaries: u64,
}

/// Run a machine program functionally to completion.
///
/// # Errors
///
/// See [`MachInterpError`].
pub fn run(
    program: &MachProgram,
    config: &MachInterpConfig,
) -> Result<MachOutcome, MachInterpError> {
    let mut regs = [0i64; NUM_PHYS_REGS as usize];
    for &(r, v) in &program.reg_init {
        regs[r.index()] = v;
    }
    let mut memory: BTreeMap<u64, i64> = BTreeMap::new();
    for (i, w) in program.data.words.iter().enumerate() {
        memory.insert(program.data.base + i as u64 * 8, *w);
    }
    let mut ckpt_memory: BTreeMap<u64, i64> = BTreeMap::new();
    let mut out = MachOutcome {
        ret: None,
        memory: BTreeMap::new(),
        ckpt_memory: BTreeMap::new(),
        dyn_insts: 0,
        dyn_stores: 0,
        dyn_ckpts: 0,
        dyn_loads: 0,
        dyn_boundaries: 0,
    };

    let read = |regs: &[i64], op: MOperand| -> i64 {
        match op {
            MOperand::Reg(r) => regs[r.index()],
            MOperand::Imm(v) => v,
        }
    };

    let mut pc: u64 = 0;
    loop {
        let inst = *program
            .insts
            .get(pc as usize)
            .ok_or(MachInterpError::PcOutOfRange(pc))?;
        out.dyn_insts += 1;
        if out.dyn_insts > config.max_steps {
            return Err(MachInterpError::StepLimit(config.max_steps));
        }
        let mut next = pc + 1;
        match inst {
            MachInst::Bin { op, dst, lhs, rhs } => {
                regs[dst.index()] = op.eval(regs[lhs.index()], read(&regs, rhs));
            }
            MachInst::Cmp { op, dst, lhs, rhs } => {
                regs[dst.index()] = op.eval(regs[lhs.index()], read(&regs, rhs));
            }
            MachInst::Mov { dst, src } => {
                regs[dst.index()] = read(&regs, src);
            }
            MachInst::Load { dst, addr } => {
                let a = effective(&regs, addr)?;
                regs[dst.index()] = match addr {
                    MachAddr::CkptSlot(_) => ckpt_memory.get(&a).copied().unwrap_or(0),
                    _ => memory.get(&a).copied().unwrap_or(0),
                };
                out.dyn_loads += 1;
            }
            MachInst::Store { src, addr } => {
                let a = effective(&regs, addr)?;
                memory.insert(a, read(&regs, src));
                out.dyn_stores += 1;
            }
            MachInst::Ckpt { reg } => {
                let slot = turnpike_ir::ckpt_slot_addr(reg.raw(), 0);
                ckpt_memory.insert(slot, regs[reg.index()]);
                out.dyn_ckpts += 1;
            }
            MachInst::RegionBoundary { .. } => {
                out.dyn_boundaries += 1;
            }
            MachInst::Jump { target } => next = target as u64,
            MachInst::BranchNz { cond, target } => {
                if regs[cond.index()] != 0 {
                    next = target as u64;
                }
            }
            MachInst::Ret { value } => {
                out.ret = value.map(|v| read(&regs, v));
                out.memory = memory;
                out.ckpt_memory = ckpt_memory;
                return Ok(out);
            }
            MachInst::Nop => {}
        }
        pc = next;
    }
}

fn effective(regs: &[i64], addr: MachAddr) -> Result<u64, MachInterpError> {
    let a = match addr {
        MachAddr::RegOffset(b, o) => (regs[b.index()].wrapping_add(o)) as u64,
        MachAddr::Abs(a) => a,
        MachAddr::CkptSlot(r) => turnpike_ir::ckpt_slot_addr(r.raw(), 0),
    };
    if a % 8 != 0 {
        return Err(MachInterpError::Unaligned(a));
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RegionId;
    use crate::reg::PhysReg;
    use turnpike_ir::{BinOp, CmpOp, DataSegment};

    fn r(i: u8) -> PhysReg {
        PhysReg::new(i).unwrap()
    }

    #[test]
    fn loop_with_memory() {
        // r0 = base; r1 = i; store i at base+8i for i in 0..4; return sum of loads
        let insts = vec![
            MachInst::Mov {
                dst: r(1),
                src: MOperand::Imm(0),
            },
            // loop: addr = base + i*8
            MachInst::Bin {
                op: BinOp::Shl,
                dst: r(2),
                lhs: r(1),
                rhs: MOperand::Imm(3),
            },
            MachInst::Bin {
                op: BinOp::Add,
                dst: r(2),
                lhs: r(2),
                rhs: MOperand::Reg(r(0)),
            },
            MachInst::Store {
                src: MOperand::Reg(r(1)),
                addr: MachAddr::RegOffset(r(2), 0),
            },
            MachInst::Bin {
                op: BinOp::Add,
                dst: r(1),
                lhs: r(1),
                rhs: MOperand::Imm(1),
            },
            MachInst::Cmp {
                op: CmpOp::Lt,
                dst: r(3),
                lhs: r(1),
                rhs: MOperand::Imm(4),
            },
            MachInst::BranchNz {
                cond: r(3),
                target: 1,
            },
            MachInst::Ret {
                value: Some(MOperand::Reg(r(1))),
            },
        ];
        let mut p = MachProgram::from_insts("loop", insts, DataSegment::zeroed(0x1000, 4));
        p.reg_init = vec![(r(0), 0x1000)];
        p.validate().unwrap();
        let out = run(&p, &MachInterpConfig::default()).unwrap();
        assert_eq!(out.ret, Some(4));
        assert_eq!(out.memory.get(&0x1018), Some(&3));
        assert_eq!(out.dyn_stores, 4);
    }

    #[test]
    fn ckpt_and_boundary_counters() {
        let insts = vec![
            MachInst::Mov {
                dst: r(4),
                src: MOperand::Imm(77),
            },
            MachInst::Ckpt { reg: r(4) },
            MachInst::RegionBoundary { id: RegionId(1) },
            MachInst::Ret { value: None },
        ];
        let p = MachProgram::from_insts("c", insts, DataSegment::zeroed(0, 0));
        let out = run(&p, &MachInterpConfig::default()).unwrap();
        assert_eq!(out.dyn_ckpts, 1);
        assert_eq!(out.dyn_boundaries, 1);
        assert_eq!(
            out.ckpt_memory.get(&turnpike_ir::ckpt_slot_addr(4, 0)),
            Some(&77)
        );
        assert!(out.memory.is_empty());
    }

    #[test]
    fn ckpt_slot_load_reads_shadow() {
        let insts = vec![
            MachInst::Mov {
                dst: r(2),
                src: MOperand::Imm(5),
            },
            MachInst::Ckpt { reg: r(2) },
            MachInst::Mov {
                dst: r(2),
                src: MOperand::Imm(0),
            },
            MachInst::Load {
                dst: r(2),
                addr: MachAddr::CkptSlot(r(2)),
            },
            MachInst::Ret {
                value: Some(MOperand::Reg(r(2))),
            },
        ];
        let p = MachProgram::from_insts("rb", insts, DataSegment::zeroed(0, 0));
        assert_eq!(run(&p, &MachInterpConfig::default()).unwrap().ret, Some(5));
    }

    #[test]
    fn step_limit_and_pc_errors() {
        let p = MachProgram::from_insts(
            "inf",
            vec![MachInst::Jump { target: 0 }],
            DataSegment::zeroed(0, 0),
        );
        assert_eq!(
            run(&p, &MachInterpConfig { max_steps: 10 }).unwrap_err(),
            MachInterpError::StepLimit(10)
        );
        let q = MachProgram::from_insts("off", vec![MachInst::Nop], DataSegment::zeroed(0, 0));
        assert_eq!(
            run(&q, &MachInterpConfig::default()).unwrap_err(),
            MachInterpError::PcOutOfRange(1)
        );
    }
}
