//! Unified metrics spine for the Turnpike reproduction.
//!
//! Every layer of the stack — compiler passes, the cycle-level simulator,
//! the recovery controller, fault campaigns — records its statistics into
//! one shared registry type, [`MetricSet`], keyed by the closed enums
//! [`Counter`] (integer event counts) and [`Gauge`] (floating-point point
//! samples). The evaluation harness reads figures out of the same registry
//! by key instead of reaching into per-layer stat structs.
//!
//! Design constraints, in order:
//!
//! 1. **Cheap in the hot loop.** Keys are dense enum discriminants and a
//!    [`MetricSet`] is a pair of fixed arrays, so [`MetricSet::add`] is an
//!    indexed integer add — no hashing, no allocation, no locks.
//! 2. **Mergeable across runs.** [`MetricSet::merge`] folds one run's
//!    metrics into an accumulator under each key's [`MergePolicy`]
//!    (campaign reports are exactly this fold), and
//!    [`MetricSet::delta_since`] recovers per-phase contributions (the
//!    pass manager uses it for per-pass attribution).
//! 3. **One schema.** The key enums are the single catalogue of everything
//!    the stack measures; adding a metric means adding a variant here, and
//!    every consumer can enumerate the catalogue via [`Counter::ALL`].
//!
//! The [`telemetry`] module builds the *observer* layer on top: streaming
//! rate estimation with Wilson confidence bounds, windowed throughput, a
//! bounded reservoir sampler, and Prometheus-style text exposition of a
//! [`MetricSet`].

use std::fmt;

pub mod telemetry;

pub use telemetry::{prometheus_text, RateEstimator, Reservoir, ThroughputMeter};

/// How two samples of the same counter combine under [`MetricSet::merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Event counts: occurrences add up across runs/phases.
    Sum,
    /// High-water marks: the combined value is the larger observation.
    Max,
}

macro_rules! counters {
    ($( $(#[$meta:meta])* $variant:ident => ($name:literal, $policy:ident), )+) => {
        /// Integer metric keys, the closed catalogue of event counters the
        /// stack records. Dotted names namespace the producing layer
        /// (`compile.*`, `sim.*`, `sim.clq.*`, `sim.cache.*`, `campaign.*`).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Counter {
            $( $(#[$meta])* $variant, )+
        }

        impl Counter {
            /// Every counter key, in declaration order.
            pub const ALL: &'static [Counter] = &[ $(Counter::$variant,)+ ];

            /// The dotted string name (stable; used for display and JSON).
            pub fn name(self) -> &'static str {
                match self { $(Counter::$variant => $name,)+ }
            }

            /// How samples of this counter combine across runs.
            pub fn merge_policy(self) -> MergePolicy {
                match self { $(Counter::$variant => MergePolicy::$policy,)+ }
            }
        }
    };
}

counters! {
    // — compiler passes —
    /// Checkpoints present after eager insertion (before pruning/LICM).
    CkptsInserted => ("compile.ckpts_inserted", Sum),
    /// Checkpoints removed by optimal pruning.
    CkptsPruned => ("compile.ckpts_pruned", Sum),
    /// Net checkpoints removed by LICM loop-exit sinking.
    CkptsLicmRemoved => ("compile.ckpts_licm_removed", Sum),
    /// Checkpoints shed because no protected region's recovery reads them
    /// (per-region protection policies only).
    CkptsShed => ("compile.ckpts_shed", Sum),
    /// Spill stores emitted by register allocation.
    SpillStores => ("compile.spill_stores", Sum),
    /// Spill reload loads emitted by register allocation.
    SpillLoads => ("compile.spill_loads", Sum),
    /// Virtual registers spilled.
    SpilledVregs => ("compile.spilled_vregs", Sum),
    /// Loop induction variables merged away by LIVM.
    IvsMerged => ("compile.ivs_merged", Sum),
    /// Region boundaries in the final code.
    Boundaries => ("compile.boundaries", Sum),
    /// Extra boundary-splitting fixpoint iterations taken.
    SplitIterations => ("compile.split_iterations", Sum),
    /// Machine instructions in the final program.
    FinalInsts => ("compile.final_insts", Sum),
    /// Machine instructions of a resilience-free compile of the same
    /// function (the code-size denominator).
    BaselineInsts => ("compile.baseline_insts", Sum),

    // — simulator core —
    /// Total cycles (including the verification/drain tail).
    Cycles => ("sim.cycles", Sum),
    /// Dynamic instructions committed (recovery re-execution included).
    Insts => ("sim.insts", Sum),
    /// Cycles lost waiting for a free store buffer slot.
    StallSbFull => ("sim.stall.sb_full", Sum),
    /// Cycles lost waiting on register operands.
    StallDataHazard => ("sim.stall.data_hazard", Sum),
    /// Data-hazard cycles where the stalled instruction was a checkpoint.
    StallCkptHazard => ("sim.stall.ckpt_hazard", Sum),
    /// Cycles lost to the single memory port.
    StallMemPort => ("sim.stall.mem_port", Sum),
    /// Cycles lost waiting for RBB room at a boundary.
    StallRbbFull => ("sim.stall.rbb_full", Sum),
    /// Cycles spent in recovery (flush + recovery block execution).
    RecoveryCycles => ("sim.recovery_cycles", Sum),
    /// Dynamic loads.
    Loads => ("sim.loads", Sum),
    /// Dynamic regular stores.
    Stores => ("sim.stores", Sum),
    /// Dynamic checkpoint stores.
    Ckpts => ("sim.ckpts", Sum),
    /// Regular stores fast-released via the WAR-free path.
    WarFreeReleased => ("sim.war_free_released", Sum),
    /// Checkpoints fast-released via coloring.
    ColoredReleased => ("sim.colored_released", Sum),
    /// Stores (regular + checkpoint) quarantined in the SB.
    Quarantined => ("sim.quarantined", Sum),
    /// Quarantined stores that coalesced into an existing SB entry.
    SbCoalesced => ("sim.sb_coalesced", Sum),
    /// SB entries discarded (squashed) by error recovery.
    SbDiscarded => ("sim.sb_discarded", Sum),
    /// Region boundaries committed.
    RegionsCommitted => ("sim.boundaries", Sum),
    /// Errors detected (sensor or parity).
    Detections => ("sim.detections", Sum),
    /// Detections raised by register parity / hardened-path checks.
    ParityDetections => ("sim.parity_detections", Sum),
    /// Detections raised by the acoustic sensor (WCDL-bounded).
    SensorDetections => ("sim.sensor_detections", Sum),
    /// Recoveries executed by the recovery controller.
    Recoveries => ("sim.recoveries", Sum),
    /// Peak store-buffer occupancy.
    SbPeak => ("sim.sb_peak", Max),

    // — committed load queue —
    /// Regular stores checked against the CLQ.
    ClqStoresChecked => ("sim.clq.stores_checked", Sum),
    /// Stores proven WAR-free (fast released).
    ClqWarFree => ("sim.clq.war_free", Sum),
    /// Loads recorded in the CLQ.
    ClqLoadsRecorded => ("sim.clq.loads_recorded", Sum),
    /// CLQ overflows (compact design only).
    ClqOverflows => ("sim.clq.overflows", Sum),
    /// Sum of entry occupancy sampled at each load.
    ClqOccupancySum => ("sim.clq.occupancy_sum", Sum),
    /// Occupancy samples taken.
    ClqOccupancySamples => ("sim.clq.occupancy_samples", Sum),
    /// Peak CLQ entries populated.
    ClqPeakEntries => ("sim.clq.peak_entries", Max),

    // — cache hierarchy —
    /// L1 data cache hits.
    L1Hits => ("sim.cache.l1_hits", Sum),
    /// L1 data cache misses.
    L1Misses => ("sim.cache.l1_misses", Sum),
    /// L2 cache hits.
    L2Hits => ("sim.cache.l2_hits", Sum),
    /// L2 cache misses.
    L2Misses => ("sim.cache.l2_misses", Sum),

    // — fault campaigns —
    /// Injected runs executed.
    CampaignRuns => ("campaign.runs", Sum),
    /// Runs whose final state differed from the fault-free run (SDC).
    CampaignSdc => ("campaign.sdc", Sum),
    /// Strikes that landed at or after program completion (no effect).
    CampaignPostCompletion => ("campaign.post_completion", Sum),
    CampaignHangs => ("campaign.hangs", Sum),
    /// Injected runs forked from a fault-free prefix snapshot.
    CampaignForkHits => ("campaign.fork_hits", Sum),
    /// Injected runs simulated from scratch (no usable snapshot).
    CampaignForkMisses => ("campaign.fork_misses", Sum),
    /// Fault-free prefix cycles skipped by forking (sum over forked runs).
    CampaignForkCyclesSaved => ("campaign.fork_cycles_saved", Sum),
    /// Strike runs that exited early by reconverging with the golden run.
    CampaignReplayExits => ("campaign.replay_exits", Sum),
    /// Post-convergence cycles skipped by early exit (sum over such runs).
    CampaignReplayCyclesSaved => ("campaign.replay_cycles_saved", Sum),

    // — evaluation harness —
    /// Compile requests served from the engine's compile cache.
    BenchCompileHits => ("bench.compile_cache_hits", Sum),
    /// Compile requests that ran the compiler.
    BenchCompileMisses => ("bench.compile_cache_misses", Sum),
    /// Simulation requests served from the engine's run cache.
    BenchRunHits => ("bench.run_cache_hits", Sum),
    /// Simulation requests that ran the simulator.
    BenchRunMisses => ("bench.run_cache_misses", Sum),
    /// Figure tables generated.
    BenchFigures => ("bench.figures", Sum),

    // — serving layer —
    /// Jobs admitted into the server's work queue.
    ServeAccepted => ("serve.accepted", Sum),
    /// Jobs rejected by admission control (queue full).
    ServeRejected => ("serve.rejected", Sum),
    /// Jobs that completed and returned a result.
    ServeCompleted => ("serve.completed", Sum),
    /// Jobs that failed with an error.
    ServeFailed => ("serve.failed", Sum),
    /// Jobs canceled (per-job timeout or shutdown deadline).
    ServeCanceled => ("serve.canceled", Sum),
    /// Job results served from the persistent artifact store.
    ServeStoreHits => ("serve.store_hits", Sum),
    /// Job results computed because the artifact store had no entry.
    ServeStoreMisses => ("serve.store_misses", Sum),
    /// Corrupt artifact-store entries quarantined on read.
    ServeStoreQuarantined => ("serve.store_quarantined", Sum),
    /// Peak work-queue depth observed at admission.
    ServeQueuePeak => ("serve.queue_peak", Max),
    /// Microseconds workers spent executing jobs (summed across the
    /// pool): with the server's uptime this yields worker utilization,
    /// the per-worker load signal the fleet load generator reports.
    ServeBusyMicros => ("serve.busy_us", Sum),
}

/// Floating-point metric keys (point samples, not event counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gauge {
    /// Average dynamic instructions per region (paper Fig 26).
    AvgRegionInsts,
}

impl Gauge {
    /// Every gauge key, in declaration order.
    pub const ALL: &'static [Gauge] = &[Gauge::AvgRegionInsts];

    /// The dotted string name (stable; used for display and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Gauge::AvgRegionInsts => "sim.avg_region_insts",
        }
    }
}

/// Latency-distribution metric keys. Unlike [`Counter`]s, which collapse a
/// run to one number, each histogram key retains the *shape* of a latency
/// population (the paper's claims are latency claims — SB residency,
/// detection latency, recovery penalty — and a mean hides the tail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hist {
    /// Cycles a quarantined store spent in the gated SB before draining.
    SbResidency,
    /// Cycles from region start to region verification (region length
    /// plus the WCDL epilogue plus any drain backpressure).
    VerifyLatency,
    /// Cycles from a particle strike to its detection (sensor or parity).
    DetectLatency,
    /// Cycles charged to one recovery (flush plus recovery-block
    /// re-execution).
    RecoveryPenalty,
    /// Wall-clock microseconds per compile in the evaluation harness.
    CompileMicros,
    /// Wall-clock microseconds per simulation in the evaluation harness.
    SimMicros,
    /// Wall-clock microseconds per served job, admission to final event
    /// (server side) or submit to done (loadgen client side).
    ServeJobMicros,
    /// Microseconds a served job waited in the work queue before a worker
    /// picked it up.
    ServeQueueMicros,
}

impl Hist {
    /// Every histogram key, in declaration order.
    pub const ALL: &'static [Hist] = &[
        Hist::SbResidency,
        Hist::VerifyLatency,
        Hist::DetectLatency,
        Hist::RecoveryPenalty,
        Hist::CompileMicros,
        Hist::SimMicros,
        Hist::ServeJobMicros,
        Hist::ServeQueueMicros,
    ];

    /// The dotted string name (stable; used for display and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Hist::SbResidency => "sim.hist.sb_residency_cycles",
            Hist::VerifyLatency => "sim.hist.verify_latency_cycles",
            Hist::DetectLatency => "sim.hist.detect_latency_cycles",
            Hist::RecoveryPenalty => "sim.hist.recovery_penalty_cycles",
            Hist::CompileMicros => "bench.hist.compile_us",
            Hist::SimMicros => "bench.hist.sim_us",
            Hist::ServeJobMicros => "serve.hist.job_us",
            Hist::ServeQueueMicros => "serve.hist.queue_wait_us",
        }
    }
}

/// Number of counter keys (array dimension of [`MetricSet`]).
pub const NUM_COUNTERS: usize = Counter::ALL.len();
/// Number of gauge keys (array dimension of [`MetricSet`]).
pub const NUM_GAUGES: usize = Gauge::ALL.len();
/// Number of histogram keys (array dimension of [`MetricSet`]).
pub const NUM_HISTS: usize = Hist::ALL.len();

/// Number of buckets in a [`Histogram`]: one per power of two of `u64`
/// range, plus a dedicated zero bucket.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed latency histogram.
///
/// Bucket 0 counts exact zeros; bucket `i >= 1` counts values in
/// `[2^(i-1), 2^i)`, so the 65 fixed buckets cover the whole `u64` range
/// with ~1 bit of relative precision — enough to separate "drained next
/// cycle" from "sat a full WCDL" without tuning bucket bounds per metric.
/// Recording is an increment plus a `leading_zeros`, cheap enough for the
/// simulator hot loop. Like counters, histograms are **merge-aware**
/// (bucket-wise add across runs; see [`Histogram::merge`]) and
/// **delta-aware** (bucket-wise subtract for per-phase attribution; see
/// [`Histogram::delta_since`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index `v` falls in: 0 for zero, else `64 - clz(v)`.
    #[inline]
    fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The half-open value range `[lo, hi)` covered by bucket `i`
    /// (bucket 0 is the degenerate `[0, 1)`).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), 1 << i),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, `0` when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether any sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), linearly interpolated inside the
    /// containing bucket. Exact for values that share a bucket with no
    /// neighbours; within a factor of two otherwise. `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (seen + c) as f64 >= rank {
                // Interpolate across the *attainable* values of the bucket
                // — the closed range `[lo, hi - 1]` clamped to observed
                // extremes — so single-bucket histograms report the exact
                // value and `quantile(1.0)` is exactly `max`, never the
                // bucket's exclusive bound.
                let (lo, hi) = Self::bucket_range(i);
                let lo = lo.max(self.min) as f64;
                let hi = (hi - 1).min(self.max) as f64;
                let frac = (rank - seen as f64) / c as f64;
                return lo + (hi - lo).max(0.0) * frac.clamp(0.0, 1.0);
            }
            seen += c;
        }
        self.max as f64
    }

    /// Fold `other`'s population into `self` (bucket-wise add).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The samples recorded since `before` was captured (bucket-wise
    /// saturating subtract). `min`/`max` keep the current extremes — like
    /// `Max`-policy counters, extremes are not invertible.
    pub fn delta_since(&self, before: &Histogram) -> Histogram {
        let mut d = Histogram::new();
        for (i, slot) in d.buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(before.buckets[i]);
        }
        d.count = self.count.saturating_sub(before.count);
        d.sum = self.sum.saturating_sub(before.sum);
        d.min = self.min;
        d.max = self.max;
        d
    }

    /// The histogram a run would hold after recording, on top of `self`,
    /// exactly the samples `to` gained since `from` — the synthesis step of
    /// the simulator's early-exit strike replay, where `self` is the strike
    /// run's histogram at its convergence point and `from`/`to` are the
    /// golden run's histogram at the matching snapshot and at completion.
    ///
    /// Buckets, `count`, and `sum` are exact by construction (the future
    /// sample population is `to - from`, bucket-wise). The extremes are
    /// returned only when they are provably exact, else `None` and the
    /// caller must refuse the shortcut:
    ///
    /// * no future samples: the extremes are `self`'s;
    /// * `self.min <= to.min`: every future sample is `>= to.min`;
    /// * `to.min < from.min`: the future population attains `to.min`;
    /// * symmetrically for `max`.
    pub fn extend_by_delta(&self, from: &Histogram, to: &Histogram) -> Option<Histogram> {
        let mut out = Histogram::new();
        for (i, slot) in out.buckets.iter_mut().enumerate() {
            *slot = self.buckets[i] + (to.buckets[i] - from.buckets[i]);
        }
        out.count = self.count + (to.count - from.count);
        out.sum = self.sum.saturating_add(to.sum - from.sum);
        if to.count == from.count {
            out.min = self.min;
            out.max = self.max;
        } else {
            // Raw fields on purpose: the empty sentinel (`min == u64::MAX`)
            // orders an empty `self` below nothing and an empty `from`
            // above everything, which is exactly the comparison needed.
            out.min = if self.min <= to.min {
                self.min
            } else if to.min < from.min {
                to.min
            } else {
                return None;
            };
            out.max = if self.max >= to.max {
                self.max
            } else if to.max > from.max {
                to.max
            } else {
                return None;
            };
        }
        Some(out)
    }

    /// Iterate the nonempty buckets as `(lo, hi, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_range(i);
                (lo, hi, c)
            })
    }
}

/// A dense registry holding one value per metric key.
///
/// This is the unit that flows through the stack: the pass manager hands
/// one to every compiler pass, the simulator exports its run totals as one,
/// campaigns fold per-run sets into one, and the figure generators read
/// them by key. Cloning and merging are fixed-size array operations.
#[derive(Debug, Clone)]
pub struct MetricSet {
    counters: [u64; NUM_COUNTERS],
    gauges: [f64; NUM_GAUGES],
    gauge_set: u32,
    /// Histogram storage, allocated lazily on the first
    /// [`MetricSet::record_hist`]/[`MetricSet::set_hist`] so sets that
    /// never sample a distribution stay a pair of flat arrays.
    hists: Option<Box<[Histogram; NUM_HISTS]>>,
}

impl Default for MetricSet {
    fn default() -> Self {
        MetricSet {
            counters: [0; NUM_COUNTERS],
            gauges: [0.0; NUM_GAUGES],
            gauge_set: 0,
            hists: None,
        }
    }
}

impl MetricSet {
    /// An empty registry (all counters zero, no gauges set).
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Add `v` to a counter.
    #[inline]
    pub fn add(&mut self, key: Counter, v: u64) {
        self.counters[key as usize] += v;
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, key: Counter) {
        self.add(key, 1);
    }

    /// Raise a high-water-mark counter to at least `v`.
    #[inline]
    pub fn record_peak(&mut self, key: Counter, v: u64) {
        let slot = &mut self.counters[key as usize];
        *slot = (*slot).max(v);
    }

    /// Read a counter.
    #[inline]
    pub fn counter(&self, key: Counter) -> u64 {
        self.counters[key as usize]
    }

    /// Set a gauge (overwrites any prior sample).
    #[inline]
    pub fn set_gauge(&mut self, key: Gauge, v: f64) {
        self.gauges[key as usize] = v;
        self.gauge_set |= 1 << key as u32;
    }

    /// Read a gauge; unset gauges read as `0.0`.
    #[inline]
    pub fn gauge(&self, key: Gauge) -> f64 {
        self.gauges[key as usize]
    }

    /// Whether a gauge has been set.
    pub fn has_gauge(&self, key: Gauge) -> bool {
        self.gauge_set & (1 << key as u32) != 0
    }

    /// Record one sample into a histogram (allocates the histogram block
    /// on first use).
    #[inline]
    pub fn record_hist(&mut self, key: Hist, v: u64) {
        self.hists_mut()[key as usize].record(v);
    }

    /// Replace a histogram wholesale (producers that accumulate privately
    /// and publish once).
    pub fn set_hist(&mut self, key: Hist, h: Histogram) {
        self.hists_mut()[key as usize] = h;
    }

    /// Fold `other` bucket-wise into the histogram under `key` — a
    /// single-key [`merge`](Self::merge) for consumers that aggregate one
    /// distribution without adopting the producer's counters.
    pub fn merge_hist(&mut self, key: Hist, other: &Histogram) {
        if !other.is_empty() {
            self.hists_mut()[key as usize].merge(other);
        }
    }

    /// Read a histogram; `None` when no sample was ever recorded under
    /// `key`.
    pub fn hist(&self, key: Hist) -> Option<&Histogram> {
        self.hists
            .as_ref()
            .map(|h| &h[key as usize])
            .filter(|h| !h.is_empty())
    }

    /// Iterate the nonempty histograms as `(key, histogram)`.
    pub fn nonzero_hists(&self) -> impl Iterator<Item = (Hist, &Histogram)> + '_ {
        Hist::ALL
            .iter()
            .filter_map(move |&k| self.hist(k).map(|h| (k, h)))
    }

    fn hists_mut(&mut self) -> &mut [Histogram; NUM_HISTS] {
        self.hists
            .get_or_insert_with(|| Box::new(std::array::from_fn(|_| Histogram::new())))
    }

    /// Fold `other` into `self`: `Sum` counters add, `Max` counters take
    /// the larger observation, histograms combine bucket-wise, and gauges
    /// set in `other` overwrite (last writer wins — merge-order-sensitive,
    /// so accumulate gauges only when one producer owns the key).
    pub fn merge(&mut self, other: &MetricSet) {
        for &key in Counter::ALL {
            let i = key as usize;
            match key.merge_policy() {
                MergePolicy::Sum => self.counters[i] += other.counters[i],
                MergePolicy::Max => self.counters[i] = self.counters[i].max(other.counters[i]),
            }
        }
        for &key in Gauge::ALL {
            if other.has_gauge(key) {
                self.set_gauge(key, other.gauge(key));
            }
        }
        for (key, h) in other.nonzero_hists() {
            self.hists_mut()[key as usize].merge(h);
        }
    }

    /// The contribution made since `before` was captured: `Sum` counters
    /// subtract, `Max` counters keep the current high-water mark, and
    /// gauges carry over where set. The pass manager uses this for
    /// per-pass attribution, so for `Sum` keys
    /// `before + delta == self` holds field-wise.
    pub fn delta_since(&self, before: &MetricSet) -> MetricSet {
        let mut d = MetricSet::new();
        for &key in Counter::ALL {
            let i = key as usize;
            d.counters[i] = match key.merge_policy() {
                MergePolicy::Sum => self.counters[i].saturating_sub(before.counters[i]),
                MergePolicy::Max => self.counters[i],
            };
        }
        for &key in Gauge::ALL {
            if self.has_gauge(key) {
                d.set_gauge(key, self.gauge(key));
            }
        }
        for (key, h) in self.nonzero_hists() {
            let dh = h.delta_since(before.hist(key).unwrap_or(&Histogram::new()));
            if !dh.is_empty() {
                d.set_hist(key, dh);
            }
        }
        d
    }

    /// Whether every counter is zero, no gauge is set, and no histogram
    /// holds a sample.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.gauge_set == 0
            && self.nonzero_hists().next().is_none()
    }

    /// Iterate the nonzero counters as `(key, value)`.
    pub fn nonzero_counters(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL
            .iter()
            .filter(|&&k| self.counter(k) != 0)
            .map(|&k| (k, self.counter(k)))
    }

    // — derived metrics —
    //
    // The ratio formulas below are the single definition the whole stack
    // (stat displays, figure generators) uses; each guards its denominator
    // and divides in the same order so results are bit-stable.

    /// `num / den` as `f64`, `0.0` when the denominator is zero.
    fn ratio(&self, num: Counter, den: Counter) -> f64 {
        let d = self.counter(den);
        if d == 0 {
            0.0
        } else {
            self.counter(num) as f64 / d as f64
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.ratio(Counter::Insts, Counter::Cycles)
    }

    /// Fraction of dynamic instructions that are checkpoints (Fig 4).
    pub fn ckpt_ratio(&self) -> f64 {
        self.ratio(Counter::Ckpts, Counter::Insts)
    }

    /// Total dynamic stores including checkpoints.
    pub fn all_stores(&self) -> u64 {
        self.counter(Counter::Stores) + self.counter(Counter::Ckpts)
    }

    /// Fraction of all stores released without verification
    /// (WAR-free + colored).
    pub fn bypass_ratio(&self) -> f64 {
        let all = self.all_stores();
        if all == 0 {
            0.0
        } else {
            (self.counter(Counter::WarFreeReleased) + self.counter(Counter::ColoredReleased)) as f64
                / all as f64
        }
    }

    /// Average CLQ entries populated over the run (Fig 24).
    pub fn clq_avg_entries(&self) -> f64 {
        self.ratio(Counter::ClqOccupancySum, Counter::ClqOccupancySamples)
    }

    /// Fraction of CLQ-checked stores proven WAR-free (Figs 15/24).
    pub fn clq_war_free_ratio(&self) -> f64 {
        self.ratio(Counter::ClqWarFree, Counter::ClqStoresChecked)
    }

    /// Code-size increase of the resilient binary over the baseline, as a
    /// fraction (e.g. `0.05` = 5%). Zero when baseline size is unknown.
    pub fn code_size_increase(&self) -> f64 {
        let base = self.counter(Counter::BaselineInsts);
        if base == 0 {
            0.0
        } else {
            self.counter(Counter::FinalInsts) as f64 / base as f64 - 1.0
        }
    }
}

impl PartialEq for MetricSet {
    /// Structural equality over *recorded* data: a lazily-unallocated
    /// histogram block equals an allocated block with no samples.
    fn eq(&self, other: &Self) -> bool {
        self.counters == other.counters
            && self.gauges == other.gauges
            && self.gauge_set == other.gauge_set
            && Hist::ALL.iter().all(|&k| self.hist(k) == other.hist(k))
    }
}

impl fmt::Display for MetricSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (key, v) in self.nonzero_counters() {
            if !first {
                writeln!(f)?;
            }
            write!(f, "{} = {v}", key.name())?;
            first = false;
        }
        for &key in Gauge::ALL {
            if self.has_gauge(key) {
                if !first {
                    writeln!(f)?;
                }
                write!(f, "{} = {}", key.name(), self.gauge(key))?;
                first = false;
            }
        }
        for (key, h) in self.nonzero_hists() {
            if !first {
                writeln!(f)?;
            }
            write!(
                f,
                "{} = n={} p50={:.1} p99={:.1} max={}",
                key.name(),
                h.count(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.max()
            )?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_read() {
        let mut m = MetricSet::new();
        assert!(m.is_empty());
        m.add(Counter::Cycles, 10);
        m.inc(Counter::Cycles);
        assert_eq!(m.counter(Counter::Cycles), 11);
        assert_eq!(m.counter(Counter::Insts), 0);
        assert!(!m.is_empty());
    }

    #[test]
    fn peaks_take_max() {
        let mut m = MetricSet::new();
        m.record_peak(Counter::SbPeak, 3);
        m.record_peak(Counter::SbPeak, 2);
        assert_eq!(m.counter(Counter::SbPeak), 3);
    }

    #[test]
    fn gauges_track_set_state() {
        let mut m = MetricSet::new();
        assert!(!m.has_gauge(Gauge::AvgRegionInsts));
        assert_eq!(m.gauge(Gauge::AvgRegionInsts), 0.0);
        m.set_gauge(Gauge::AvgRegionInsts, 12.5);
        assert!(m.has_gauge(Gauge::AvgRegionInsts));
        assert_eq!(m.gauge(Gauge::AvgRegionInsts), 12.5);
    }

    #[test]
    fn merge_respects_policies() {
        let mut a = MetricSet::new();
        a.add(Counter::Cycles, 100);
        a.record_peak(Counter::SbPeak, 4);
        let mut b = MetricSet::new();
        b.add(Counter::Cycles, 50);
        b.record_peak(Counter::SbPeak, 2);
        b.set_gauge(Gauge::AvgRegionInsts, 7.0);
        a.merge(&b);
        assert_eq!(a.counter(Counter::Cycles), 150);
        assert_eq!(a.counter(Counter::SbPeak), 4);
        assert_eq!(a.gauge(Gauge::AvgRegionInsts), 7.0);
    }

    #[test]
    fn delta_recovers_contributions() {
        let mut before = MetricSet::new();
        before.add(Counter::CkptsInserted, 5);
        let mut after = before.clone();
        after.add(Counter::CkptsInserted, 3);
        after.add(Counter::SpillStores, 2);
        let d = after.delta_since(&before);
        assert_eq!(d.counter(Counter::CkptsInserted), 3);
        assert_eq!(d.counter(Counter::SpillStores), 2);
        let mut sum = before.clone();
        sum.merge(&d);
        assert_eq!(sum.counter(Counter::CkptsInserted), 8);
    }

    #[test]
    fn derived_ratios_match_fixed_field_formulas() {
        let mut m = MetricSet::new();
        m.add(Counter::Cycles, 100);
        m.add(Counter::Insts, 150);
        m.add(Counter::Ckpts, 30);
        m.add(Counter::Stores, 30);
        m.add(Counter::WarFreeReleased, 15);
        m.add(Counter::ColoredReleased, 15);
        assert!((m.ipc() - 1.5).abs() < 1e-12);
        assert!((m.ckpt_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(m.all_stores(), 60);
        assert!((m.bypass_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(MetricSet::new().ipc(), 0.0);
        assert_eq!(MetricSet::new().code_size_increase(), 0.0);
        m.add(Counter::BaselineInsts, 100);
        m.add(Counter::FinalInsts, 105);
        assert!((m.code_size_increase() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn names_are_unique_and_namespaced() {
        let mut seen = std::collections::HashSet::new();
        for &k in Counter::ALL {
            assert!(seen.insert(k.name()), "duplicate name {}", k.name());
            assert!(k.name().contains('.'), "{} lacks a namespace", k.name());
        }
        for &g in Gauge::ALL {
            assert!(seen.insert(g.name()), "duplicate name {}", g.name());
        }
        for &h in Hist::ALL {
            assert!(seen.insert(h.name()), "duplicate name {}", h.name());
            assert!(h.name().contains('.'), "{} lacks a namespace", h.name());
        }
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        // 0 → bucket 0; 1 → [1,2); 2,3 → [2,4); 4 → [4,8); 1000 → [512,1024).
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets[0], (0, 1, 1));
        assert_eq!(buckets[1], (1, 2, 1));
        assert_eq!(buckets[2], (2, 4, 2));
        assert_eq!(buckets[3], (4, 8, 1));
        assert_eq!(buckets[4], (512, 1024, 1));
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(8);
        }
        // All mass in one bucket clamped to the observed extremes.
        assert!((h.quantile(0.5) - 8.0).abs() < 1.0, "{}", h.quantile(0.5));
        assert!((h.quantile(0.99) - 8.0).abs() < 1.0);
        h.record(1 << 20);
        assert!(h.quantile(1.0) > 1e6);
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_extreme_quantiles_stay_within_observed_range() {
        // A single-value population is exact at every quantile — including
        // q=1.0, which must be `max`, not the bucket's exclusive bound.
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(8);
        }
        for q in [0.0, 0.001, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 8.0, "q={q}");
        }
        // With a tail sample, extreme quantiles interpolate inside the tail
        // bucket but never exceed the observed max or undershoot the min.
        h.record(1 << 20);
        assert_eq!(h.quantile(1.0), (1u64 << 20) as f64);
        // Low quantiles stay within the min's bucket (factor-of-two
        // resolution), never below the observed min.
        let p0 = h.quantile(0.0);
        assert!((8.0..16.0).contains(&p0), "{p0}");
        let p999 = h.quantile(0.999);
        assert!((8.0..=(1u64 << 20) as f64).contains(&p999), "{p999}");
        // q=1.0 lands on the max even when the top bucket holds a spread,
        // and no quantile leaves the observed [min, max] envelope.
        let mut s = Histogram::new();
        s.record(1000); // bucket [512, 1024)
        s.record(600);
        assert_eq!(s.quantile(1.0), 1000.0);
        for q in [0.0, 0.25, 0.5, 0.75, 0.999] {
            let v = s.quantile(q);
            assert!((600.0..=1000.0).contains(&v), "q={q} -> {v}");
        }
    }

    #[test]
    fn histogram_merge_and_delta_roundtrip() {
        let mut a = Histogram::new();
        a.record(5);
        a.record(40);
        let before = a.clone();
        a.record(7);
        a.record(9000);
        let d = a.delta_since(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 9007);
        let mut sum = before.clone();
        sum.merge(&d);
        assert_eq!(sum.count(), a.count());
        assert_eq!(sum.sum(), a.sum());
    }

    #[test]
    fn metricset_hists_merge_and_compare() {
        let mut a = MetricSet::new();
        assert!(a.hist(Hist::SbResidency).is_none());
        a.record_hist(Hist::SbResidency, 12);
        a.record_hist(Hist::SbResidency, 13);
        let mut b = MetricSet::new();
        b.record_hist(Hist::SbResidency, 100);
        a.merge(&b);
        let h = a.hist(Hist::SbResidency).unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 100);
        // Lazily-unallocated and allocated-but-empty blocks compare equal.
        let mut c = MetricSet::new();
        c.record_hist(Hist::SimMicros, 1);
        let d = c.delta_since(&c.clone());
        assert_eq!(d, MetricSet::new());
        assert!(d.is_empty());
    }

    #[test]
    fn display_lists_nonzero_entries() {
        let mut m = MetricSet::new();
        assert_eq!(m.to_string(), "(empty)");
        m.add(Counter::Cycles, 7);
        m.set_gauge(Gauge::AvgRegionInsts, 1.5);
        let s = m.to_string();
        assert!(s.contains("sim.cycles = 7"));
        assert!(s.contains("sim.avg_region_insts = 1.5"));
    }
}
