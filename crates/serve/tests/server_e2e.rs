//! End-to-end tests of the job server over real TCP with a mock executor:
//! job flow, admission control under saturation, per-job timeout
//! cancellation, graceful-shutdown draining, and the loadgen harness.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use turnpike_metrics::Counter;
use turnpike_serve::{
    loadgen, Client, ExecOutput, Executor, JobCtl, JobKind, JobRequest, LoadgenConfig, Outcome,
    Server, ServerConfig, StoreStatus,
};

/// Scriptable executor: renders a deterministic payload after an optional
/// gate/delay, streaming `progress` ticks for campaign jobs.
struct MockExec {
    /// While `Some`, execute() blocks until the gate opens (used to pin
    /// jobs in-flight so the queue can be saturated deterministically).
    gate: Option<Arc<(Mutex<bool>, Condvar)>>,
    /// Spin until canceled instead of finishing (timeout tests).
    hang_until_canceled: bool,
    executions: AtomicUsize,
}

impl MockExec {
    fn instant() -> MockExec {
        MockExec {
            gate: None,
            hang_until_canceled: false,
            executions: AtomicUsize::new(0),
        }
    }

    fn gated() -> (MockExec, Arc<(Mutex<bool>, Condvar)>) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        (
            MockExec {
                gate: Some(Arc::clone(&gate)),
                hang_until_canceled: false,
                executions: AtomicUsize::new(0),
            },
            gate,
        )
    }

    fn open(gate: &Arc<(Mutex<bool>, Condvar)>) {
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
    }
}

impl Executor for MockExec {
    fn execute(&self, req: &JobRequest, ctl: &JobCtl) -> Result<ExecOutput, String> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        if let Some(gate) = &self.gate {
            let mut open = gate.0.lock().unwrap();
            while !*open {
                open = gate.1.wait(open).unwrap();
            }
        }
        if self.hang_until_canceled {
            while !ctl.is_canceled() {
                std::thread::sleep(Duration::from_millis(5));
            }
            return Err("canceled by deadline".to_string());
        }
        if req.kernel == "no-such-kernel" {
            return Err(format!("unknown kernel '{}'", req.kernel));
        }
        if req.kind == JobKind::Campaign {
            for done in 1..=req.runs {
                if ctl.is_canceled() {
                    return Err("canceled mid-campaign".to_string());
                }
                ctl.progress(done, req.runs);
            }
        }
        Ok(ExecOutput {
            result: format!(
                "{{\"kind\":\"{}\",\"kernel\":\"{}\",\"seed\":{}}}",
                req.kind.name(),
                req.kernel,
                req.seed
            ),
            store: StoreStatus::Off,
            quarantined: 0,
        })
    }
}

fn start(config: ServerConfig, exec: MockExec) -> (Server, Arc<MockExec>) {
    let exec = Arc::new(exec);
    let server = Server::start(config, Arc::clone(&exec) as Arc<dyn Executor>).unwrap();
    (server, exec)
}

#[test]
fn submit_streams_progress_and_returns_the_executor_payload() {
    let (server, _exec) = start(ServerConfig::default(), MockExec::instant());
    let mut client = Client::connect(server.addr()).unwrap();
    let mut req = JobRequest::new(JobKind::Campaign);
    req.kernel = "hmmer".into();
    req.runs = 5;
    let mut ticks = Vec::new();
    let outcome = client
        .submit_with(&req, |done, total| ticks.push((done, total)))
        .unwrap();
    match outcome {
        Outcome::Done { store, result, .. } => {
            assert_eq!(store, "off");
            assert_eq!(
                result,
                "{\"kind\":\"campaign\",\"kernel\":\"hmmer\",\"seed\":61453}"
            );
        }
        other => panic!("expected done, got {other:?}"),
    }
    assert_eq!(ticks, vec![(1, 5), (2, 5), (3, 5), (4, 5), (5, 5)]);

    // Executor failures surface as typed error events, connection stays up.
    let mut bad = JobRequest::new(JobKind::Run);
    bad.kernel = "no-such-kernel".into();
    match client.submit(&bad).unwrap() {
        Outcome::Error { message, .. } => assert!(message.contains("no-such-kernel")),
        other => panic!("expected error, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert!(stats.contains("\"completed\":1"), "{stats}");
    assert!(stats.contains("\"failed\":1"), "{stats}");
    server.shutdown();
}

#[test]
fn malformed_requests_get_error_events_without_killing_the_connection() {
    let (server, _exec) = start(ServerConfig::default(), MockExec::instant());
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"this is not json\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"event\":\"error\""), "{line}");
    // Same connection still serves valid requests.
    stream.write_all(b"{\"type\":\"stats\"}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"event\":\"stats\""), "{line}");
    server.shutdown();
}

/// Satellite: fill the queue past capacity, assert typed `overloaded`
/// rejections, then drain and check that every *accepted* job completes —
/// no loss, no duplicates.
#[test]
fn admission_control_sheds_load_then_drains_cleanly() {
    let (exec, gate) = MockExec::gated();
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServerConfig::default()
    };
    let (server, exec) = start(config, exec);
    let addr = server.addr();

    // One job occupies the worker (blocked on the gate), two fill the
    // queue; everything past that must be rejected with a retry hint.
    // Submissions are staggered (wait for each admission in the stats)
    // so none of the pinned jobs races another into a rejection.
    let mut probe = Client::connect(addr).unwrap();
    let wait_for = |probe: &mut Client, needle: &str| {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let stats = probe.stats().unwrap();
            if stats.contains(needle) {
                return;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "never saw {needle}: {stats}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    let mut submitters = Vec::new();
    for i in 0..3 {
        submitters.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let mut req = JobRequest::new(JobKind::Run);
            req.tag = format!("pinned-{i}");
            c.submit(&req).unwrap()
        }));
        wait_for(&mut probe, &format!("\"accepted\":{}", i + 1));
        if i == 0 {
            // The worker must pick up the first job (and park at the
            // gate) before the next two can both fit in the queue.
            wait_for(&mut probe, "\"queue_depth\":0");
        }
    }
    // Worker holds one job at the gate, the other two fill the queue.
    wait_for(&mut probe, "\"queue_depth\":2");

    let mut rejected = 0;
    for i in 0..4 {
        let mut c = Client::connect(addr).unwrap();
        let mut req = JobRequest::new(JobKind::Run);
        req.tag = format!("reject-{i}");
        match c.submit(&req).unwrap() {
            Outcome::Overloaded { retry_after_ms } => {
                assert!(retry_after_ms > 0);
                rejected += 1;
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
    }
    assert_eq!(rejected, 4);

    // Open the gate: all three accepted jobs must finish exactly once.
    MockExec::open(&gate);
    for s in submitters {
        match s.join().unwrap() {
            Outcome::Done { .. } => {}
            other => panic!("accepted job did not complete: {other:?}"),
        }
    }
    let stats = probe.stats().unwrap();
    assert!(stats.contains("\"accepted\":3"), "{stats}");
    assert!(stats.contains("\"rejected\":4"), "{stats}");
    assert!(stats.contains("\"completed\":3"), "{stats}");
    assert!(stats.contains("\"queue_peak\":2"), "{stats}");
    assert_eq!(
        exec.executions.load(Ordering::SeqCst),
        3,
        "no duplicated work"
    );
    let m = server.metrics();
    assert_eq!(m.counter(Counter::ServeAccepted), 3);
    assert_eq!(m.counter(Counter::ServeRejected), 4);
    server.shutdown();
}

#[test]
fn job_deadline_cancels_cooperatively_and_is_metered() {
    let exec = MockExec {
        gate: None,
        hang_until_canceled: true,
        executions: AtomicUsize::new(0),
    };
    let config = ServerConfig {
        job_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let (server, _exec) = start(config, exec);
    let mut client = Client::connect(server.addr()).unwrap();
    match client.submit(&JobRequest::new(JobKind::Run)).unwrap() {
        Outcome::Error { message, .. } => assert!(message.contains("canceled"), "{message}"),
        other => panic!("expected cancellation error, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert!(stats.contains("\"canceled\":1"), "{stats}");
    assert!(stats.contains("\"failed\":0"), "{stats}");
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_and_queued_jobs() {
    let (exec, gate) = MockExec::gated();
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServerConfig::default()
    };
    let (server, exec) = start(config, exec);
    let addr = server.addr();

    let submitters: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.submit(&JobRequest::new(JobKind::Run)).unwrap()
            })
        })
        .collect();
    // Make sure all three are admitted before shutting down.
    let mut probe = Client::connect(addr).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !probe.stats().unwrap().contains("\"accepted\":3") {
        assert!(std::time::Instant::now() < deadline, "jobs never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Shutdown via the protocol; new submissions are turned away.
    let shutdown_thread = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.shutdown().unwrap();
    });
    std::thread::sleep(Duration::from_millis(50));
    MockExec::open(&gate);
    for s in submitters {
        match s.join().unwrap() {
            Outcome::Done { .. } => {}
            other => panic!("in-flight job lost during shutdown: {other:?}"),
        }
    }
    shutdown_thread.join().unwrap();
    server.join();
    assert_eq!(exec.executions.load(Ordering::SeqCst), 3);
}

#[test]
fn loadgen_delivers_every_tagged_job_exactly_once() {
    let config = ServerConfig {
        workers: 2,
        queue_capacity: 2, // small queue: saturation expected
        retry_after_ms: 5,
        ..ServerConfig::default()
    };
    let (server, exec) = start(config, MockExec::instant());
    let cfg = LoadgenConfig {
        clients: 8,
        jobs_per_client: 5,
        request: JobRequest::new(JobKind::Run),
        max_retries: 10_000,
    };
    let report = loadgen(server.addr(), &cfg).unwrap();
    assert_eq!(report.jobs, 40);
    assert_eq!(report.completed, 40);
    assert_eq!(report.errors, 0);
    assert_eq!(report.lost, 0, "lost jobs: {}", report.to_json());
    assert_eq!(report.duplicated, 0);
    assert_eq!(exec.executions.load(Ordering::SeqCst), 40);
    assert_eq!(report.latency.count(), 40);
    let json = report.to_json();
    assert!(json.contains("\"latency_p50_us\":"), "{json}");
    assert!(json.contains("\"latency_p99_us\":"), "{json}");
    server.shutdown();
}

#[test]
fn chrome_trace_spans_are_written_at_shutdown() {
    let dir = std::env::temp_dir().join(format!("turnpike-serve-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let trace = dir.join("nested/serve_trace.json");
    let config = ServerConfig {
        trace_path: Some(trace.clone()),
        ..ServerConfig::default()
    };
    let (server, _exec) = start(config, MockExec::instant());
    let mut client = Client::connect(server.addr()).unwrap();
    let mut req = JobRequest::new(JobKind::Run);
    req.kernel = "mcf".into();
    client.submit(&req).unwrap();
    server.shutdown();
    let body = std::fs::read_to_string(&trace).unwrap();
    assert!(body.contains("\"name\":\"run mcf\""), "{body}");
    assert!(body.contains("\"ph\":\"X\""), "{body}");
    std::fs::remove_dir_all(&dir).unwrap();
}
