//! End-to-end trace tests: the resilience event stream of a run must tell a
//! consistent story (regions start before they verify, recoveries follow
//! detections, quarantined entries eventually release).

use turnpike_ir::{BinOp, CmpOp, DataSegment};
use turnpike_isa::{MOperand, MachAddr, MachInst, MachProgram, PhysReg, RecoveryBlock, RegionId};
use turnpike_sim::{Core, Fault, FaultKind, FaultPlan, SimConfig, TraceEvent};

fn r(i: u8) -> PhysReg {
    PhysReg::new(i).unwrap()
}

/// A small region-structured store loop with recovery metadata.
fn program() -> MachProgram {
    let insts = vec![
        MachInst::Mov {
            dst: r(1),
            src: MOperand::Imm(0),
        },
        MachInst::RegionBoundary { id: RegionId(1) },
        MachInst::Bin {
            op: BinOp::Shl,
            dst: r(2),
            lhs: r(1),
            rhs: MOperand::Imm(3),
        },
        MachInst::Bin {
            op: BinOp::Add,
            dst: r(2),
            lhs: r(2),
            rhs: MOperand::Reg(r(0)),
        },
        MachInst::Store {
            src: MOperand::Reg(r(1)),
            addr: MachAddr::RegOffset(r(2), 0),
        },
        MachInst::Bin {
            op: BinOp::Add,
            dst: r(1),
            lhs: r(1),
            rhs: MOperand::Imm(1),
        },
        MachInst::Ckpt { reg: r(1) },
        MachInst::Cmp {
            op: CmpOp::Lt,
            dst: r(3),
            lhs: r(1),
            rhs: MOperand::Imm(6),
        },
        MachInst::BranchNz {
            cond: r(3),
            target: 1,
        },
        MachInst::Ret {
            value: Some(MOperand::Reg(r(1))),
        },
    ];
    let mut p = MachProgram::from_insts("trace", insts, DataSegment::zeroed(0x1000, 6));
    p.reg_init = vec![(r(0), 0x1000)];
    let load = |reg| MachInst::Load {
        dst: reg,
        addr: MachAddr::CkptSlot(reg),
    };
    p.recovery.insert(
        RegionId(0),
        RecoveryBlock {
            insts: vec![load(r(0))],
        },
    );
    p.recovery.insert(
        RegionId(1),
        RecoveryBlock {
            insts: vec![load(r(0)), load(r(1))],
        },
    );
    p
}

#[test]
fn fault_free_trace_is_consistent() {
    let p = program();
    let (out, trace) = Core::new(&p, SimConfig::turnstile(4, 10))
        .run_traced(&FaultPlan::none(), 4096)
        .unwrap();
    assert_eq!(out.ret, Some(6));
    let evs = trace.events();
    assert!(!evs.is_empty());
    // Cycles are non-decreasing per event category's own clock; globally the
    // stream is ordered by emission, so starts come before their verify.
    let starts: Vec<u64> = evs
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RegionStart { seq, .. } => Some(*seq),
            _ => None,
        })
        .collect();
    let verified: Vec<u64> = evs
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RegionVerified { seq, .. } => Some(*seq),
            _ => None,
        })
        .collect();
    assert!(starts.len() >= 6, "one region per iteration: {starts:?}");
    for v in &verified {
        // Every verified instance (except implicit region 0) started.
        assert!(
            *v == 0 || starts.contains(v),
            "verify of unknown region {v}"
        );
    }
    // All quarantined entries eventually released (fault-free run).
    let q = evs
        .iter()
        .filter(|e| matches!(e, TraceEvent::Quarantined { .. }))
        .count();
    let rel = evs
        .iter()
        .filter(|e| matches!(e, TraceEvent::SbRelease { .. }))
        .count();
    assert_eq!(q, rel, "quarantine/release imbalance");
    // No faults: no strikes, detections, or recoveries.
    assert!(evs
        .iter()
        .all(|e| !matches!(e, TraceEvent::Strike { .. } | TraceEvent::Detection { .. })));
}

#[test]
fn faulted_trace_shows_detection_then_recovery() {
    let p = program();
    let plan = FaultPlan::new(vec![Fault {
        strike_cycle: 12,
        detect_latency: 6,
        kind: FaultKind::RegisterParity { reg: 1, bit: 2 },
    }]);
    let (out, trace) = Core::new(&p, SimConfig::turnpike(4, 10))
        .run_traced(&plan, 4096)
        .unwrap();
    assert_eq!(out.ret, Some(6), "recovered run matches");
    let evs = trace.events();
    let strike = evs
        .iter()
        .position(|e| matches!(e, TraceEvent::Strike { .. }));
    let detect = evs
        .iter()
        .position(|e| matches!(e, TraceEvent::Detection { .. }));
    let recover = evs
        .iter()
        .position(|e| matches!(e, TraceEvent::Recovery { .. }));
    let (s, d, rv) = (strike.unwrap(), detect.unwrap(), recover.unwrap());
    assert!(s < d, "strike precedes detection");
    assert!(d < rv, "detection precedes recovery");
    // The recovery names a region instance that had started (or region 0).
    if let TraceEvent::Recovery { target_seq, .. } = evs[rv] {
        let started: Vec<u64> = evs
            .iter()
            .filter_map(|e| match e {
                TraceEvent::RegionStart { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert!(target_seq == 0 || started.contains(&target_seq));
    }
}

#[test]
fn turnpike_trace_shows_fast_releases() {
    let p = program();
    let (_, trace) = Core::new(&p, SimConfig::turnpike(4, 10))
        .run_traced(&FaultPlan::none(), 4096)
        .unwrap();
    let colored = trace
        .filter(|e| matches!(e, TraceEvent::ColoredRelease { .. }))
        .count();
    let war_free = trace
        .filter(|e| matches!(e, TraceEvent::WarFreeRelease { .. }))
        .count();
    assert!(colored > 0, "checkpoints should take the colored path");
    assert!(war_free > 0, "streaming stores should be WAR-free");
}
