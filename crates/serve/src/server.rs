//! The TCP job server: accept loop, per-connection request handling,
//! worker pool, admission control, per-job timeout/cancellation, and
//! graceful shutdown.
//!
//! The server is generic over an [`Executor`] — the thing that actually
//! compiles/simulates. The production executor (backed by the bench
//! crate's memoizing `Engine` and the artifact [`crate::store::Store`])
//! lives in `turnpike-bench`; tests here use mocks, which keeps this crate
//! free of a dependency cycle with the evaluation harness.
//!
//! # Lifecycle
//!
//! ```text
//! accept loop ──> connection thread ──try_push──> JobQueue ──pop──> worker
//!                      │   ▲                                          │
//!                      │   └────────── events (mpsc) ─────────────────┘
//!                      └ forwards accepted/progress/done lines to client
//! ```
//!
//! Shutdown (client `shutdown` request or [`Server::shutdown`]) closes the
//! queue (no new admissions), drains queued + in-flight jobs to their
//! terminal events, joins workers and connection threads, optionally writes
//! a Chrome trace of job spans, and returns — nothing accepted is lost.
//!
//! # Timeouts and cancellation
//!
//! Cancellation is **cooperative**: a simulated run cannot be preempted
//! mid-instruction, so when a job exceeds its deadline the connection
//! handler raises the job's cancel flag and keeps waiting. Campaign
//! executors observe the flag between injected runs (via the resilience
//! crate's campaign hook) and abandon promptly; single runs finish their
//! current simulation before the worker notices. Either way the client
//! always receives a terminal event.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use turnpike_metrics::{Counter, Hist, MetricSet};

use crate::flight::FlightRecorder;
use crate::json::escape;
use crate::proto::{Event, JobKind, JobRequest, ProgressStats, Request, StoreStatus};
use crate::queue::{JobQueue, PushError};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (read it back from
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission limit: jobs queued (not yet executing) before new
    /// submissions get a typed `overloaded` rejection.
    pub queue_capacity: usize,
    /// Per-job deadline measured from admission; on expiry the job's
    /// cancel flag is raised (cooperative — see module docs).
    pub job_timeout: Duration,
    /// Retry hint sent with `overloaded` rejections.
    pub retry_after_ms: u64,
    /// If set, write a Chrome trace (one complete-event span per job)
    /// here at shutdown.
    pub trace_path: Option<PathBuf>,
    /// If set, keep a per-job [`FlightRecorder`] and dump it here
    /// (`job-<id>.jsonl`) when a job fails, deadlines out, or produces a
    /// quarantined store entry. `None` disables flight recording entirely.
    pub flight_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            job_timeout: Duration::from_secs(300),
            retry_after_ms: 50,
            trace_path: None,
            flight_dir: None,
        }
    }
}

/// What an [`Executor`] hands back for a finished job.
#[derive(Debug, Clone)]
pub struct ExecOutput {
    /// Single-line JSON payload, embedded verbatim in the `done` event.
    pub result: String,
    /// Artifact-store disposition.
    pub store: StoreStatus,
    /// Corrupt store entries quarantined while serving this job.
    pub quarantined: u64,
}

/// Per-job control surface handed to the executor: cancellation state and
/// a progress channel back to the submitting client.
pub struct JobCtl {
    job: u64,
    tag: String,
    cancel: Arc<AtomicBool>,
    // mpsc senders are !Sync; executors report progress from worker pools
    // (e.g. the campaign hook fires on par_map threads), so serialize.
    events: Mutex<mpsc::Sender<Event>>,
}

impl JobCtl {
    /// A control handle attached to no connection: never canceled,
    /// progress dropped. Direct (CLI) execution uses this to drive the
    /// exact same executor code path as a served job — one renderer, one
    /// store lookup, byte-identical payloads.
    pub fn detached() -> JobCtl {
        let (tx, _rx) = mpsc::channel();
        JobCtl {
            job: 0,
            tag: String::new(),
            cancel: Arc::new(AtomicBool::new(false)),
            events: Mutex::new(tx),
        }
    }

    /// Whether the deadline passed or the server asked this job to stop.
    /// Executors should poll this at natural yield points (per campaign
    /// run) and bail with an error mentioning "canceled".
    pub fn is_canceled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The raw cancel flag, for wiring into hooks that take an
    /// `&AtomicBool` directly.
    pub fn cancel_flag(&self) -> &AtomicBool {
        &self.cancel
    }

    /// Stream a progress event (`done`/`total` work units) to the client.
    /// Dropped silently if the client is gone.
    pub fn progress(&self, done: u64, total: u64) {
        let ev = Event::Progress {
            job: self.job,
            tag: self.tag.clone(),
            done,
            total,
            stats: None,
        };
        let _ = self.events.lock().unwrap().send(ev);
    }

    /// Stream a progress event enriched with the campaign estimator
    /// payload. Dropped silently if the client is gone.
    pub fn progress_stats(&self, done: u64, total: u64, stats: ProgressStats) {
        let ev = Event::Progress {
            job: self.job,
            tag: self.tag.clone(),
            done,
            total,
            stats: Some(stats),
        };
        let _ = self.events.lock().unwrap().send(ev);
    }
}

/// Executes one job. Implementations must be thread-safe: the worker pool
/// calls `execute` concurrently.
pub trait Executor: Send + Sync {
    /// Run `req` to completion (or until `ctl` reports cancellation) and
    /// return the rendered payload.
    ///
    /// # Errors
    ///
    /// A human-readable message; include the word "canceled" when bailing
    /// out due to `ctl.is_canceled()` so the server meters it as a
    /// cancellation rather than a failure.
    fn execute(&self, req: &JobRequest, ctl: &JobCtl) -> Result<ExecOutput, String>;
}

struct Job {
    id: u64,
    req: JobRequest,
    events: mpsc::Sender<Event>,
    cancel: Arc<AtomicBool>,
    enqueued: Instant,
}

struct Span {
    name: String,
    worker: usize,
    start_us: u64,
    dur_us: u64,
    job: u64,
    store: &'static str,
}

struct Inner {
    config: ServerConfig,
    executor: Arc<dyn Executor>,
    queue: JobQueue<Job>,
    metrics: Mutex<MetricSet>,
    shutting_down: AtomicBool,
    next_job: AtomicU64,
    started: Instant,
    spans: Mutex<Vec<Span>>,
    conns: Mutex<Vec<JoinHandle<()>>>,
    flights: Mutex<std::collections::HashMap<u64, FlightRecorder>>,
    addr: SocketAddr,
}

/// A running job server. Dropping the handle does **not** stop the server;
/// call [`Server::shutdown`] (or send a `shutdown` request and
/// [`Server::join`]).
pub struct Server {
    inner: Arc<Inner>,
    thread: JoinHandle<()>,
}

impl Server {
    /// Bind, spawn the worker pool and accept loop, and return a handle.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig, executor: Arc<dyn Executor>) -> std::io::Result<Server> {
        assert!(config.workers >= 1, "need at least one worker");
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            queue: JobQueue::new(config.queue_capacity),
            config,
            executor,
            metrics: Mutex::new(MetricSet::new()),
            shutting_down: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            started: Instant::now(),
            spans: Mutex::new(Vec::new()),
            conns: Mutex::new(Vec::new()),
            flights: Mutex::new(std::collections::HashMap::new()),
            addr,
        });
        let workers: Vec<_> = (0..inner.config.workers)
            .map(|idx| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, idx))
            })
            .collect();
        let thread = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || serve_loop(&inner, &listener, workers))
        };
        Ok(Server { inner, thread })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Begin graceful shutdown and wait for it to complete: queued and
    /// in-flight jobs run to their terminal events, then everything joins.
    pub fn shutdown(self) {
        self.inner.trigger_shutdown();
        let _ = self.thread.join();
    }

    /// Wait until some client triggers shutdown.
    pub fn join(self) {
        let _ = self.thread.join();
    }

    /// Snapshot of the server's metric registry (for merging into a
    /// process-wide set).
    pub fn metrics(&self) -> MetricSet {
        self.inner.metrics.lock().unwrap().clone()
    }
}

impl Inner {
    fn trigger_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // Wake the blocking accept() so the serve loop can exit.
        let _ = TcpStream::connect(self.addr);
    }

    /// Render the `stats` snapshot body with a fixed key order.
    fn stats_body(&self) -> String {
        let m = self.metrics.lock().unwrap();
        let hist_q = |key, q| m.hist(key).map_or(0, |h| h.quantile(q).round() as u64);
        format!(
            "{{\"queue_depth\":{},\"queue_capacity\":{},\"workers\":{},\"shutting_down\":{},\
             \"accepted\":{},\"rejected\":{},\"completed\":{},\"failed\":{},\"canceled\":{},\
             \"store_hits\":{},\"store_misses\":{},\"store_quarantined\":{},\"queue_peak\":{},\
             \"job_p50_us\":{},\"job_p99_us\":{}}}",
            self.queue.depth(),
            self.queue.capacity(),
            self.config.workers,
            self.shutting_down.load(Ordering::SeqCst),
            m.counter(Counter::ServeAccepted),
            m.counter(Counter::ServeRejected),
            m.counter(Counter::ServeCompleted),
            m.counter(Counter::ServeFailed),
            m.counter(Counter::ServeCanceled),
            m.counter(Counter::ServeStoreHits),
            m.counter(Counter::ServeStoreMisses),
            m.counter(Counter::ServeStoreQuarantined),
            m.counter(Counter::ServeQueuePeak),
            hist_q(Hist::ServeJobMicros, 0.50),
            hist_q(Hist::ServeJobMicros, 0.99),
        )
    }

    /// Record one flight event for `job`. A no-op unless flight recording
    /// is configured. Only `accept` — recorded *before* the job enters the
    /// queue, so a worker can never outrun the recorder's creation —
    /// creates a ring; events for jobs whose recorder was already closed
    /// (a relay racing the worker's terminal bookkeeping) are dropped
    /// rather than resurrecting it.
    fn flight(&self, job: u64, kind: &'static str, detail: String) {
        if self.config.flight_dir.is_none() {
            return;
        }
        let t_us = self.started.elapsed().as_micros() as u64;
        let mut map = self.flights.lock().unwrap();
        match map.entry(job) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().record(t_us, kind, detail);
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                if kind == "accept" {
                    v.insert(FlightRecorder::new(job))
                        .record(t_us, kind, detail);
                }
            }
        }
    }

    /// Close `job`'s flight recorder, dumping the ring as JSONL evidence
    /// when `dump` is set (failure, deadline cancel, or quarantine).
    fn flight_close(&self, job: u64, dump: bool) {
        let Some(dir) = &self.config.flight_dir else {
            return;
        };
        let Some(rec) = self.flights.lock().unwrap().remove(&job) else {
            return;
        };
        if dump {
            if let Err(e) = rec.dump(dir) {
                eprintln!("serve: failed to write flight record for job {job}: {e}");
            }
        }
    }

    fn write_trace(&self) {
        let Some(path) = &self.config.trace_path else {
            return;
        };
        let spans = self.spans.lock().unwrap();
        let mut out = String::from("[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"job\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"job\":{},\"store\":\"{}\"}}}}",
                escape(&s.name),
                s.start_us,
                s.dur_us,
                s.worker + 1,
                s.job,
                s.store,
            ));
        }
        out.push_str("]\n");
        let write = || -> std::io::Result<()> {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            std::fs::write(path, &out)
        };
        if let Err(e) = write() {
            eprintln!("serve: failed to write trace {}: {e}", path.display());
        }
    }
}

fn serve_loop(inner: &Arc<Inner>, listener: &TcpListener, workers: Vec<JoinHandle<()>>) {
    for stream in listener.incoming() {
        if inner.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_inner = Arc::clone(inner);
        let handle = std::thread::spawn(move || handle_connection(&conn_inner, stream));
        inner.conns.lock().unwrap().push(handle);
    }
    // Drain: admission is already closed; every accepted job reaches its
    // terminal event before the workers exit.
    inner.queue.drain_wait();
    for w in workers {
        let _ = w.join();
    }
    let conns = std::mem::take(&mut *inner.conns.lock().unwrap());
    for c in conns {
        let _ = c.join();
    }
    inner.write_trace();
}

fn worker_loop(inner: &Arc<Inner>, worker_idx: usize) {
    while let Some(job) = inner.queue.pop() {
        let queue_wait = job.enqueued.elapsed();
        let start = Instant::now();
        inner.flight(
            job.id,
            "start",
            format!(
                "worker={worker_idx} queue_wait_us={}",
                queue_wait.as_micros()
            ),
        );
        let ctl = JobCtl {
            job: job.id,
            tag: job.req.tag.clone(),
            cancel: Arc::clone(&job.cancel),
            events: Mutex::new(job.events.clone()),
        };
        // A panicking executor must not take the worker (and with it the
        // drain guarantee) down; convert panics into job failures.
        let outcome = catch_unwind(AssertUnwindSafe(|| inner.executor.execute(&job.req, &ctl)))
            .unwrap_or_else(|panic| {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "executor panicked".to_string());
                Err(format!("executor panicked: {msg}"))
            });
        let dur = start.elapsed();
        let canceled = job.cancel.load(Ordering::SeqCst);
        let (terminal, store_name, dump_flight) = match outcome {
            Ok(out) => {
                let name = out.store.name();
                let mut m = inner.metrics.lock().unwrap();
                m.inc(Counter::ServeCompleted);
                match out.store {
                    StoreStatus::Hit => m.inc(Counter::ServeStoreHits),
                    StoreStatus::Miss => m.inc(Counter::ServeStoreMisses),
                    StoreStatus::Off => {}
                }
                m.add(Counter::ServeStoreQuarantined, out.quarantined);
                drop(m);
                // A quarantined store entry is evidence-worthy even though
                // the job itself succeeded: the dump records what the job
                // saw when it hit the corrupt artifact.
                if out.quarantined > 0 {
                    inner.flight(
                        job.id,
                        "quarantine",
                        format!("quarantined={}", out.quarantined),
                    );
                }
                inner.flight(
                    job.id,
                    "done",
                    format!("store={name} dur_us={}", dur.as_micros()),
                );
                (
                    Event::Done {
                        job: job.id,
                        tag: job.req.tag.clone(),
                        store: out.store,
                        result: out.result,
                    },
                    name,
                    out.quarantined > 0,
                )
            }
            Err(message) => {
                let mut m = inner.metrics.lock().unwrap();
                m.inc(if canceled {
                    Counter::ServeCanceled
                } else {
                    Counter::ServeFailed
                });
                drop(m);
                inner.flight(
                    job.id,
                    if canceled { "cancel" } else { "fail" },
                    message.clone(),
                );
                (
                    Event::Error {
                        job: job.id,
                        tag: job.req.tag.clone(),
                        message,
                    },
                    "off",
                    true,
                )
            }
        };
        inner.flight_close(job.id, dump_flight);
        {
            let mut m = inner.metrics.lock().unwrap();
            m.record_hist(Hist::ServeQueueMicros, queue_wait.as_micros() as u64);
            m.record_hist(Hist::ServeJobMicros, dur.as_micros() as u64);
        }
        if inner.config.trace_path.is_some() {
            let subject = if job.req.kind == JobKind::Figure {
                &job.req.target
            } else {
                &job.req.kernel
            };
            inner.spans.lock().unwrap().push(Span {
                name: format!("{} {}", job.req.kind.name(), subject),
                worker: worker_idx,
                start_us: start.duration_since(inner.started).as_micros() as u64,
                dur_us: dur.as_micros() as u64,
                job: job.id,
                store: store_name,
            });
        }
        let _ = job.events.send(terminal);
        inner.queue.finish();
    }
}

/// Read one `\n`-terminated line, preserving any partial line across read
/// timeouts (the timeout is what lets idle connections notice shutdown).
/// `None` means the connection is done (EOF, error, or shutdown).
fn read_request_line(stream: &mut TcpStream, buf: &mut Vec<u8>, inner: &Inner) -> Option<String> {
    loop {
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line[..pos]).trim().to_string();
            if text.is_empty() {
                continue;
            }
            return Some(text);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) {
    // A vanished client must not wedge the server; the worker side never
    // blocks on this socket, so dropping the write is safe.
    let _ = stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush());
}

fn handle_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut buf = Vec::new();
    while let Some(line) = read_request_line(&mut stream, &mut buf, inner) {
        match Request::parse(&line) {
            Err(message) => write_line(
                &mut stream,
                &Event::Error {
                    job: 0,
                    tag: String::new(),
                    message,
                }
                .to_line(),
            ),
            Ok(Request::Stats) => write_line(
                &mut stream,
                &Event::Stats {
                    body: inner.stats_body(),
                }
                .to_line(),
            ),
            Ok(Request::Metrics) => {
                let body = turnpike_metrics::prometheus_text(&inner.metrics.lock().unwrap());
                write_line(&mut stream, &Event::Metrics { body }.to_line());
            }
            Ok(Request::Shutdown) => {
                inner.trigger_shutdown();
                write_line(
                    &mut stream,
                    &Event::ShuttingDown { tag: String::new() }.to_line(),
                );
                return;
            }
            Ok(Request::Job(req)) => handle_job(inner, &mut stream, req),
        }
    }
}

fn handle_job(inner: &Arc<Inner>, stream: &mut TcpStream, req: JobRequest) {
    let tag = req.tag.clone();
    if inner.shutting_down.load(Ordering::SeqCst) {
        write_line(stream, &Event::ShuttingDown { tag }.to_line());
        return;
    }
    let id = inner.next_job.fetch_add(1, Ordering::SeqCst);
    let (tx, rx) = mpsc::channel();
    let cancel = Arc::new(AtomicBool::new(false));
    let job = Job {
        id,
        req,
        events: tx,
        cancel: Arc::clone(&cancel),
        enqueued: Instant::now(),
    };
    // The recorder must exist before the job is in the queue: a worker can
    // pop and even finish the job before this thread runs another line. A
    // rejected job's ring is closed without dumping, so recording `accept`
    // ahead of the push never leaks evidence for a job that never ran.
    inner.flight(
        id,
        "accept",
        format!("tag={tag} kind={}", job.req.kind.name()),
    );
    match inner.queue.try_push(job) {
        Err(PushError::Full(_)) => {
            inner.metrics.lock().unwrap().inc(Counter::ServeRejected);
            inner.flight_close(id, false);
            write_line(
                stream,
                &Event::Overloaded {
                    tag,
                    retry_after_ms: inner.config.retry_after_ms,
                }
                .to_line(),
            );
        }
        Err(PushError::Closed) => {
            inner.flight_close(id, false);
            write_line(stream, &Event::ShuttingDown { tag }.to_line());
        }
        Ok(depth) => {
            {
                let mut m = inner.metrics.lock().unwrap();
                m.inc(Counter::ServeAccepted);
                m.record_peak(Counter::ServeQueuePeak, depth as u64);
            }
            inner.flight(id, "queue", format!("queue_depth={depth}"));
            write_line(
                stream,
                &Event::Accepted {
                    job: id,
                    tag,
                    queue_depth: depth,
                }
                .to_line(),
            );
            forward_events(inner, stream, &rx, &cancel, id);
        }
    }
}

/// Relay events for one accepted job until its terminal event, enforcing
/// the per-job deadline by raising the cancel flag (then waiting — the
/// worker always delivers a terminal event, see module docs).
fn forward_events(
    inner: &Arc<Inner>,
    stream: &mut TcpStream,
    rx: &mpsc::Receiver<Event>,
    cancel: &AtomicBool,
    job: u64,
) {
    let deadline = Instant::now() + inner.config.job_timeout;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let next = if cancel.load(Ordering::SeqCst) {
            rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected)
        } else {
            rx.recv_timeout(remaining)
        };
        match next {
            Ok(ev) => {
                let terminal = matches!(ev, Event::Done { .. } | Event::Error { .. });
                if let Event::Progress { done, total, .. } = &ev {
                    // Recorded at relay time: a progress event the client
                    // never saw (terminal raced it) is also absent from the
                    // flight record, which is the truthful ordering.
                    inner.flight(job, "progress", format!("done={done} total={total}"));
                }
                write_line(stream, &ev.to_line());
                if terminal {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Deadline passed: ask the job to stop, keep draining. The
                // swap guard records the deadline exactly once even though
                // the timeout branch can fire on every subsequent recv.
                if !cancel.swap(true, Ordering::SeqCst) {
                    inner.flight(
                        job,
                        "deadline",
                        "job timeout elapsed; cancel requested".to_string(),
                    );
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                write_line(
                    stream,
                    &Event::Error {
                        job,
                        tag: String::new(),
                        message: "internal: worker dropped the job".to_string(),
                    }
                    .to_line(),
                );
                return;
            }
        }
    }
}
