//! The cycle-level dual-issue in-order core.
//!
//! Timing is event-skip: instructions are processed in program order, each
//! assigned the earliest issue cycle compatible with its hazards (operand
//! readiness, the single memory port, store-buffer capacity, RBB capacity,
//! and the dual-issue slot budget). Functional state updates at issue, which
//! is exact for an in-order machine without speculation: a taken branch
//! simply delays the next fetch by the redirect penalty.
//!
//! Resilience machinery wired into the issue loop:
//!
//! * every store either *fast-releases* (WAR-free via the CLQ, or a colored
//!   checkpoint) or allocates a gated-store-buffer entry quarantined until
//!   its region is verified (region end + WCDL with no detection);
//! * region boundaries allocate RBB instances; verification drains the SB at
//!   one entry per cycle and rotates checkpoint colors;
//! * injected faults corrupt register state; parity trips on first read,
//!   the acoustic sensor fires within WCDL regardless; recovery discards
//!   unverified SB entries and colors, runs the region's recovery block, and
//!   re-executes from the recovery PC.

use crate::cache::Hierarchy;
use crate::clq::{build_clq, Clq};
use crate::coloring::Coloring;
use crate::config::{ClqKind, SimConfig};
use crate::fault::{Fault, FaultKind, FaultPlan};
use crate::mem::PagedMem;
use crate::rbb::Rbb;
use crate::stats::{SimHists, SimStats};
use crate::store_buffer::{EntryKind, SbEntry, StoreBuffer};
use crate::trace::{StallKind, Trace, TraceEvent, TraceSink};
use crate::translate::{DAddr, DKind, DOperand, Translation};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;
use turnpike_isa::{
    MOperand, MachAddr, MachInst, MachProgram, PhysReg, ProtectionMode, RegionId, NUM_PHYS_REGS,
};

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle limit was exceeded (livelock guard).
    CycleLimit(u64),
    /// PC ran outside the program.
    PcOutOfRange(u64),
    /// A store stalled forever on a full SB whose entries can never release
    /// (a region exceeded the SB size — the compiler must prevent this).
    StoreDeadlock {
        /// Cycle at which the deadlock was diagnosed.
        cycle: u64,
    },
    /// A fault's detection latency exceeds the configured WCDL.
    BadFaultPlan,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimit(n) => write!(f, "cycle limit {n} exceeded"),
            SimError::PcOutOfRange(pc) => write!(f, "pc {pc} out of range"),
            SimError::StoreDeadlock { cycle } => {
                write!(f, "store buffer deadlock at cycle {cycle}")
            }
            SimError::BadFaultPlan => write!(f, "fault detection latency exceeds WCDL"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a completed simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Program return value.
    pub ret: Option<i64>,
    /// Final architectural data memory (SB fully drained).
    pub memory: BTreeMap<u64, i64>,
    /// Final checkpoint storage (colored slots included).
    pub ckpt_memory: BTreeMap<u64, i64>,
    /// Statistics.
    pub stats: SimStats,
    /// `Some(saved)` when the run exited early through [`ReplayGuide`]
    /// convergence, skipping `saved` simulated cycles. An early-exited
    /// outcome carries the golden run's return value, fully synthesized
    /// stats, and **empty** memory maps — the convergence proof already
    /// established that the final memories equal the golden run's, so they
    /// are not rematerialized.
    pub replay_saved: Option<u64>,
}

/// Divergence-bounded early-exit support for fault-campaign strike runs:
/// everything a run needs to recognize that its state has *reconverged*
/// with the fault-free golden run and stop simulating. Holds the golden
/// run's snapshots (the compare targets), its final stats (the synthesis
/// deltas), and its return value, plus a PC index over the snapshots so
/// the per-instruction candidate probe is one hash lookup.
///
/// Built once per campaign from the golden run's artifacts and shared
/// read-only across every strike run (it is `Sync`: all fields are
/// immutable borrows or plain data).
#[derive(Debug)]
pub struct ReplayGuide<'g> {
    snapshots: &'g [CoreSnapshot],
    golden_stats: &'g SimStats,
    golden_ret: Option<i64>,
    /// Snapshot indices by capture PC.
    by_pc: std::collections::HashMap<u64, Vec<u32>>,
}

impl<'g> ReplayGuide<'g> {
    /// Index `snapshots` (from the golden
    /// [`Core::run_collecting_snapshots`] run) for early-exit probing.
    /// `golden_stats`/`golden_ret` come from the same run's outcome.
    pub fn new(
        snapshots: &'g [CoreSnapshot],
        golden_stats: &'g SimStats,
        golden_ret: Option<i64>,
    ) -> Self {
        let mut by_pc: std::collections::HashMap<u64, Vec<u32>> = std::collections::HashMap::new();
        for (i, s) in snapshots.iter().enumerate() {
            by_pc.entry(s.pc).or_default().push(i as u32);
        }
        ReplayGuide {
            snapshots,
            golden_stats,
            golden_ret,
            by_pc,
        }
    }
}

/// Failed deep compares (or synthesis refusals) a run tolerates before
/// dropping its [`ReplayGuide`] for good. Runs that never reconverge (true
/// SDCs, divergent control flow) stop paying the compare cost after this
/// many attempts and fall back to the superblock fast path.
const REPLAY_BUDGET: u32 = 64;

/// Resolved per-static-region protection switches, precomputed from the
/// program's [`MachProgram::region_modes`] metadata and the core config at
/// construction. Uniform programs (empty metadata) resolve every region to
/// exactly the config's own switches, so their behavior is bit-identical to
/// a core without this table. Derived state: never snapshotted, always
/// rebuilt from (program, config).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ModeFlags {
    /// Strikes landing while this region runs are detected (parity flags
    /// set, sensor detection scheduled). Unprotected regions silently
    /// absorb the corruption instead.
    detects: bool,
    /// Data stores quarantine in the gated SB until region verification.
    gate_stores: bool,
    /// Data stores may fast-release through the CLQ WAR check (requires
    /// the core's `war_free` hardware; Turnstile-mode regions force it off
    /// even when present).
    war_free: bool,
    /// Checkpoints may fast-release through coloring (same hardware note).
    coloring: bool,
    /// Sensor window the region's instances must wait out before
    /// verification (zero for unprotected regions).
    wcdl: u64,
}

impl ModeFlags {
    fn for_mode(mode: ProtectionMode, cfg: &SimConfig) -> ModeFlags {
        match mode {
            ProtectionMode::Turnpike => ModeFlags {
                detects: true,
                gate_stores: true,
                war_free: cfg.war_free,
                coloring: cfg.coloring,
                wcdl: cfg.wcdl,
            },
            ProtectionMode::Turnstile => ModeFlags {
                detects: true,
                gate_stores: true,
                war_free: false,
                coloring: false,
                wcdl: cfg.wcdl,
            },
            // Unprotected: no detection, no gating, zero window. Checkpoints
            // keep the protected path (colored or quarantined): a protected
            // *neighbor's* recovery reads the slots this region writes, so
            // they must never clobber verified slots out of turn. WAR-free
            // release stays available as the fallback when the immediate
            // path is blocked by an older unverified protected region —
            // gating harder than Turnpike would make "unprotected" slower.
            ProtectionMode::Unprotected => ModeFlags {
                detects: false,
                gate_stores: false,
                war_free: cfg.war_free,
                coloring: cfg.coloring,
                wcdl: 0,
            },
        }
    }
}

fn build_mode_flags(program: &MachProgram, cfg: &SimConfig) -> Vec<ModeFlags> {
    (0..program.num_regions())
        .map(|i| ModeFlags::for_mode(program.region_mode(RegionId(i)), cfg))
        .collect()
}

/// The simulated core.
pub struct Core<'a> {
    cfg: SimConfig,
    program: &'a MachProgram,
    regs: [i64; NUM_PHYS_REGS as usize],
    reg_ready: [u64; NUM_PHYS_REGS as usize],
    /// Parity-corrupted registers (strike while at rest).
    parity_bad: [bool; NUM_PHYS_REGS as usize],
    /// Taint from datapath corruption (wrong value, valid parity).
    tainted: [bool; NUM_PHYS_REGS as usize],
    memory: PagedMem,
    ckpt_memory: PagedMem,
    caches: Hierarchy,
    sb: StoreBuffer,
    rbb: Rbb,
    clq: Box<dyn Clq>,
    coloring: Coloring,
    stats: SimStats,
    faults: Vec<Fault>,
    next_fault: usize,
    /// Pending sensor detections as `(detect_cycle, strike_cycle)`, sorted
    /// by detection time (the strike cycle rides along for detection-latency
    /// accounting).
    pending_detect: Vec<(u64, u64)>,
    /// Most recent strike cycle (attribution for parity detections).
    last_strike: Option<u64>,
    pc: u64,
    /// Current issue cycle.
    cycle: u64,
    /// Issue slots left in `cycle`.
    slots_left: u32,
    /// Memory-port slots left in `cycle`.
    mem_left: u32,
    /// Earliest fetch time (branch redirects).
    fetch_ready: u64,
    /// A datapath strike waiting to corrupt the next register write, as
    /// `(bit, detectable)`. Strikes in unprotected regions corrupt the
    /// value without tainting it (no detection hardware there).
    pending_datapath: Option<(u8, bool)>,
    /// Per-static-region protection switches, indexed by region id.
    /// Derived from (program, cfg); rebuilt on resume, never snapshotted.
    mode_flags: Vec<ModeFlags>,
    /// Attached resilience-event consumer ([`Core::attach_sink`]); the
    /// shared handle lets the caller keep reading the sink after `run`
    /// consumes the core.
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
    /// Latency histograms ([`SimConfig::histograms`]); `None` keeps every
    /// recording site a single branch.
    hists: Option<Box<SimHists>>,
    /// Earliest cycle at which [`Core::settle`] can have any effect (the
    /// front RBB verification point or front SB release, whichever comes
    /// first). Settle calls below this are one compare; 0 forces the full
    /// path, which recomputes it. Derived state: mutation sites that end a
    /// region or rebuild the RBB/SB reset it to 0.
    settle_due: u64,
    /// Snapshot cadence in cycles; 0 disables capture (every run except
    /// [`Core::run_collecting_snapshots`]). Doubles when thinning kicks in.
    snap_every: u64,
    /// Next cycle at or after which a snapshot is captured.
    next_snap: u64,
    /// Captured snapshots, in cycle order.
    snapshots: Vec<CoreSnapshot>,
    /// Pre-decoded superblocks for the fast dispatch path
    /// ([`SimConfig::translate`]). Built lazily on first entry into a quiet
    /// state, or shared across runs of one program via
    /// [`Core::attach_translation`] (fault campaigns translate once).
    translation: Option<Arc<Translation>>,
    /// Early-exit replay guide with its remaining deep-compare budget.
    /// While present, the superblock fast path is suppressed (convergence
    /// probes happen at the top of the per-instruction loop — the golden
    /// capture point); dropped permanently once the budget runs out.
    replay: Option<(&'a ReplayGuide<'a>, u32)>,
}

/// Full microarchitectural state of a [`Core`] at the top of an issue-loop
/// iteration, captured by [`Core::run_collecting_snapshots`] and resumed by
/// [`Core::resume`].
///
/// Cloning is cheap: the functional memories share pages copy-on-write
/// ([`PagedMem`]), and everything else is flat data. Snapshots are
/// `Send + Sync`, so a fault campaign can fork many runs from one snapshot
/// across worker threads.
///
/// # Determinism contract
///
/// A snapshot taken during a fault-free run at cycle `C` lies on the
/// execution path of *any* fault plan whose earliest strike is strictly
/// after `C`: before the first strike `S`, no fault has fired, and the
/// detection bound `min(strike + latency) >= S > C` never clamps a
/// settle or redirects a stall, so the pre-strike state is identical to
/// the fault-free prefix. [`Core::resume`] with such a plan therefore
/// reproduces the from-scratch faulty run bit-for-bit — stats included,
/// because the snapshot carries the prefix's stats and histograms.
#[derive(Debug, Clone)]
pub struct CoreSnapshot {
    cfg: SimConfig,
    regs: [i64; NUM_PHYS_REGS as usize],
    reg_ready: [u64; NUM_PHYS_REGS as usize],
    parity_bad: [bool; NUM_PHYS_REGS as usize],
    tainted: [bool; NUM_PHYS_REGS as usize],
    memory: PagedMem,
    ckpt_memory: PagedMem,
    caches: Hierarchy,
    sb: StoreBuffer,
    rbb: Rbb,
    clq: Box<dyn Clq>,
    coloring: Coloring,
    stats: SimStats,
    pending_detect: Vec<(u64, u64)>,
    last_strike: Option<u64>,
    pc: u64,
    cycle: u64,
    slots_left: u32,
    mem_left: u32,
    fetch_ready: u64,
    pending_datapath: Option<(u8, bool)>,
    hists: Option<Box<SimHists>>,
}

impl CoreSnapshot {
    /// The issue cycle the snapshot was captured at. Fault campaigns fork a
    /// run from the latest snapshot whose cycle is strictly before the
    /// run's earliest strike.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

impl<'a> Core<'a> {
    /// Build a core around a program.
    pub fn new(program: &'a MachProgram, cfg: SimConfig) -> Self {
        let mut memory = PagedMem::new();
        for (i, w) in program.data.words.iter().enumerate() {
            memory.insert(program.data.base + i as u64 * 8, *w);
        }
        let mut regs = [0i64; NUM_PHYS_REGS as usize];
        let mut ckpt_memory = PagedMem::new();
        let mut coloring = Coloring::new(NUM_PHYS_REGS as usize, cfg.colors);
        for &(r, v) in &program.reg_init {
            regs[r.index()] = v;
            // The loader pre-verifies program inputs: color-0 slots hold
            // them and VC points there, so region-0 recovery works.
            ckpt_memory.insert(turnpike_ir::ckpt_slot_addr(r.raw(), 0), v);
            coloring.preverify(r.raw());
        }
        let caches = Hierarchy::new(&cfg);
        let sb = StoreBuffer::new(cfg.sb_size);
        let mode_flags = build_mode_flags(program, &cfg);
        let region0_wcdl = mode_flags.first().map_or(cfg.wcdl, |f| f.wcdl);
        let rbb = Rbb::new(cfg.rbb_size, region0_wcdl);
        let clq: Box<dyn Clq> = if cfg.war_free {
            build_clq(cfg.clq)
        } else {
            build_clq(ClqKind::Off)
        };
        let hists = cfg.histograms.then(Box::<SimHists>::default);
        Core {
            cfg,
            program,
            regs,
            reg_ready: [0; NUM_PHYS_REGS as usize],
            parity_bad: [false; NUM_PHYS_REGS as usize],
            tainted: [false; NUM_PHYS_REGS as usize],
            memory,
            ckpt_memory,
            caches,
            sb,
            rbb,
            clq,
            coloring,
            stats: SimStats::default(),
            faults: Vec::new(),
            next_fault: 0,
            pending_detect: Vec::new(),
            last_strike: None,
            pc: 0,
            cycle: 0,
            slots_left: 0,
            mem_left: 0,
            fetch_ready: 0,
            pending_datapath: None,
            mode_flags,
            sink: None,
            hists,
            settle_due: 0,
            snap_every: 0,
            next_snap: 0,
            snapshots: Vec::new(),
            translation: None,
            replay: None,
        }
    }

    /// Share a pre-built [`Translation`] of this core's program, so callers
    /// running one program many times (fault campaigns) pay the pre-decode
    /// cost once instead of once per run.
    ///
    /// # Panics
    ///
    /// Panics if `tr` was built from a program of a different length.
    pub fn attach_translation(&mut self, tr: Arc<Translation>) {
        assert_eq!(
            tr.len(),
            self.program.insts.len(),
            "translation does not match the program"
        );
        self.translation = Some(tr);
    }

    /// Attach a trace sink; every resilience event of the run is forwarded
    /// to it. The caller retains the other `Rc` handle and reads the sink
    /// back after the run (see [`shared_sink`](crate::shared_sink)).
    pub fn attach_sink(&mut self, sink: Rc<RefCell<dyn TraceSink>>) {
        self.sink = Some(sink);
    }

    /// Forward an event to the attached sink. The untraced path must cost
    /// one predictable branch per call site: the handle test is forced
    /// inline and the actual dispatch outlined as cold, so building the
    /// event sinks into the taken branch.
    #[inline(always)]
    fn emit(&mut self, ev: TraceEvent) {
        if self.sink.is_some() {
            self.emit_to_sink(ev);
        }
    }

    #[cold]
    #[inline(never)]
    fn emit_to_sink(&mut self, ev: TraceEvent) {
        if let Some(s) = &self.sink {
            s.borrow_mut().record(&ev);
        }
    }

    /// Run with fault injection.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_with_faults(mut self, plan: &FaultPlan) -> Result<SimOutcome, SimError> {
        self.start(plan)?;
        self.run_loop()
    }

    /// Validate and install a fault plan, then arm the first issue cycle.
    fn start(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        if plan
            .faults()
            .iter()
            .any(|f| f.detect_latency > self.cfg.wcdl)
        {
            return Err(SimError::BadFaultPlan);
        }
        if let Some(w) = plan.watchdog() {
            self.cfg.cycle_limit = self.cfg.cycle_limit.min(w);
        }
        self.faults = plan.faults().to_vec();
        self.slots_left = self.cfg.issue_width;
        self.mem_left = 1;
        Ok(())
    }

    /// Run with fault injection, capturing a [`CoreSnapshot`] roughly every
    /// `interval` cycles (at the top of the issue loop, so the event-skip
    /// clock may overshoot a capture point; the next loop iteration takes
    /// it). Snapshot count is bounded: past 128 live snapshots every other
    /// one is dropped and the interval doubles, deterministically.
    ///
    /// Intended for fault-free golden runs: fault campaigns capture the
    /// prefix once and [`Core::resume`] each strike run from the latest
    /// snapshot strictly before its first strike. Capture is pure
    /// observation — the outcome is identical to [`Core::run_with_faults`].
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_collecting_snapshots(
        mut self,
        plan: &FaultPlan,
        interval: u64,
    ) -> Result<(SimOutcome, Vec<CoreSnapshot>), SimError> {
        self.start(plan)?;
        self.snap_every = interval.max(1);
        self.next_snap = self.snap_every;
        let outcome = self.run_loop()?;
        Ok((outcome, std::mem::take(&mut self.snapshots)))
    }

    /// Continue execution from `snap` under a new fault plan.
    ///
    /// Per the [`CoreSnapshot`] determinism contract, the outcome is
    /// bit-identical to running the same plan from scratch provided every
    /// strike cycle is strictly after `snap.cycle()` (debug-asserted).
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn resume(
        program: &'a MachProgram,
        snap: &CoreSnapshot,
        plan: &FaultPlan,
    ) -> Result<SimOutcome, SimError> {
        Self::resume_translated(program, snap, plan, None)
    }

    /// [`Core::resume`] with a shared pre-built [`Translation`] of
    /// `program` (see [`Core::attach_translation`]): fault campaigns fork
    /// thousands of runs from one compiled program and pre-decode it once.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    ///
    /// # Panics
    ///
    /// Panics if `translation` was built from a program of a different
    /// length.
    pub fn resume_translated(
        program: &'a MachProgram,
        snap: &CoreSnapshot,
        plan: &FaultPlan,
        translation: Option<Arc<Translation>>,
    ) -> Result<SimOutcome, SimError> {
        Self::resume_replay(program, snap, plan, translation, None)
    }

    /// [`Core::resume_translated`] with an optional early-exit
    /// [`ReplayGuide`]: once the forked strike run's detection window has
    /// closed, its state is probed against the guide's golden snapshots and
    /// the run stops at the first provable reconvergence (see
    /// [`SimOutcome::replay_saved`]). Without a guide (or when convergence
    /// is never established) the outcome is bit-identical to
    /// [`Core::resume_translated`].
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    ///
    /// # Panics
    ///
    /// Panics if `translation` was built from a program of a different
    /// length.
    pub fn resume_replay(
        program: &'a MachProgram,
        snap: &CoreSnapshot,
        plan: &FaultPlan,
        translation: Option<Arc<Translation>>,
        guide: Option<&'a ReplayGuide<'a>>,
    ) -> Result<SimOutcome, SimError> {
        if let Some(tr) = &translation {
            assert_eq!(
                tr.len(),
                program.insts.len(),
                "translation does not match the program"
            );
        }
        debug_assert!(
            plan.faults().iter().all(|f| f.strike_cycle > snap.cycle),
            "fork point must lie strictly before the first strike"
        );
        let mut core = Core {
            cfg: snap.cfg.clone(),
            program,
            regs: snap.regs,
            reg_ready: snap.reg_ready,
            parity_bad: snap.parity_bad,
            tainted: snap.tainted,
            memory: snap.memory.clone(),
            ckpt_memory: snap.ckpt_memory.clone(),
            caches: snap.caches.clone(),
            sb: snap.sb.clone(),
            rbb: snap.rbb.clone(),
            clq: snap.clq.clone(),
            coloring: snap.coloring.clone(),
            stats: snap.stats.clone(),
            faults: Vec::new(),
            next_fault: 0,
            pending_detect: snap.pending_detect.clone(),
            last_strike: snap.last_strike,
            pc: snap.pc,
            cycle: snap.cycle,
            slots_left: snap.slots_left,
            mem_left: snap.mem_left,
            fetch_ready: snap.fetch_ready,
            pending_datapath: snap.pending_datapath,
            mode_flags: build_mode_flags(program, &snap.cfg),
            sink: None,
            hists: snap.hists.clone(),
            settle_due: 0,
            snap_every: 0,
            next_snap: 0,
            snapshots: Vec::new(),
            translation,
            replay: guide.map(|g| (g, REPLAY_BUDGET)),
        };
        if plan
            .faults()
            .iter()
            .any(|f| f.detect_latency > core.cfg.wcdl)
        {
            return Err(SimError::BadFaultPlan);
        }
        // Unlike `start`, slot budgets come from the snapshot (the capture
        // point sits mid-cycle as far as slot accounting is concerned).
        // The watchdog clamp matches `start` so forked and from-scratch
        // runs abort a hang at the same absolute cycle.
        if let Some(w) = plan.watchdog() {
            core.cfg.cycle_limit = core.cfg.cycle_limit.min(w);
        }
        core.faults = plan.faults().to_vec();
        core.run_loop()
    }

    /// Run without faults.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(self) -> Result<SimOutcome, SimError> {
        self.run_with_faults(&FaultPlan::none())
    }

    /// [`Core::run_with_faults`] with an early-exit [`ReplayGuide`] — the
    /// from-scratch analog of [`Core::resume_replay`], used by campaigns
    /// for strike runs that land before the first golden snapshot.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_with_replay(
        mut self,
        plan: &FaultPlan,
        guide: &'a ReplayGuide<'a>,
    ) -> Result<SimOutcome, SimError> {
        self.replay = Some((guide, REPLAY_BUDGET));
        self.run_with_faults(plan)
    }

    /// Run with fault injection and record resilience events into an
    /// in-memory ring buffer holding the most recent `trace_cap` events
    /// (a convenience wrapper over [`Core::attach_sink`] with a
    /// [`Trace`] sink).
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_traced(
        mut self,
        plan: &FaultPlan,
        trace_cap: usize,
    ) -> Result<(SimOutcome, Trace), SimError> {
        let sink = Rc::new(RefCell::new(Trace::new(trace_cap)));
        self.attach_sink(sink.clone());
        let outcome = self.run_with_faults(plan)?;
        let trace = match Rc::try_unwrap(sink) {
            Ok(cell) => cell.into_inner(),
            Err(rc) => rc.borrow().clone(),
        };
        Ok((outcome, trace))
    }

    fn run_loop(&mut self) -> Result<SimOutcome, SimError> {
        loop {
            // Quiet state + translation enabled: dispatch pre-decoded
            // superblocks until the program returns. The fast path performs
            // the same per-instruction work as the interpreter below minus
            // the parts the quiet guard proves are no-ops, so results are
            // bit-identical (see `fast_path_quiet`).
            if self.cfg.translate && self.replay.is_none() && self.fast_path_quiet() {
                let tr = self.ensure_translation();
                if let Some(ret) = self.run_superblocks(&tr)? {
                    // Quiet implies no detection can land in the tail
                    // (`next_detection_bound` is infinite), so completion
                    // is certifiable immediately.
                    return self.finish(ret);
                }
                // Fast path bailed (PC out of range, or a state change that
                // ended quiescence): fall through to the interpreter.
            }
            // Early-exit replay probe: a quiet state (all strikes fired and
            // resolved) at a PC the golden run snapshotted may have
            // reconverged with the golden timeline. Probing happens here —
            // the top of the loop, before settle — because that is exactly
            // where the golden run captured its snapshots. While the guide
            // is held, superblock dispatch stays off (above) so every
            // golden capture point is actually visited.
            if self.replay.is_some() && self.fast_path_quiet() {
                if let Some(out) = self.try_replay_exit() {
                    return Ok(out);
                }
            }
            // Capture before any of the iteration's work so a resumed core
            // entering this loop replays the iteration identically.
            if self.snap_every != 0 && self.cycle >= self.next_snap {
                self.capture_snapshot();
            }
            if self.cycle > self.cfg.cycle_limit {
                return Err(SimError::CycleLimit(self.cfg.cycle_limit));
            }
            // Settle background machinery up to the current cycle.
            self.settle(self.cycle);
            // Fire strikes and detections that are due.
            self.process_faults();

            let inst = *self
                .program
                .insts
                .get(self.pc as usize)
                .ok_or(SimError::PcOutOfRange(self.pc))?;

            if let Some(ret) = self.step(inst)? {
                // Completion is only certifiable once the verification tail
                // is clean: a strike still in flight whose detection lands
                // within the tail invalidates the final regions, so recover
                // and re-execute instead of finishing.
                let tail = self.cycle + self.cfg.wcdl;
                if self.cfg.resilient && self.next_detection_bound() <= tail {
                    let bound = self.next_detection_bound();
                    self.cycle = self.cycle.max(bound);
                    self.process_faults();
                    continue;
                }
                return self.finish(ret);
            }
        }
    }

    /// Record the current state into the snapshot list and schedule the
    /// next capture. Bounds memory deterministically: past 128 snapshots,
    /// every other one is dropped and the cadence doubles.
    fn capture_snapshot(&mut self) {
        self.snapshots.push(CoreSnapshot {
            cfg: self.cfg.clone(),
            regs: self.regs,
            reg_ready: self.reg_ready,
            parity_bad: self.parity_bad,
            tainted: self.tainted,
            memory: self.memory.clone(),
            ckpt_memory: self.ckpt_memory.clone(),
            caches: self.caches.clone(),
            sb: self.sb.clone(),
            rbb: self.rbb.clone(),
            clq: self.clq.clone(),
            coloring: self.coloring.clone(),
            stats: self.stats.clone(),
            pending_detect: self.pending_detect.clone(),
            last_strike: self.last_strike,
            pc: self.pc,
            cycle: self.cycle,
            slots_left: self.slots_left,
            mem_left: self.mem_left,
            fetch_ready: self.fetch_ready,
            pending_datapath: self.pending_datapath,
            hists: self.hists.clone(),
        });
        const CAP: usize = 128;
        if self.snapshots.len() > CAP {
            let mut keep = false;
            self.snapshots.retain(|_| {
                keep = !keep;
                keep
            });
            self.snap_every *= 2;
        }
        self.next_snap = self.cycle + self.snap_every;
    }

    /// Whether the core is *quiet*: every piece of per-iteration work the
    /// interpreter loop performs besides issuing the instruction is provably
    /// a no-op — no snapshot capture is scheduled, no trace sink is
    /// attached, no strike or detection is pending or future, and no
    /// corruption flag is set. Quiet states admit the superblock fast path:
    ///
    /// * `process_faults` can fire nothing, so no recovery, parity trip, or
    ///   datapath corruption can occur mid-block;
    /// * `next_detection_bound` is infinite, so settles are never clamped
    ///   and the SB/RBB stall loops never take their detection escapes;
    /// * every access-time parity/taint check is false, and with no pending
    ///   datapath corruption, `define` can never set a flag — quiescence is
    ///   invariant until the run ends.
    fn fast_path_quiet(&self) -> bool {
        const NO_FLAGS: [bool; NUM_PHYS_REGS as usize] = [false; NUM_PHYS_REGS as usize];
        self.snap_every == 0
            && self.sink.is_none()
            && self.next_fault >= self.faults.len()
            && self.pending_detect.is_empty()
            && self.pending_datapath.is_none()
            && self.parity_bad == NO_FLAGS
            && self.tainted == NO_FLAGS
    }

    fn ensure_translation(&mut self) -> Arc<Translation> {
        self.translation
            .get_or_insert_with(|| Arc::new(Translation::new(self.program)))
            .clone()
    }

    /// Probe the replay guide's snapshots at the current PC for a provable
    /// reconvergence with the golden run; on success, return the fully
    /// synthesized outcome. Failed deep compares and synthesis refusals
    /// burn [`REPLAY_BUDGET`]; exhaustion drops the guide permanently.
    fn try_replay_exit(&mut self) -> Option<SimOutcome> {
        debug_assert!(self.fast_path_quiet());
        let (guide, _) = self.replay?;
        let cands = guide.by_pc.get(&self.pc)?;
        for &i in cands {
            let snap = &guide.snapshots[i as usize];
            if snap.cycle > self.cycle {
                continue;
            }
            // Cheap prefilter: almost every visit to a snapshotted PC is a
            // different loop iteration, and the register file says so.
            if self.regs != snap.regs
                || self.slots_left != snap.slots_left
                || self.mem_left != snap.mem_left
            {
                continue;
            }
            let dc = self.cycle - snap.cycle;
            if self.replay_converged(snap, dc) {
                if let Some(out) = self.synthesize_exit(guide, snap, dc) {
                    return Some(out);
                }
            }
            if let Some((_, budget)) = &mut self.replay {
                *budget -= 1;
                if *budget == 0 {
                    self.replay = None;
                    return None;
                }
            }
        }
        None
    }

    /// Whether the core's state at the top of the issue loop is *future-
    /// behavior equivalent* to the golden snapshot `snap`, with this run's
    /// clock ahead by `dc` cycles and its region sequence numbers ahead by
    /// some `ds >= 0`: from here on, both runs issue the same instructions
    /// with the same timing (shifted by `dc`), produce the same final
    /// memories, and accrue the same statistics deltas.
    ///
    /// Both sides are quiet (the caller guarantees it for this run and the
    /// golden run is fault-free), so the comparison is purely structural.
    /// Timestamps that only matter while they are in the future — register
    /// and fetch readiness — may instead be stale on both sides (a
    /// recovery rewound them); everything else must match under the shift.
    fn replay_converged(&self, snap: &CoreSnapshot, dc: u64) -> bool {
        // The campaign watchdog clamps a strike run's cycle limit below the
        // golden run's; the limit is not core state, and `synthesize_exit`
        // separately refuses any synthesized completion that would overrun
        // it (matching the from-scratch abort). Everything else must agree.
        debug_assert_eq!(
            SimConfig {
                cycle_limit: snap.cfg.cycle_limit,
                ..self.cfg.clone()
            },
            snap.cfg
        );
        const NO_FLAGS: [bool; NUM_PHYS_REGS as usize] = [false; NUM_PHYS_REGS as usize];
        if self.pc != snap.pc
            || !snap.pending_detect.is_empty()
            || snap.pending_datapath.is_some()
            || snap.parity_bad != NO_FLAGS
            || snap.tainted != NO_FLAGS
        {
            return false;
        }
        let Some(ds) = self.rbb.current_seq().checked_sub(snap.rbb.current_seq()) else {
            return false;
        };
        // A readiness time is either exactly shifted or already in the past
        // on both sides — a past time only ever participates in `max` and
        // `wait_until` computations it cannot win.
        let ready_equiv = |a: u64, b: u64| a == b + dc || (a <= self.cycle && b <= snap.cycle);
        if !ready_equiv(self.fetch_ready, snap.fetch_ready) {
            return false;
        }
        for r in 0..NUM_PHYS_REGS as usize {
            if !ready_equiv(self.reg_ready[r], snap.reg_ready[r]) {
                return false;
            }
        }
        if !self.rbb.replay_equivalent(&snap.rbb, dc, ds)
            || !self
                .sb
                .replay_equivalent(&snap.sb, dc, ds, self.cycle, snap.cycle)
            || !self.coloring.replay_equivalent(&snap.coloring, ds)
        {
            return false;
        }
        let (mut sig_a, mut sig_b) = (Vec::new(), Vec::new());
        self.clq.replay_signature(ds, &mut sig_a);
        snap.clq.replay_signature(0, &mut sig_b);
        if sig_a != sig_b {
            return false;
        }
        self.caches
            .replay_equivalent(&snap.caches, self.cycle, snap.cycle)
            && self.memory.content_eq(&snap.memory)
            && self.ckpt_memory.content_eq(&snap.ckpt_memory)
    }

    /// Build the final outcome for a run that reconverged with the golden
    /// snapshot `snap` while `dc` cycles ahead: every additive counter is
    /// `converged + (golden_final - golden_at_snapshot)`, cycle-valued
    /// results shift by `dc`, and peak/extreme statistics are synthesized
    /// only when provably exact — `None` refuses the exit (the run simply
    /// keeps simulating and the refusal counts against the probe budget).
    fn synthesize_exit(
        &mut self,
        guide: &ReplayGuide<'_>,
        snap: &CoreSnapshot,
        dc: u64,
    ) -> Option<SimOutcome> {
        let gf = guide.golden_stats;
        let gs = &snap.stats;
        // The true run's final clock; past the limit the real execution
        // would abort with `CycleLimit`, so let it.
        let cycles = gf.cycles + dc;
        if cycles > self.cfg.cycle_limit {
            return None;
        }
        // Peaks: a golden future that sets a new peak transfers exactly
        // (future occupancies are identical on both sides); otherwise the
        // converged value must already dominate the unknown golden-future
        // maximum's upper bound.
        fn peak(conv: u64, at_snap: u64, at_end: u64) -> Option<u64> {
            if at_end > at_snap {
                Some(conv.max(at_end))
            } else if conv >= at_snap {
                Some(conv)
            } else {
                None
            }
        }
        let sb_peak = peak(self.sb.peak as u64, snap.sb.peak as u64, gf.sb_peak as u64)?;
        let conv_clq = self.clq.stats();
        let snap_clq = snap.clq.stats();
        let clq_peak = peak(
            u64::from(conv_clq.peak_entries),
            u64::from(snap_clq.peak_entries),
            u64::from(gf.clq.peak_entries),
        )?;
        let hists = match (&self.hists, &snap.hists, &gf.hists) {
            (Some(conv), Some(at_snap), Some(at_end)) => Some(Box::new(SimHists {
                sb_residency: conv
                    .sb_residency
                    .extend_by_delta(&at_snap.sb_residency, &at_end.sb_residency)?,
                verify_latency: conv
                    .verify_latency
                    .extend_by_delta(&at_snap.verify_latency, &at_end.verify_latency)?,
                detect_latency: conv
                    .detect_latency
                    .extend_by_delta(&at_snap.detect_latency, &at_end.detect_latency)?,
                recovery_penalty: conv
                    .recovery_penalty
                    .extend_by_delta(&at_snap.recovery_penalty, &at_end.recovery_penalty)?,
            })),
            (None, None, None) => None,
            _ => return None, // histogram presence must agree (same config)
        };
        let rbb_insts_sum = self.rbb.insts_sum + (gf.rbb_insts_sum - snap.rbb.insts_sum);
        let rbb_completed = self.rbb.completed + (gf.rbb_completed - snap.rbb.completed);
        let avg_region_insts = if rbb_completed == 0 {
            0.0
        } else {
            rbb_insts_sum as f64 / rbb_completed as f64
        };
        let s = &self.stats;
        let (l1h, l1m, l2h, l2m) = self.caches.stats();
        let (g_l1h, g_l1m, g_l2h, g_l2m) = snap.caches.stats();
        let stats = SimStats {
            cycles,
            insts: s.insts + (gf.insts - gs.insts),
            stall_sb_full: s.stall_sb_full + (gf.stall_sb_full - gs.stall_sb_full),
            stall_data_hazard: s.stall_data_hazard + (gf.stall_data_hazard - gs.stall_data_hazard),
            stall_ckpt_hazard: s.stall_ckpt_hazard + (gf.stall_ckpt_hazard - gs.stall_ckpt_hazard),
            stall_mem_port: s.stall_mem_port + (gf.stall_mem_port - gs.stall_mem_port),
            stall_rbb_full: s.stall_rbb_full + (gf.stall_rbb_full - gs.stall_rbb_full),
            recovery_cycles: s.recovery_cycles + (gf.recovery_cycles - gs.recovery_cycles),
            loads: s.loads + (gf.loads - gs.loads),
            stores: s.stores + (gf.stores - gs.stores),
            ckpts: s.ckpts + (gf.ckpts - gs.ckpts),
            war_free_released: s.war_free_released + (gf.war_free_released - gs.war_free_released),
            colored_released: s.colored_released + (gf.colored_released - gs.colored_released),
            quarantined: s.quarantined + (gf.quarantined - gs.quarantined),
            sb_coalesced: self.sb.coalesced + (gf.sb_coalesced - snap.sb.coalesced),
            sb_discarded: self.sb.discarded + (gf.sb_discarded - snap.sb.discarded),
            boundaries: s.boundaries + (gf.boundaries - gs.boundaries),
            detections: s.detections + (gf.detections - gs.detections),
            parity_detections: s.parity_detections + (gf.parity_detections - gs.parity_detections),
            sensor_detections: s.sensor_detections + (gf.sensor_detections - gs.sensor_detections),
            recoveries: s.recoveries + (gf.recoveries - gs.recoveries),
            avg_region_insts,
            clq: crate::clq::ClqStats {
                stores_checked: conv_clq.stores_checked
                    + (gf.clq.stores_checked - snap_clq.stores_checked),
                war_free: conv_clq.war_free + (gf.clq.war_free - snap_clq.war_free),
                loads_recorded: conv_clq.loads_recorded
                    + (gf.clq.loads_recorded - snap_clq.loads_recorded),
                overflows: conv_clq.overflows + (gf.clq.overflows - snap_clq.overflows),
                occupancy_sum: conv_clq.occupancy_sum
                    + (gf.clq.occupancy_sum - snap_clq.occupancy_sum),
                occupancy_samples: conv_clq.occupancy_samples
                    + (gf.clq.occupancy_samples - snap_clq.occupancy_samples),
                peak_entries: clq_peak as u32,
            },
            cache: (
                l1h + (gf.cache.0 - g_l1h),
                l1m + (gf.cache.1 - g_l1m),
                l2h + (gf.cache.2 - g_l2h),
                l2m + (gf.cache.3 - g_l2m),
            ),
            sb_peak: sb_peak as usize,
            rbb_insts_sum,
            rbb_completed,
            hists,
        };
        Some(SimOutcome {
            ret: guide.golden_ret,
            memory: BTreeMap::new(),
            ckpt_memory: BTreeMap::new(),
            stats,
            replay_saved: Some(cycles - self.cycle),
        })
    }

    /// Execute pre-decoded superblocks until the program returns
    /// (`Ok(Some(ret))`) or the fast path must hand back to the interpreter
    /// (`Ok(None)`: the PC left the program, or — defensively — an issue
    /// helper reported a recovery redirect that cannot happen while quiet).
    ///
    /// Per instruction this performs exactly the interpreter's sequence —
    /// cycle-limit check, settle, fetch-redirect gate, operand wait, issue
    /// through the same helpers — with the fault, parity, taint, snapshot,
    /// and trace work elided per the [`Core::fast_path_quiet`] proof, so
    /// cycles, stats, and architectural state are bit-identical.
    fn run_superblocks(&mut self, tr: &Translation) -> Result<Option<Option<i64>>, SimError> {
        debug_assert!(self.cfg.translate && self.fast_path_quiet());
        'blocks: loop {
            let pc = self.pc as usize;
            let Some(&run) = tr.run_len.get(pc) else {
                return Ok(None); // out of range: the interpreter raises it
            };
            let n = (run as usize).max(1);
            for dop in &tr.ops[pc..pc + n] {
                if self.cycle > self.cfg.cycle_limit {
                    return Err(SimError::CycleLimit(self.cfg.cycle_limit));
                }
                self.settle(self.cycle);
                // Fetch redirect gate.
                self.wait_until(self.fetch_ready, StallCause::None);
                // Operand readiness over the pre-decoded source slots.
                let mut ready = 0u64;
                for &r in &dop.srcs[..dop.nsrcs as usize] {
                    ready = ready.max(self.reg_ready[r as usize]);
                }
                self.wait_until(
                    ready,
                    StallCause::Data {
                        is_ckpt: matches!(dop.kind, DKind::Ckpt { .. }),
                    },
                );
                match dop.kind {
                    DKind::Bin {
                        op,
                        dst,
                        lhs,
                        rhs,
                        lat,
                    } => {
                        self.take_slot(false);
                        let v = op.eval(self.regs[lhs as usize], self.dread(rhs));
                        self.define_quiet(dst, v, self.cycle + lat);
                    }
                    DKind::Cmp { op, dst, lhs, rhs } => {
                        self.take_slot(false);
                        let v = op.eval(self.regs[lhs as usize], self.dread(rhs));
                        self.define_quiet(dst, v, self.cycle + 1);
                    }
                    DKind::Mov { dst, src } => {
                        self.take_slot(false);
                        let v = self.dread(src);
                        self.define_quiet(dst, v, self.cycle + 1);
                    }
                    DKind::Load {
                        dst,
                        addr,
                        ckpt_slot,
                    } => {
                        if self.mem_left == 0 {
                            self.wait_until(self.cycle + 1, StallCause::MemPort);
                        }
                        self.take_slot(true);
                        let a = self.dresolve(addr);
                        let (value, latency) = if ckpt_slot {
                            // Only recovery blocks use this mode; L1 access.
                            (self.ckpt_memory.get(a).unwrap_or(0), self.cfg.l1_hit)
                        } else if let Some(v) = self.sb.forward(a) {
                            (v, 1) // store-to-load forwarding
                        } else {
                            let lat = self.caches.access(a, self.cycle);
                            (self.memory.get(a).unwrap_or(0), lat)
                        };
                        self.define_quiet(dst, value, self.cycle + latency);
                        self.stats.loads += 1;
                        if self.cfg.resilient && !ckpt_slot {
                            let seq = self.rbb.current_seq();
                            self.clq.record_load(a, seq);
                        }
                    }
                    DKind::Store { src, addr } => {
                        if self.mem_left == 0 {
                            self.wait_until(self.cycle + 1, StallCause::MemPort);
                        }
                        let a = self.dresolve(addr);
                        let value = self.dread(src);
                        self.stats.stores += 1;
                        if !self.do_store(a, value)? {
                            return Ok(None); // unreachable while quiet
                        }
                    }
                    DKind::Ckpt { reg } => {
                        if self.mem_left == 0 {
                            self.wait_until(self.cycle + 1, StallCause::MemPort);
                        }
                        let value = self.regs[reg as usize];
                        self.stats.ckpts += 1;
                        if !self.do_ckpt(reg, value)? {
                            return Ok(None); // unreachable while quiet
                        }
                    }
                    DKind::Boundary { id } => {
                        if self.cfg.resilient && !self.exec_boundary(id)? {
                            return Ok(None); // unreachable while quiet
                        }
                    }
                    DKind::Jump { target } => {
                        self.take_slot(false);
                        self.count_inst();
                        self.pc = u64::from(target);
                        self.fetch_ready = self.cycle + 1 + self.cfg.jump_penalty;
                        continue 'blocks;
                    }
                    DKind::BranchNz { cond, target } => {
                        self.take_slot(false);
                        self.count_inst();
                        if self.regs[cond as usize] != 0 {
                            self.pc = u64::from(target);
                            self.fetch_ready = self.cycle + 1 + self.cfg.branch_penalty;
                        } else {
                            self.pc += 1;
                        }
                        continue 'blocks;
                    }
                    DKind::Ret { value } => {
                        self.take_slot(false);
                        self.count_inst();
                        return Ok(Some(value.map(|v| self.dread(v))));
                    }
                    DKind::Nop => {
                        self.take_slot(false);
                    }
                }
                self.count_inst();
                self.pc += 1;
            }
        }
    }

    fn dread(&self, op: DOperand) -> i64 {
        match op {
            DOperand::Reg(r) => self.regs[r as usize],
            DOperand::Imm(v) => v,
        }
    }

    fn dresolve(&self, addr: DAddr) -> u64 {
        match addr {
            DAddr::RegOff(b, o) => self.regs[b as usize].wrapping_add(o) as u64,
            DAddr::Abs(a) => a,
            DAddr::Ckpt(r) => turnpike_ir::ckpt_slot_addr(r, self.coloring.verified_color(r)),
        }
    }

    /// [`Core::define`] specialized to the quiet fast path: no datapath
    /// corruption can be pending and no source is tainted, so the parity
    /// and taint flags — already false for every register — stay false.
    fn define_quiet(&mut self, dst: u8, value: i64, ready_at: u64) {
        debug_assert!(self.pending_datapath.is_none());
        self.regs[dst as usize] = value;
        self.reg_ready[dst as usize] = ready_at;
    }

    /// Earliest pending or future error-detection instant. Verification and
    /// drains must never settle past this bound: a region whose verification
    /// point lies at or after a detection is not error-free.
    fn next_detection_bound(&self) -> u64 {
        let pending = self.pending_detect.first().map(|&(d, _)| d);
        let future = self.faults[self.next_fault..]
            .iter()
            .map(|f| f.strike_cycle + f.detect_latency)
            .min();
        match (pending, future) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => u64::MAX,
        }
    }

    /// Lazy verification, SB drain, CLQ/coloring rotation up to `now`
    /// (clamped so no region verifies at or past a pending detection).
    ///
    /// Called several times per issued instruction, so the common "nothing
    /// can verify or drain yet" case is a single compare against the cached
    /// next event time; [`Core::settle_slow`] does the real work and
    /// refreshes the cache.
    #[inline]
    fn settle(&mut self, now: u64) {
        if now < self.settle_due {
            return;
        }
        self.settle_slow(now);
    }

    fn settle_slow(&mut self, now: u64) {
        if !self.cfg.resilient {
            // The baseline core has nothing to settle, ever.
            self.settle_due = u64::MAX;
            return;
        }
        let now = now.min(self.next_detection_bound());
        while let Some(inst) = self.rbb.verify_next(now) {
            let vt = inst.end_cycle.expect("ended") + inst.wcdl;
            self.sb.mark_verified(inst.seq, vt);
            self.clq.on_region_verified(inst.seq);
            self.coloring.on_region_verified(inst.seq);
            self.emit(TraceEvent::RegionVerified {
                cycle: vt,
                seq: inst.seq,
            });
            if let Some(h) = self.hists.as_mut() {
                h.verify_latency.record(vt.saturating_sub(inst.start_cycle));
            }
        }
        let mut emptied = false;
        while let Some(e) = self.sb.drain_next(now) {
            emptied = true;
            self.release_and_note(e, now);
        }
        if emptied {
            self.emit(TraceEvent::SbOccupancy {
                cycle: now,
                entries: self.sb.len() as u32,
                seq: self.rbb.current_seq(),
            });
        }
        // Nothing settles again until the front region's verification point
        // passes or the front SB entry's release time arrives. The detection
        // bound is deliberately not part of this: it only clamps, so when no
        // event is due, a settle call is a no-op at any bound.
        let verify_due = self.rbb.earliest_verify_time().map_or(u64::MAX, |v| v + 1);
        let drain_due = self.sb.earliest_release().unwrap_or(u64::MAX);
        self.settle_due = verify_due.min(drain_due);
    }

    /// Release one SB entry, narrating the release (SbRelease, plus a
    /// CacheWriteback for data stores) and recording its SB residency.
    fn release_and_note(&mut self, e: SbEntry, now: u64) {
        let rel = e.release_at.unwrap_or(now);
        self.emit(TraceEvent::SbRelease {
            cycle: rel,
            seq: e.region_seq,
        });
        if let EntryKind::Data { addr } = e.kind {
            self.emit(TraceEvent::CacheWriteback {
                cycle: rel,
                addr,
                seq: e.region_seq,
            });
        }
        if let Some(h) = self.hists.as_mut() {
            h.sb_residency.record(rel.saturating_sub(e.issued_at));
        }
        self.release_entry(e, now);
    }

    fn release_entry(&mut self, e: SbEntry, now: u64) {
        match e.kind {
            EntryKind::Data { addr } => {
                self.memory.insert(addr, e.value);
                self.caches.touch(addr, now);
            }
            EntryKind::CkptFallback { reg } => {
                let color = self.coloring.verified_color(reg);
                self.ckpt_memory
                    .insert(turnpike_ir::ckpt_slot_addr(reg, color), e.value);
            }
        }
    }

    /// Apply strikes up to the current cycle; fire pending detections.
    fn process_faults(&mut self) {
        while self.next_fault < self.faults.len()
            && self.faults[self.next_fault].strike_cycle <= self.cycle
        {
            let f = self.faults[self.next_fault];
            self.next_fault += 1;
            self.emit(TraceEvent::Strike {
                cycle: f.strike_cycle,
            });
            // A strike lands in whatever region is running. Unprotected
            // regions have no parity/sensor hardware: the bit still flips,
            // but nothing is flagged and no detection is scheduled.
            let detects = self.region_flags().detects;
            match f.kind {
                FaultKind::RegisterParity { reg, bit } => {
                    let r = (reg % NUM_PHYS_REGS) as usize;
                    self.regs[r] ^= 1i64 << (bit % 64);
                    if detects {
                        self.parity_bad[r] = true;
                    }
                }
                FaultKind::Datapath { bit } => {
                    // Corrupt the most recently produced value: model as
                    // flipping the destination of the *next* defining
                    // instruction (the one in flight). Recorded as a pending
                    // datapath corruption applied at the next def.
                    self.pending_datapath = Some((bit % 64, detects));
                }
            }
            self.last_strike = Some(f.strike_cycle);
            if detects {
                self.pending_detect
                    .push((f.strike_cycle + f.detect_latency, f.strike_cycle));
                self.pending_detect.sort_unstable();
            }
        }
        while let Some(&(d, s)) = self.pending_detect.first() {
            if d <= self.cycle {
                self.pending_detect.remove(0);
                self.stats.sensor_detections += 1;
                if let Some(h) = self.hists.as_mut() {
                    h.detect_latency.record(d.saturating_sub(s));
                }
                self.trigger_recovery(d, d.max(self.cycle));
            } else {
                break;
            }
        }
    }

    /// Parity/hardening detection: a corrupted register was accessed.
    fn access_check(&mut self, srcs: &[PhysReg]) -> bool {
        srcs.iter().any(|r| self.parity_bad[r.index()])
    }

    /// `detect_at` is the instant the error was detected (the sensor
    /// interrupt time); `now` is the issue cycle at which the core notices,
    /// which can be later when the event-skip clock leapt over `detect_at`.
    /// Regions are only error-free if verified strictly before `detect_at` —
    /// settling to `now` would wrongly verify the struck region (its
    /// detection bound was just popped from the pending list).
    fn trigger_recovery(&mut self, detect_at: u64, now: u64) {
        self.stats.detections += 1;
        if !self.cfg.resilient {
            // Unprotected baseline: the corruption stands (potential SDC).
            self.emit(TraceEvent::Detection { cycle: now });
            return;
        }
        self.stats.recoveries += 1;
        // Verification strictly before the detection instant; everything
        // else (including the struck region) is squashed below. Settle
        // first so the timeline narrates pre-detection verifications
        // before the detection itself.
        self.settle(detect_at);
        self.emit(TraceEvent::Detection { cycle: now });
        self.sb.discard_unverified();
        // Entries already verified but still draining hold values the
        // recovery block may need (e.g. a just-verified checkpoint);
        // release them now, as hardware would read them through the SB.
        let (scheduled, _) = self.sb.drain_all_scheduled();
        for e in scheduled {
            self.release_and_note(e, now);
        }
        let target = self.rbb.recover(now);
        self.coloring.on_squash(target.seq);
        self.clq.on_recovery();
        // Clear corruption flags: restored registers are rewritten; dead
        // ones are guaranteed to be written before read.
        self.parity_bad = [false; NUM_PHYS_REGS as usize];
        self.tainted = [false; NUM_PHYS_REGS as usize];
        self.pending_datapath = None;
        // Drop detections already satisfied by this recovery (all strikes
        // so far are cured by the rollback).
        self.pending_detect
            .retain(|&(d, _)| d > now + self.cfg.wcdl);
        // Recovery rebuilt the RBB and SB fronts.
        self.settle_due = 0;
        // Execute the recovery block functionally, charging its cycles.
        let mut cost = self.cfg.recovery_flush_cycles;
        if let Some(block) = self.program.recovery.get(&target.static_id) {
            for inst in &block.insts {
                cost += match *inst {
                    MachInst::Load { dst, addr } => {
                        let a = self.resolve_addr(addr);
                        self.regs[dst.index()] = self.read_mem_for_recovery(addr, a);
                        self.cfg.l1_hit
                    }
                    MachInst::Bin { op, dst, lhs, rhs } => {
                        self.regs[dst.index()] = op.eval(self.regs[lhs.index()], self.read_op(rhs));
                        1
                    }
                    MachInst::Cmp { op, dst, lhs, rhs } => {
                        self.regs[dst.index()] = op.eval(self.regs[lhs.index()], self.read_op(rhs));
                        1
                    }
                    MachInst::Mov { dst, src } => {
                        self.regs[dst.index()] = self.read_op(src);
                        1
                    }
                    _ => 1,
                };
            }
        }
        self.stats.recovery_cycles += cost;
        if let Some(h) = self.hists.as_mut() {
            h.recovery_penalty.record(cost);
        }
        self.cycle = now + cost;
        self.fetch_ready = self.cycle;
        self.slots_left = self.cfg.issue_width;
        self.mem_left = 1;
        self.reg_ready = [self.cycle; NUM_PHYS_REGS as usize];
        self.pc = target.entry_pc as u64;
        self.emit(TraceEvent::Recovery {
            cycle: now,
            target_seq: target.seq,
            resume_pc: target.entry_pc,
        });
    }

    fn read_mem_for_recovery(&self, addr: MachAddr, resolved: u64) -> i64 {
        match addr {
            MachAddr::CkptSlot(_) => self.ckpt_memory.get(resolved).unwrap_or(0),
            _ => self.memory.get(resolved).unwrap_or(0),
        }
    }

    fn read_op(&self, op: MOperand) -> i64 {
        match op {
            MOperand::Reg(r) => self.regs[r.index()],
            MOperand::Imm(v) => v,
        }
    }

    fn resolve_addr(&self, addr: MachAddr) -> u64 {
        match addr {
            MachAddr::RegOffset(b, o) => self.regs[b.index()].wrapping_add(o) as u64,
            MachAddr::Abs(a) => a,
            MachAddr::CkptSlot(r) => {
                turnpike_ir::ckpt_slot_addr(r.raw(), self.coloring.verified_color(r.raw()))
            }
        }
    }

    /// Advance the issue clock to at least `t`, accounting the stall to
    /// `account` when the wait exceeds the natural slot progression.
    fn wait_until(&mut self, t: u64, account: StallCause) {
        if t > self.cycle {
            let gap = t - self.cycle;
            let kind = match account {
                StallCause::None => None,
                StallCause::SbFull => {
                    self.stats.stall_sb_full += gap;
                    Some(StallKind::SbFull)
                }
                StallCause::Data { is_ckpt } => {
                    self.stats.stall_data_hazard += gap;
                    if is_ckpt {
                        self.stats.stall_ckpt_hazard += gap;
                    }
                    Some(if is_ckpt {
                        StallKind::CkptHazard
                    } else {
                        StallKind::DataHazard
                    })
                }
                StallCause::MemPort => {
                    self.stats.stall_mem_port += gap;
                    Some(StallKind::MemPort)
                }
                StallCause::RbbFull => {
                    self.stats.stall_rbb_full += gap;
                    Some(StallKind::RbbFull)
                }
            };
            if let Some(kind) = kind {
                self.emit(TraceEvent::Stall {
                    cycle: self.cycle,
                    pc: self.pc as u32,
                    seq: self.rbb.current_seq(),
                    kind,
                    cycles: gap,
                });
            }
            self.cycle = t;
            self.slots_left = self.cfg.issue_width;
            self.mem_left = 1;
            self.settle(self.cycle);
        }
    }

    /// Consume an issue slot (advancing the clock when the cycle is full).
    fn take_slot(&mut self, is_mem: bool) {
        if self.slots_left == 0 || (is_mem && self.mem_left == 0) {
            self.cycle += 1;
            self.slots_left = self.cfg.issue_width;
            self.mem_left = 1;
            self.settle(self.cycle);
        }
        self.slots_left -= 1;
        if is_mem {
            self.mem_left -= 1;
        }
    }

    /// Earliest cycle all of `srcs` are available.
    fn operands_ready(&self, srcs: &[PhysReg]) -> u64 {
        srcs.iter()
            .map(|r| self.reg_ready[r.index()])
            .max()
            .unwrap_or(0)
    }

    /// Protection switches for a static region, defaulting out-of-range ids
    /// (region 0 of a region-free program, the pseudo-boundary closing the
    /// final region) to the config's own switches.
    #[inline]
    fn flags_for(&self, id: RegionId) -> ModeFlags {
        self.mode_flags
            .get(id.index())
            .copied()
            .unwrap_or_else(|| ModeFlags::for_mode(ProtectionMode::Turnpike, &self.cfg))
    }

    /// Protection switches of the running region.
    #[inline]
    fn region_flags(&self) -> ModeFlags {
        self.flags_for(self.rbb.current().static_id)
    }

    fn define(&mut self, dst: PhysReg, value: i64, ready_at: u64, taint: bool) {
        let mut v = value;
        let mut t = taint;
        if let Some((bit, detectable)) = self.pending_datapath.take() {
            v ^= 1i64 << bit;
            t = t || detectable;
        }
        self.regs[dst.index()] = v;
        self.reg_ready[dst.index()] = ready_at;
        self.parity_bad[dst.index()] = false;
        self.tainted[dst.index()] = t;
    }

    fn srcs_tainted(&self, srcs: &[PhysReg]) -> bool {
        srcs.iter().any(|r| self.tainted[r.index()])
    }

    /// Issue one instruction; `Ok(Some(ret))` on program end.
    fn step(&mut self, inst: MachInst) -> Result<Option<Option<i64>>, SimError> {
        let srcs = inst.uses();
        // Fetch redirect gate.
        self.wait_until(self.fetch_ready, StallCause::None);
        // Parity check on register access (models per-register parity).
        // The unprotected baseline core has no parity or recovery.
        if self.cfg.resilient && self.access_check(&srcs) {
            self.note_parity_detection();
            self.trigger_recovery(self.cycle, self.cycle);
            return Ok(None);
        }
        // Hardened AGU / branch-path assumption: a datapath-corrupted value
        // feeding an address base or branch condition is caught immediately.
        let addr_base: Option<PhysReg> = match inst {
            MachInst::Store { addr, .. } | MachInst::Load { addr, .. } => addr.base(),
            MachInst::BranchNz { cond, .. } => Some(cond),
            _ => None,
        };
        if let Some(b) = addr_base {
            if self.cfg.resilient
                && self.tainted[b.index()]
                && matches!(inst, MachInst::Store { .. } | MachInst::BranchNz { .. })
            {
                self.note_parity_detection();
                self.trigger_recovery(self.cycle, self.cycle);
                return Ok(None);
            }
        }

        // Operand readiness.
        let ready = self.operands_ready(&srcs);
        self.wait_until(
            ready,
            StallCause::Data {
                is_ckpt: inst.is_ckpt(),
            },
        );

        let taint = self.srcs_tainted(&srcs);
        let mut next_pc = self.pc + 1;

        match inst {
            MachInst::Bin { op, dst, lhs, rhs } => {
                self.take_slot(false);
                let v = op.eval(self.regs[lhs.index()], self.read_op(rhs));
                self.define(dst, v, self.cycle + u64::from(inst.latency()), taint);
            }
            MachInst::Cmp { op, dst, lhs, rhs } => {
                self.take_slot(false);
                let v = op.eval(self.regs[lhs.index()], self.read_op(rhs));
                self.define(dst, v, self.cycle + 1, taint);
            }
            MachInst::Mov { dst, src } => {
                self.take_slot(false);
                let v = self.read_op(src);
                self.define(dst, v, self.cycle + 1, taint);
            }
            MachInst::Load { dst, addr } => {
                if self.mem_left == 0 {
                    self.wait_until(self.cycle + 1, StallCause::MemPort);
                }
                self.take_slot(true);
                let a = self.resolve_addr(addr);
                let (value, latency) = self.do_load(addr, a);
                self.define(dst, value, self.cycle + latency, taint);
                self.stats.loads += 1;
                if self.cfg.resilient && !matches!(addr, MachAddr::CkptSlot(_)) {
                    let seq = self.rbb.current_seq();
                    self.clq.record_load(a, seq);
                }
            }
            MachInst::Store { src, addr } => {
                if self.mem_left == 0 {
                    self.wait_until(self.cycle + 1, StallCause::MemPort);
                }
                let a = self.resolve_addr(addr);
                let value = self.read_op(src);
                self.stats.stores += 1;
                if !self.do_store(a, value)? {
                    return Ok(None); // abandoned: recovery redirected the PC
                }
            }
            MachInst::Ckpt { reg } => {
                if self.mem_left == 0 {
                    self.wait_until(self.cycle + 1, StallCause::MemPort);
                }
                let value = self.regs[reg.index()];
                self.stats.ckpts += 1;
                if !self.do_ckpt(reg.raw(), value)? {
                    return Ok(None); // abandoned: recovery redirected the PC
                }
            }
            MachInst::RegionBoundary { id } => {
                if self.cfg.resilient && !self.exec_boundary(id)? {
                    return Ok(None);
                }
            }
            MachInst::Jump { target } => {
                self.take_slot(false);
                next_pc = target as u64;
                self.fetch_ready = self.cycle + 1 + self.cfg.jump_penalty;
            }
            MachInst::BranchNz { cond, target } => {
                self.take_slot(false);
                if self.regs[cond.index()] != 0 {
                    next_pc = target as u64;
                    self.fetch_ready = self.cycle + 1 + self.cfg.branch_penalty;
                }
            }
            MachInst::Ret { value } => {
                self.take_slot(false);
                self.count_inst();
                return Ok(Some(value.map(|v| self.read_op(v))));
            }
            MachInst::Nop => {
                self.take_slot(false);
            }
        }
        self.count_inst();
        self.pc = next_pc;
        Ok(None)
    }

    /// Pass a region boundary (resilient cores only): allocate an RBB
    /// instance, stalling for room if needed. Returns `Ok(false)` when the
    /// stall ran into an error detection — the marker is abandoned and
    /// re-executed after recovery.
    fn exec_boundary(&mut self, id: turnpike_isa::RegionId) -> Result<bool, SimError> {
        if !self.rbb.has_room() {
            // Stall until the oldest region verifies.
            let t = self
                .rbb
                .earliest_verify_time()
                .map(|v| v + 1)
                .unwrap_or(self.cycle + 1)
                .max(self.cycle + 1);
            let bound = self.next_detection_bound();
            if bound <= t {
                self.wait_until(bound.max(self.cycle), StallCause::RbbFull);
                self.process_faults();
                return Ok(false);
            }
            self.wait_until(t, StallCause::RbbFull);
            self.settle(self.cycle);
            if !self.rbb.has_room() {
                return Err(SimError::StoreDeadlock { cycle: self.cycle });
            }
        }
        // Boundaries are PC markers, not executed operations:
        // the RBB allocates as the marker passes commit, without
        // consuming an issue slot (their cost is code size and
        // RBB occupancy).
        let prior_all_verified = self.rbb.unverified_count() <= 1;
        let wcdl = self.flags_for(id).wcdl;
        self.rbb
            .on_boundary(id, self.pc as u32 + 1, self.cycle, wcdl);
        // The ended region gives the RBB front a verification
        // point the cached settle time doesn't know about.
        self.settle_due = 0;
        let seq = self.rbb.current_seq();
        self.clq.on_region_start(seq, prior_all_verified);
        self.stats.boundaries += 1;
        self.emit(TraceEvent::RegionStart {
            cycle: self.cycle,
            seq,
        });
        Ok(true)
    }

    fn count_inst(&mut self) {
        self.stats.insts += 1;
        if self.cfg.resilient {
            self.rbb.count_inst();
        }
    }

    /// A parity/hardened-path check caught a corrupted value at access
    /// time. Detection latency is attributed to the most recent strike
    /// (exact for single-strike plans; an approximation when several
    /// strikes overlap one access window).
    fn note_parity_detection(&mut self) {
        self.stats.parity_detections += 1;
        if let Some(h) = self.hists.as_mut() {
            let lat = self.last_strike.map_or(0, |s| self.cycle.saturating_sub(s));
            h.detect_latency.record(lat);
        }
    }

    fn do_load(&mut self, addr: MachAddr, a: u64) -> (i64, u64) {
        if let MachAddr::CkptSlot(_) = addr {
            // Only recovery blocks use this mode; treat as L1 access.
            return (self.ckpt_memory.get(a).unwrap_or(0), self.cfg.l1_hit);
        }
        if let Some(v) = self.sb.forward(a) {
            (v, 1) // store-to-load forwarding
        } else {
            let lat = self.caches.access(a, self.cycle);
            (self.memory.get(a).unwrap_or(0), lat)
        }
    }

    fn do_store(&mut self, a: u64, value: i64) -> Result<bool, SimError> {
        if !self.cfg.resilient {
            self.take_slot(true);
            self.memory.insert(a, value);
            self.caches.touch(a, self.cycle);
            return Ok(true);
        }
        let seq = self.rbb.current_seq();
        let flags = self.region_flags();
        // Unprotected region: release straight to memory when provably
        // safe — every older region has verified (a verified region's
        // window already cleared every detection that could roll execution
        // back before this region, and strikes *inside* this region are
        // never detected, so no rollback can reach this store again) and
        // no older gated store to the same address would drain over it.
        // Otherwise fall through to the quarantine path; the region's
        // zero-length window releases the entry at region end anyway.
        if !flags.gate_stores && self.rbb.unverified_count() <= 1 && !self.sb.has_pending_data(a) {
            self.take_slot(true);
            self.memory.insert(a, value);
            self.caches.touch(a, self.cycle);
            return Ok(true);
        }
        // WAR-free fast release? Blocked when an older store to the same
        // address is still gated: releasing past it would reorder the
        // store stream (the gated entry drains over the newer value).
        if flags.war_free && !self.sb.has_pending_data(a) {
            let war_free = self.clq.check_war_free(a, seq);
            self.emit(TraceEvent::ClqCheck {
                cycle: self.cycle,
                addr: a,
                seq,
                war_free,
            });
            if war_free {
                self.take_slot(true);
                self.memory.insert(a, value);
                self.caches.touch(a, self.cycle);
                self.stats.war_free_released += 1;
                self.emit(TraceEvent::WarFreeRelease {
                    cycle: self.cycle,
                    addr: a,
                });
                return Ok(true);
            }
        }
        // Quarantine: may need to stall for a slot.
        let kind = EntryKind::Data { addr: a };
        self.quarantine(kind, value, seq)
    }

    fn do_ckpt(&mut self, reg: u8, value: i64) -> Result<bool, SimError> {
        if !self.cfg.resilient {
            self.take_slot(true);
            self.ckpt_memory
                .insert(turnpike_ir::ckpt_slot_addr(reg, 0), value);
            return Ok(true);
        }
        let seq = self.rbb.current_seq();
        // Checkpoints keep the protected path in every mode (coloring or
        // quarantine): releasing a checkpoint straight into the verified
        // slot would clobber the value a neighboring protected region's
        // recovery restores from (the unsafe-checkpoint problem).
        if self.region_flags().coloring {
            if let Some(color) = self.coloring.try_assign(reg, seq) {
                self.take_slot(true);
                self.ckpt_memory
                    .insert(turnpike_ir::ckpt_slot_addr(reg, color), value);
                self.stats.colored_released += 1;
                self.emit(TraceEvent::ColoredRelease {
                    cycle: self.cycle,
                    reg,
                    color,
                });
                return Ok(true);
            }
        }
        self.quarantine(EntryKind::CkptFallback { reg }, value, seq)
    }

    /// Quarantine a store, stalling for a slot. Returns `false` when the
    /// stall ran into an error detection: the instruction is abandoned and
    /// re-executed after recovery.
    fn quarantine(&mut self, kind: EntryKind, value: i64, seq: u64) -> Result<bool, SimError> {
        // Stall while the SB is full and the store cannot coalesce.
        let mut guard = 0;
        while self.sb.is_full() && !self.sb.can_coalesce(kind, seq) {
            let t = match self.sb.earliest_release() {
                Some(t) => t.max(self.cycle) + 1,
                None => {
                    // Oldest entry's region not yet verified: wait for its
                    // verification (it must have ended, else deadlock).
                    match self.rbb.earliest_verify_time() {
                        Some(v) => v.max(self.cycle) + 1,
                        None => return Err(SimError::StoreDeadlock { cycle: self.cycle }),
                    }
                }
            };
            let bound = self.next_detection_bound();
            if bound <= t {
                self.wait_until(bound.max(self.cycle), StallCause::SbFull);
                self.process_faults();
                return Ok(false);
            }
            self.wait_until(t, StallCause::SbFull);
            guard += 1;
            if guard > 1_000_000 {
                return Err(SimError::StoreDeadlock { cycle: self.cycle });
            }
        }
        self.take_slot(true);
        self.sb.push(kind, value, seq, self.cycle);
        self.stats.quarantined += 1;
        if self.sink.is_some() {
            self.emit_to_sink(TraceEvent::Quarantined {
                cycle: self.cycle,
                seq,
            });
            self.emit_to_sink(TraceEvent::SbOccupancy {
                cycle: self.cycle,
                entries: self.sb.len() as u32,
                seq,
            });
        }
        Ok(true)
    }

    fn finish(&mut self, ret: Option<i64>) -> Result<SimOutcome, SimError> {
        // Verification tail: the last region ends at program completion and
        // verifies WCDL later; everything drains.
        let mut end = self.cycle;
        if self.cfg.resilient {
            // Close the running region so it can verify, waiting out the
            // RBB if older regions are still in their WCDL windows.
            let mut t = self.cycle;
            while !self.rbb.has_room() {
                t = self
                    .rbb
                    .earliest_verify_time()
                    .map(|v| v + 1)
                    .unwrap_or(t + 1)
                    .max(t + 1);
                self.settle(t);
            }
            // The pseudo-boundary closing the final region is out of range
            // for the mode table, so the tail conservatively waits out the
            // config's full window (an upper bound on any region's WCDL).
            self.rbb.on_boundary(
                turnpike_isa::RegionId(u32::MAX),
                self.pc as u32,
                t,
                self.cfg.wcdl,
            );
            self.settle_due = 0;
            let tail = t + self.cfg.wcdl + 1;
            self.settle(tail + self.sb.len() as u64 + 2);
            let (rest, last) = self.sb.drain_all_scheduled();
            for e in rest {
                self.release_and_note(e, last);
            }
            end = end.max(tail).max(last);
            debug_assert!(self.sb.is_empty(), "all stores must drain at exit");
        }
        self.stats.cycles = end;
        self.stats.avg_region_insts = self.rbb.avg_region_insts();
        self.stats.clq = self.clq.stats();
        self.stats.cache = self.caches.stats();
        self.stats.sb_peak = self.sb.peak;
        self.stats.sb_coalesced = self.sb.coalesced;
        self.stats.sb_discarded = self.sb.discarded;
        self.stats.rbb_insts_sum = self.rbb.insts_sum;
        self.stats.rbb_completed = self.rbb.completed;
        self.stats.hists = self.hists.take();
        Ok(SimOutcome {
            ret,
            memory: self.memory.to_btree(),
            ckpt_memory: self.ckpt_memory.to_btree(),
            stats: std::mem::take(&mut self.stats),
            replay_saved: None,
        })
    }
}

/// Stall attribution for the accounting in [`SimStats`].
#[derive(Debug, Clone, Copy)]
enum StallCause {
    None,
    SbFull,
    Data { is_ckpt: bool },
    MemPort,
    RbbFull,
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::{BinOp, CmpOp, DataSegment};
    use turnpike_isa::{MachProgram, RegionId};

    fn r(i: u8) -> PhysReg {
        PhysReg::new(i).unwrap()
    }

    /// store-heavy loop: st to A[i], i++ until 8, with boundaries.
    fn store_loop(with_regions: bool) -> MachProgram {
        let mut insts = vec![MachInst::Mov {
            dst: r(1),
            src: MOperand::Imm(0),
        }];
        let loop_start = insts.len() as u32;
        if with_regions {
            insts.push(MachInst::RegionBoundary { id: RegionId(1) });
        }
        insts.extend([
            MachInst::Bin {
                op: BinOp::Shl,
                dst: r(2),
                lhs: r(1),
                rhs: MOperand::Imm(3),
            },
            MachInst::Bin {
                op: BinOp::Add,
                dst: r(2),
                lhs: r(2),
                rhs: MOperand::Reg(r(0)),
            },
            MachInst::Store {
                src: MOperand::Reg(r(1)),
                addr: MachAddr::RegOffset(r(2), 0),
            },
            MachInst::Bin {
                op: BinOp::Add,
                dst: r(1),
                lhs: r(1),
                rhs: MOperand::Imm(1),
            },
            MachInst::Ckpt { reg: r(1) },
            MachInst::Cmp {
                op: CmpOp::Lt,
                dst: r(3),
                lhs: r(1),
                rhs: MOperand::Imm(8),
            },
            MachInst::BranchNz {
                cond: r(3),
                target: loop_start,
            },
            MachInst::Ret {
                value: Some(MOperand::Reg(r(1))),
            },
        ]);
        let mut p = MachProgram::from_insts("loop", insts, DataSegment::zeroed(0x1000, 8));
        p.reg_init = vec![(r(0), 0x1000)];
        if with_regions {
            // Recovery metadata the compiler would emit: region 0 restores
            // the program input; region 1 additionally restores the
            // loop-carried counter.
            use turnpike_isa::RecoveryBlock;
            let load = |reg| MachInst::Load {
                dst: reg,
                addr: MachAddr::CkptSlot(reg),
            };
            p.recovery.insert(
                RegionId(0),
                RecoveryBlock {
                    insts: vec![load(r(0))],
                },
            );
            p.recovery.insert(
                RegionId(1),
                RecoveryBlock {
                    insts: vec![load(r(0)), load(r(1))],
                },
            );
        }
        p
    }

    #[test]
    fn baseline_runs_and_matches_functional_interp() {
        let p = store_loop(false);
        let golden = turnpike_isa::interp::run(&p, &Default::default()).unwrap();
        let out = Core::new(&p, SimConfig::baseline()).run().unwrap();
        assert_eq!(out.ret, golden.ret);
        assert_eq!(out.memory, golden.memory);
        assert!(out.stats.cycles > 0);
        assert!(out.stats.ipc() > 0.1);
    }

    #[test]
    fn turnstile_matches_functionally_but_runs_slower() {
        let p = store_loop(true);
        let base = Core::new(&p, SimConfig::baseline()).run().unwrap();
        let ts = Core::new(&p, SimConfig::turnstile(4, 30)).run().unwrap();
        assert_eq!(ts.ret, base.ret);
        assert_eq!(ts.memory, base.memory);
        assert!(
            ts.stats.cycles > base.stats.cycles,
            "quarantine must cost cycles ({} vs {})",
            ts.stats.cycles,
            base.stats.cycles
        );
        assert!(ts.stats.quarantined > 0);
        assert!(ts.stats.boundaries > 0);
    }

    #[test]
    fn turnpike_bypasses_and_beats_turnstile() {
        let p = store_loop(true);
        let ts = Core::new(&p, SimConfig::turnstile(4, 30)).run().unwrap();
        let tp = Core::new(&p, SimConfig::turnpike(4, 30)).run().unwrap();
        assert_eq!(tp.ret, ts.ret);
        assert_eq!(tp.memory, ts.memory);
        assert!(
            tp.stats.war_free_released > 0,
            "stores to fresh addresses are WAR-free"
        );
        assert!(tp.stats.colored_released > 0, "ckpts take the colored path");
        assert!(
            tp.stats.cycles <= ts.stats.cycles,
            "turnpike must not be slower ({} vs {})",
            tp.stats.cycles,
            ts.stats.cycles
        );
    }

    #[test]
    fn wcdl_scaling_hurts_turnstile_more() {
        let p = store_loop(true);
        let t10 = Core::new(&p, SimConfig::turnstile(4, 10)).run().unwrap();
        let t50 = Core::new(&p, SimConfig::turnstile(4, 50)).run().unwrap();
        assert!(t50.stats.cycles > t10.stats.cycles);
        let p10 = Core::new(&p, SimConfig::turnpike(4, 10)).run().unwrap();
        let p50 = Core::new(&p, SimConfig::turnpike(4, 50)).run().unwrap();
        let ts_growth = t50.stats.cycles as f64 / t10.stats.cycles as f64;
        let tp_growth = p50.stats.cycles as f64 / p10.stats.cycles as f64;
        assert!(
            tp_growth <= ts_growth + 1e-9,
            "turnpike should scale no worse with WCDL ({tp_growth} vs {ts_growth})"
        );
    }

    #[test]
    fn parity_fault_recovers_without_sdc() {
        let p = store_loop(true);
        let golden = Core::new(&p, SimConfig::turnpike(4, 10)).run().unwrap();
        for cycle in [3, 10, 25, 40] {
            let plan = FaultPlan::new(vec![Fault {
                strike_cycle: cycle,
                detect_latency: 5,
                kind: FaultKind::RegisterParity { reg: 1, bit: 3 },
            }]);
            let out = Core::new(&p, SimConfig::turnpike(4, 10))
                .run_with_faults(&plan)
                .unwrap();
            assert_eq!(out.ret, golden.ret, "strike at {cycle}");
            assert_eq!(out.memory, golden.memory, "strike at {cycle}");
            assert!(out.stats.recoveries >= 1);
            assert!(out.stats.cycles >= golden.stats.cycles);
        }
    }

    #[test]
    fn datapath_fault_recovers_without_sdc() {
        let p = store_loop(true);
        let golden = Core::new(&p, SimConfig::turnpike(4, 10)).run().unwrap();
        for cycle in [2, 7, 19, 33] {
            let plan = FaultPlan::new(vec![Fault {
                strike_cycle: cycle,
                detect_latency: 9,
                kind: FaultKind::Datapath { bit: 17 },
            }]);
            let out = Core::new(&p, SimConfig::turnpike(4, 10))
                .run_with_faults(&plan)
                .unwrap();
            assert_eq!(out.ret, golden.ret, "strike at {cycle}");
            assert_eq!(out.memory, golden.memory, "strike at {cycle}");
        }
    }

    #[test]
    fn unprotected_baseline_can_corrupt() {
        // The same fault on the baseline core is not recovered; it may (and
        // with this plan, does) produce a different result — the SDC that
        // the resilient configurations must never show.
        let p = store_loop(false);
        let golden = Core::new(&p, SimConfig::baseline()).run().unwrap();
        let plan = FaultPlan::new(vec![Fault {
            strike_cycle: 4,
            detect_latency: 5,
            kind: FaultKind::RegisterParity { reg: 1, bit: 40 },
        }]);
        let out = Core::new(&p, SimConfig::baseline())
            .run_with_faults(&plan)
            .unwrap();
        assert!(
            out.memory != golden.memory || out.ret != golden.ret,
            "baseline has no recovery: corruption must be visible"
        );
    }

    #[test]
    fn fault_beyond_wcdl_is_rejected() {
        let p = store_loop(true);
        let plan = FaultPlan::new(vec![Fault {
            strike_cycle: 1,
            detect_latency: 99,
            kind: FaultKind::Datapath { bit: 1 },
        }]);
        let err = Core::new(&p, SimConfig::turnpike(4, 10))
            .run_with_faults(&plan)
            .unwrap_err();
        assert_eq!(err, SimError::BadFaultPlan);
    }

    #[test]
    fn store_to_load_forwarding_from_quarantine() {
        // A load of a quarantined (not yet released) address must see the
        // pending value.
        let insts = vec![
            MachInst::Mov {
                dst: r(1),
                src: MOperand::Imm(42),
            },
            MachInst::Store {
                src: MOperand::Reg(r(1)),
                addr: MachAddr::Abs(0x1000),
            },
            MachInst::Load {
                dst: r(2),
                addr: MachAddr::Abs(0x1000),
            },
            MachInst::Ret {
                value: Some(MOperand::Reg(r(2))),
            },
        ];
        let p = MachProgram::from_insts("fwd", insts, DataSegment::zeroed(0x1000, 1));
        // Turnstile: store sits in the SB; the load still returns 42.
        let out = Core::new(&p, SimConfig::turnstile(4, 50)).run().unwrap();
        assert_eq!(out.ret, Some(42));
        assert_eq!(out.memory.get(&0x1000), Some(&42));
    }
}
