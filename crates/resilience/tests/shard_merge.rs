//! Sharded campaign execution must be a partition, not an approximation.
//!
//! Every run's fault plan derives from `(seed, global run index)` alone, so
//! executing the index ranges of any contiguous partition as independent
//! shards ([`fault_campaign_shard_hooked`]) and folding the shard reports
//! back together ([`CampaignReport::absorb`], ascending range order) must
//! reproduce the unsharded campaign bit for bit — report, metrics, strike
//! records, and fork accounting. The distributed coordinator in the bench
//! harness byte-diffs merged fleet reports against single-process runs on
//! the strength of this property.

use proptest::prelude::*;
use turnpike_resilience::{
    fault_campaign_forked, fault_campaign_shard_hooked, CampaignConfig, CampaignHook,
    CampaignReport, ForkStats, RunSpec, Scheme, StrikeRecord,
};
use turnpike_workloads::{kernel_by_name, Scale, Suite};

const RUNS: usize = 12;

fn config(runs: usize) -> CampaignConfig {
    CampaignConfig {
        runs,
        seed: 0x5AAD,
        strikes_per_run: 1,
        ..Default::default()
    }
}

/// Turn sorted, deduplicated interior cut points into the contiguous
/// `[start, end)` ranges of a partition of `0..RUNS`.
fn ranges_from_cuts(cuts: &[usize]) -> Vec<(usize, usize)> {
    let mut bounds = vec![0];
    bounds.extend(cuts.iter().copied());
    bounds.push(RUNS);
    bounds.windows(2).map(|w| (w[0], w[1])).collect()
}

fn run_sharded(
    program: &turnpike_ir::Program,
    spec: &RunSpec,
    ranges: &[(usize, usize)],
    threads: usize,
) -> (CampaignReport, Vec<StrikeRecord>, ForkStats) {
    let mut merged = CampaignReport::default();
    let mut records = Vec::new();
    let mut fork = ForkStats::default();
    for &(start, end) in ranges {
        let (report, recs, f) = fault_campaign_shard_hooked(
            program,
            spec,
            &config(end - start),
            threads,
            CampaignHook::default(),
            start,
        )
        .unwrap();
        assert_eq!(report.runs, end - start);
        merged.absorb(&report);
        records.extend(recs);
        fork.hits += f.hits;
        fork.misses += f.misses;
        fork.prefix_cycles_saved += f.prefix_cycles_saved;
        fork.replay_exits += f.replay_exits;
        fork.replay_cycles_saved += f.replay_cycles_saved;
    }
    (merged, records, fork)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any contiguous partition of the run indices into 1..=8 shards,
    /// merged in range order, matches the unsharded campaign bit for bit —
    /// at every rung of the Fig-21 ladder.
    #[test]
    fn any_partition_merges_to_the_unsharded_report(
        scheme_idx in 0usize..Scheme::LADDER.len(),
        raw_cuts in prop::collection::vec(1usize..RUNS, 0..7),
        threads in 1usize..4,
    ) {
        let mut cuts = raw_cuts;
        cuts.sort_unstable();
        cuts.dedup();
        let ranges = ranges_from_cuts(&cuts);
        prop_assert!(ranges.len() <= 8);

        let program = kernel_by_name(Suite::Cpu2006, "bwaves", Scale::Smoke)
            .expect("bwaves is in the catalog")
            .program;
        let scheme = Scheme::LADDER[scheme_idx];
        // Histograms and prefix snapshots on: the richest metrics surface
        // (bucket merges, fork/replay paths) must survive the shard fold.
        let spec = RunSpec::new(scheme)
            .with_histograms()
            .with_snapshot_interval(Some(64));

        let (whole, whole_records, whole_fork) =
            fault_campaign_forked(&program, &spec, &config(RUNS), 2).unwrap();
        let (merged, merged_records, merged_fork) =
            run_sharded(&program, &spec, &ranges, threads);

        prop_assert_eq!(&merged, &whole, "{:?} ranges={:?}", scheme, ranges);
        prop_assert_eq!(&merged_records, &whole_records, "{:?}", scheme);
        prop_assert_eq!(merged_fork, whole_fork, "{:?}", scheme);
    }
}

/// The degenerate partitions (one shard, all-singleton shards) are the
/// boundary cases worth pinning outside the property sweep.
#[test]
fn singleton_and_whole_shards_match() {
    let program = kernel_by_name(Suite::Cpu2006, "hmmer", Scale::Smoke)
        .expect("hmmer is in the catalog")
        .program;
    let spec = RunSpec::new(Scheme::Turnpike).with_histograms();
    let runs = 6;
    let (whole, whole_records, _) =
        fault_campaign_forked(&program, &spec, &config(runs), 2).unwrap();

    let singles: Vec<(usize, usize)> = (0..runs).map(|i| (i, i + 1)).collect();
    let (merged, merged_records, _) = run_sharded(&program, &spec, &singles, 1);
    assert_eq!(merged, whole);
    assert_eq!(merged_records, whole_records);

    let (one, one_records, _) = run_sharded(&program, &spec, &[(0, runs)], 2);
    assert_eq!(one, whole);
    assert_eq!(one_records, whole_records);
}
