//! The Turnstile/Turnpike compiler for the MICRO'21 reproduction.
//!
//! Lowers `turnpike-ir` programs to `turnpike-isa` machine code while
//! instrumenting them for acoustic-sensor-based soft error resilience:
//!
//! * **Region partitioning** ([`partition`]) keeps every verifiable region
//!   within the store-buffer budget.
//! * **Eager checkpointing** ([`checkpoint`]) saves updated live-out
//!   registers right after their definitions (Turnstile, the baseline).
//! * **Turnpike optimizations**: store-aware register allocation
//!   ([`regalloc`]), loop induction variable merging ([`livm`]), optimal
//!   checkpoint pruning ([`prune`]), checkpoint sinking/LICM ([`licm`]), and
//!   checkpoint-aware instruction scheduling ([`sched`]).
//!
//! Entry point: [`compile`] with a [`CompilerConfig`]; see the function-level
//! example there. The eight configurations evaluated in the paper's Figure 21
//! are sweeps over [`CompilerConfig`] plus the hardware toggles in
//! `turnpike-sim`.

pub mod checkpoint;
pub mod codegen;
pub mod config;
pub mod dce;
pub mod legalize;
pub mod licm;
pub mod livm;
pub mod partition;
pub mod pass;
pub mod pipeline;
pub mod prune;
pub mod regalloc;
pub mod sched;
pub mod snapshots;
pub mod vulnerability;

pub use codegen::{codegen, codegen_with_modes, CodegenError};
pub use config::{CompilerConfig, PassStats, ProtectionPolicy};
pub use pass::{Pass, PassCx, PassManager, PassObserver, PassRecord};
pub use pipeline::{compile, CompileError, CompileOutput};
pub use prune::PruneRecipes;
pub use regalloc::{AllocError, SPILL_BASE};
pub use snapshots::{compile_with_snapshots, Snapshot, SnapshotObserver};
pub use vulnerability::{RegionModes, VulnerabilityPass};
