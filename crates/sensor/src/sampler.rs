//! Randomized particle-strike schedules for fault-injection campaigns.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// One sampled particle strike: when it lands and how long the nearest
/// sensor takes to report it (always within the grid's WCDL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strike {
    /// Strike cycle.
    pub cycle: u64,
    /// Sensor report delay in cycles (`1..=wcdl`).
    pub detect_latency: u64,
}

/// Deterministic (seeded) strike sampler.
///
/// Detection delays are uniform over `1..=wcdl`: a strike equidistant from
/// all sensors experiences the full worst case, one next to a sensor is
/// reported almost immediately.
#[derive(Debug)]
pub struct StrikeSampler {
    rng: StdRng,
    wcdl: u64,
}

impl StrikeSampler {
    /// A sampler for a platform with the given WCDL.
    pub fn new(seed: u64, wcdl: u64) -> Self {
        StrikeSampler {
            rng: StdRng::seed_from_u64(seed),
            wcdl: wcdl.max(1),
        }
    }

    /// Sample one strike uniformly inside `[0, horizon_cycles)`.
    pub fn sample(&mut self, horizon_cycles: u64) -> Strike {
        let cycle = self.rng.gen_range(0..horizon_cycles.max(1));
        let detect_latency = self.rng.gen_range(1..=self.wcdl);
        Strike {
            cycle,
            detect_latency,
        }
    }

    /// Sample `n` strikes over the horizon, sorted by cycle.
    pub fn campaign(&mut self, n: usize, horizon_cycles: u64) -> Vec<Strike> {
        let mut v: Vec<Strike> = (0..n).map(|_| self.sample(horizon_cycles)).collect();
        v.sort_by_key(|s| s.cycle);
        v
    }

    /// The WCDL this sampler respects.
    pub fn wcdl(&self) -> u64 {
        self.wcdl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_respect_wcdl() {
        let mut s = StrikeSampler::new(7, 10);
        for _ in 0..500 {
            let strike = s.sample(1000);
            assert!(strike.detect_latency >= 1);
            assert!(strike.detect_latency <= 10);
            assert!(strike.cycle < 1000);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let a: Vec<Strike> = StrikeSampler::new(42, 10).campaign(20, 5000);
        let b: Vec<Strike> = StrikeSampler::new(42, 10).campaign(20, 5000);
        let c: Vec<Strike> = StrikeSampler::new(43, 10).campaign(20, 5000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn campaigns_are_sorted() {
        let v = StrikeSampler::new(1, 30).campaign(50, 100_000);
        assert!(v.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert_eq!(v.len(), 50);
    }

    #[test]
    fn degenerate_parameters_clamp() {
        let mut s = StrikeSampler::new(0, 0);
        assert_eq!(s.wcdl(), 1);
        let strike = s.sample(0);
        assert_eq!(strike.cycle, 0);
        assert_eq!(strike.detect_latency, 1);
    }
}
