//! Shape regression tests: the qualitative claims recorded in
//! EXPERIMENTS.md must keep holding as the code evolves. All at smoke scale
//! so the suite stays fast.

use std::sync::OnceLock;
use turnpike_bench::{ablation, fig15, fig19, fig20, fig21, fig22, fig24, Engine};
use turnpike_workloads::Scale;

/// One engine for the whole suite: tests share compiles and baseline runs.
fn engine() -> &'static Engine {
    static E: OnceLock<Engine> = OnceLock::new();
    E.get_or_init(|| Engine::new(4))
}

#[test]
fn turnpike_beats_turnstile_at_every_wcdl() {
    let tp = fig19(engine(), Scale::Smoke);
    let ts = fig20(engine(), Scale::Smoke);
    let tp_g = tp.row("geomean.all").unwrap().to_vec();
    let ts_g = ts.row("geomean.all").unwrap().to_vec();
    for (i, (a, b)) in tp_g.iter().zip(&ts_g).enumerate() {
        assert!(
            a < b,
            "WCDL column {i}: turnpike {a:.3} vs turnstile {b:.3}"
        );
    }
    // Turnstile grows steeply with WCDL; Turnpike stays within ~25%.
    assert!(ts_g.last().unwrap() / ts_g.first().unwrap() > 1.4);
    assert!(*tp_g.last().unwrap() < 1.30, "{tp_g:?}");
}

#[test]
fn wcdl_growth_is_monotone_for_both_schemes() {
    for table in [fig19(engine(), Scale::Smoke), fig20(engine(), Scale::Smoke)] {
        let g = table.row("geomean.all").unwrap();
        for w in g.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "{}: geomean not monotone in WCDL: {g:?}",
                table.id
            );
        }
    }
}

#[test]
fn ladder_first_and_last_rungs_bracket_the_middle() {
    let t = fig21(engine(), Scale::Smoke);
    let g = t.row("geomean.all").unwrap();
    let turnstile = g[0];
    for (i, v) in g.iter().enumerate().skip(1) {
        assert!(
            *v <= turnstile + 1e-9,
            "rung {i} ({v:.3}) worse than turnstile ({turnstile:.3})"
        );
    }
    // The fast-release rung (index 2) captures a large share of the win.
    assert!(g[2] < turnstile - 0.05, "{g:?}");
}

#[test]
fn sb_scaling_directions() {
    let t = fig22(engine(), Scale::Smoke);
    let g = t.row("geomean.all").unwrap();
    // Columns: TP-4, TP-8, TP-10, TS-8, TS-10, TS-20, TS-30, TS-40.
    assert!(g[1] <= g[0] + 1e-9, "bigger SB must not hurt Turnpike");
    assert!(g[7] <= g[3] + 1e-9, "bigger SB must not hurt Turnstile");
    // Turnpike on the tiny SB is competitive with Turnstile on any size.
    assert!(g[0] < g[3] + 0.15, "{g:?}");
}

#[test]
fn ideal_clq_detects_at_least_as_much() {
    let t = fig15(engine(), Scale::Smoke);
    for (label, row) in &t.rows {
        assert!(
            row[0] >= row[1] - 1e-9,
            "{label}: ideal {:.3} < compact {:.3}",
            row[0],
            row[1]
        );
    }
    // The gap kernels create a real aggregate difference.
    let mean = t.row("mean.all").unwrap();
    assert!(mean[0] > mean[1], "{mean:?}");
}

#[test]
fn clq_demand_fits_small_queues() {
    let t = fig24(engine(), Scale::Smoke);
    for (label, row) in &t.rows {
        assert!(row[0] <= 4.0, "{label}: average {:.2} entries", row[0]);
        assert!(row[1] <= 8.0, "{label}: peak {:.0} entries", row[1]);
    }
}

#[test]
fn ablation_identifies_coloring_as_the_long_wcdl_lever() {
    let t = ablation(engine(), Scale::Smoke);
    let full = t.row("Turnpike (full)").unwrap().to_vec();
    let no_coloring = t.row("- HW coloring").unwrap().to_vec();
    let no_warfree = t.row("- WAR-free release").unwrap().to_vec();
    // At WCDL 50 (column 1) the hardware bypasses dominate.
    assert!(
        no_coloring[1] > full[1] + 0.1,
        "{no_coloring:?} vs {full:?}"
    );
    assert!(no_warfree[1] > full[1] + 0.02);
    // Removing any single compiler pass costs less than removing coloring.
    for label in ["- Pruning", "- LICM", "- Inst Sched", "- Store-aware RA"] {
        let row = t.row(label).unwrap();
        assert!(
            row[1] < no_coloring[1],
            "{label} ({:.3}) should cost less than dropping coloring ({:.3})",
            row[1],
            no_coloring[1]
        );
    }
}
