//! Virtual registers and instruction operands.

use std::fmt;

/// A virtual register.
///
/// Virtual registers are dense indices handed out by
/// [`FunctionBuilder::fresh_reg`](crate::FunctionBuilder::fresh_reg). The IR
/// is not strict SSA: a register may be redefined, and the liveness analysis
/// in [`crate::liveness`] resolves which definition reaches a use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

impl Reg {
    /// Numeric index of the register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for Reg {
    fn from(value: u32) -> Self {
        Reg(value)
    }
}

/// Either a register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A virtual register read.
    Reg(Reg),
    /// A signed 64-bit immediate.
    Imm(i64),
}

impl Operand {
    /// The register read by this operand, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// Whether the operand is an immediate constant.
    pub fn is_imm(self) -> bool {
        matches!(self, Operand::Imm(_))
    }

    /// The immediate value, if the operand is a constant.
    pub fn imm(self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(v),
            Operand::Reg(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_and_index() {
        let r = Reg(7);
        assert_eq!(r.to_string(), "v7");
        assert_eq!(r.index(), 7);
        assert_eq!(Reg::from(7u32), r);
    }

    #[test]
    fn operand_accessors() {
        let r = Operand::Reg(Reg(3));
        let i = Operand::Imm(-5);
        assert_eq!(r.reg(), Some(Reg(3)));
        assert_eq!(r.imm(), None);
        assert!(!r.is_imm());
        assert_eq!(i.reg(), None);
        assert_eq!(i.imm(), Some(-5));
        assert!(i.is_imm());
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg(1)), Operand::Reg(Reg(1)));
        assert_eq!(Operand::from(42i64), Operand::Imm(42));
    }

    #[test]
    fn operand_display() {
        assert_eq!(Operand::Reg(Reg(2)).to_string(), "v2");
        assert_eq!(Operand::Imm(-9).to_string(), "-9");
    }
}
