//! Declarative grid enumeration and the design-point type.
//!
//! The axes themselves live in `turnpike_resilience::preset`
//! ([`ExploreAxes`]) so the explorer and the paper's color/WCDL sweeps
//! share one copy of every knob range. This module turns an axes
//! definition into the *canonical* point list: the cartesian product with
//! no-effect axis values collapsed (a color count on a scheme without
//! coloring, a CLQ design on a scheme without WAR-free release), so the
//! search never pays to evaluate two configurations the simulator cannot
//! tell apart.

use turnpike_model::{CostModel, StructureCost};
use turnpike_resilience::{CacheGeom, ExploreAxes, RunSpec, Scheme};
use turnpike_sim::ClqKind;

/// Stable wire/CLI name of a CLQ design (`off`, `ideal`, `compact-N`,
/// `cam-N`). [`parse_clq`] inverts it.
pub fn clq_name(clq: ClqKind) -> String {
    match clq {
        ClqKind::Off => "off".to_string(),
        ClqKind::Ideal => "ideal".to_string(),
        ClqKind::Compact(n) => format!("compact-{n}"),
        ClqKind::Cam(n) => format!("cam-{n}"),
    }
}

/// Parse a [`clq_name`] back into a [`ClqKind`].
pub fn parse_clq(name: &str) -> Option<ClqKind> {
    match name {
        "off" => return Some(ClqKind::Off),
        "ideal" => return Some(ClqKind::Ideal),
        _ => {}
    }
    if let Some(n) = name.strip_prefix("compact-") {
        return n.parse().ok().map(ClqKind::Compact);
    }
    if let Some(n) = name.strip_prefix("cam-") {
        return n.parse().ok().map(ClqKind::Cam);
    }
    None
}

/// One canonical point of the cross-layer design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// Protection scheme (compiler + hardware technique set).
    pub scheme: Scheme,
    /// Worst-case detection latency in cycles.
    pub wcdl: u64,
    /// Store-buffer entries.
    pub sb_size: u32,
    /// CLQ design; `None` means the axis has no effect on this scheme
    /// (no WAR-free release) and was canonicalized away.
    pub clq: Option<ClqKind>,
    /// Color-pool size; `None` means the axis has no effect on this
    /// scheme (no checkpoint coloring) and was canonicalized away.
    pub colors: Option<u8>,
    /// Cache geometry.
    pub geom: CacheGeom,
}

impl DesignPoint {
    /// Stable single-line identity, usable as a sort key and a log label.
    pub fn id(&self) -> String {
        format!(
            "{}|wcdl={}|sb={}|clq={}|colors={}|geom={}",
            self.scheme.cli_name(),
            self.wcdl,
            self.sb_size,
            self.clq.map_or_else(|| "-".to_string(), clq_name),
            self.colors
                .map_or_else(|| "-".to_string(), |c| c.to_string()),
            self.geom.name,
        )
    }

    /// The run specification evaluating this point: the scheme preset with
    /// every swept override applied.
    pub fn spec(&self) -> RunSpec {
        let mut spec = RunSpec::new(self.scheme)
            .with_sb(self.sb_size)
            .with_wcdl(self.wcdl)
            .with_geom(self.geom);
        if let Some(clq) = self.clq {
            spec = spec.with_clq(clq);
        }
        if let Some(colors) = self.colors {
            spec = spec.with_colors(colors);
        }
        spec
    }

    /// Area and energy of the point's added hardware, via
    /// [`CostModel::price`] on the fully-derived simulator configuration.
    pub fn price(&self, model: &CostModel) -> StructureCost {
        model.price(&self.spec().sim_config())
    }
}

/// The enumerated grid: the raw cartesian-product size and the canonical
/// point list (ordered scheme-outermost, geometry-innermost — the
/// deterministic enumeration order every downstream stage preserves).
#[derive(Debug, Clone)]
pub struct Grid {
    /// Size of the raw cartesian product, before canonicalization.
    pub raw: usize,
    /// The canonical points, in enumeration order.
    pub points: Vec<DesignPoint>,
}

/// Enumerate the canonical points of `axes`.
///
/// Canonicalization collapses axis values the simulator provably ignores:
/// a scheme whose configuration has no WAR-free release gets `clq: None`
/// instead of one point per CLQ design, and a scheme without checkpoint
/// coloring gets `colors: None`. Whether an axis matters is read off the
/// scheme's own `SimConfig` (not a hand-maintained list), so a new scheme
/// is classified correctly by construction.
pub fn enumerate(axes: &ExploreAxes) -> Grid {
    let raw = axes.schemes.len()
        * axes.wcdls.len()
        * axes.sb_sizes.len()
        * axes.clqs.len()
        * axes.colors.len()
        * axes.geoms.len();
    let mut points = Vec::new();
    for &scheme in axes.schemes {
        // WAR-free/coloring are scheme properties; probe with any knobs.
        let sc = scheme.sim_config(4, 10);
        let clqs: Vec<Option<ClqKind>> = if sc.war_free {
            axes.clqs.iter().map(|&c| Some(c)).collect()
        } else {
            vec![None]
        };
        let colors: Vec<Option<u8>> = if sc.coloring {
            axes.colors.iter().map(|&c| Some(c)).collect()
        } else {
            vec![None]
        };
        for &wcdl in axes.wcdls {
            for &sb_size in axes.sb_sizes {
                for &clq in &clqs {
                    for &color in &colors {
                        for &geom in axes.geoms {
                            points.push(DesignPoint {
                                scheme,
                                wcdl,
                                sb_size,
                                clq,
                                colors: color,
                                geom,
                            });
                        }
                    }
                }
            }
        }
    }
    Grid { raw, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_resilience::EXPLORE_AXES;

    #[test]
    fn clq_names_round_trip() {
        for clq in [
            ClqKind::Off,
            ClqKind::Ideal,
            ClqKind::Compact(2),
            ClqKind::Compact(4),
            ClqKind::Cam(4),
            ClqKind::Cam(40),
        ] {
            assert_eq!(parse_clq(&clq_name(clq)), Some(clq));
        }
        assert_eq!(parse_clq("compact-x"), None);
        assert_eq!(parse_clq("clq"), None);
        assert_eq!(parse_clq(""), None);
    }

    /// Pins the default grid's shape: 864 raw combinations collapse to 504
    /// canonical points (turnstile has neither a CLQ nor colors, WAR-free
    /// has a CLQ but no colors, turnpike/adaptive sweep everything). The
    /// explore report's pruning counts build on these numbers.
    #[test]
    fn default_grid_shape_is_pinned() {
        let grid = enumerate(&EXPLORE_AXES);
        assert_eq!(grid.raw, 864);
        assert_eq!(grid.points.len(), 504);
        let count = |s: Scheme| grid.points.iter().filter(|p| p.scheme == s).count();
        assert_eq!(count(Scheme::Turnstile), 18);
        assert_eq!(count(Scheme::WarFree), 54);
        assert_eq!(count(Scheme::Turnpike), 216);
        assert_eq!(count(Scheme::Adaptive), 216);
        // Canonical points are unique — collapsing left no duplicates.
        let mut ids: Vec<String> = grid.points.iter().map(DesignPoint::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), grid.points.len());
    }

    #[test]
    fn no_effect_axes_are_collapsed_not_duplicated() {
        let grid = enumerate(&EXPLORE_AXES);
        for p in &grid.points {
            let sc = p.scheme.sim_config(4, 10);
            assert_eq!(p.clq.is_some(), sc.war_free, "{}", p.id());
            assert_eq!(p.colors.is_some(), sc.coloring, "{}", p.id());
        }
    }

    /// Two canonical points must never derive the same (compiler, sim)
    /// configuration pair with the same kernel-facing identity — otherwise
    /// the explorer would evaluate one configuration twice under two
    /// names. (Distinct WCDLs with equal configs cannot happen because
    /// WCDL is itself a SimConfig field, and so on for every axis.)
    #[test]
    fn canonical_points_derive_distinct_configurations() {
        let grid = enumerate(&EXPLORE_AXES);
        let mut configs: Vec<String> = grid
            .points
            .iter()
            .map(|p| {
                let spec = p.spec();
                format!("{:?}|{:?}", spec.compiler_config(), spec.sim_config())
            })
            .collect();
        let total = configs.len();
        configs.sort();
        configs.dedup();
        assert_eq!(configs.len(), total);
    }

    #[test]
    fn point_spec_applies_every_override() {
        let p = DesignPoint {
            scheme: Scheme::Turnpike,
            wcdl: 30,
            sb_size: 8,
            clq: Some(ClqKind::Cam(4)),
            colors: Some(8),
            geom: turnpike_resilience::cache_geom("slim").unwrap(),
        };
        let sc = p.spec().sim_config();
        assert_eq!(sc.wcdl, 30);
        assert_eq!(sc.sb_size, 8);
        assert_eq!(sc.clq, ClqKind::Cam(4));
        assert_eq!(sc.colors, 8);
        assert_eq!(sc.l1_bytes, 32 * 1024);
        assert_eq!(p.id(), "turnpike|wcdl=30|sb=8|clq=cam-4|colors=8|geom=slim");
    }

    #[test]
    fn pricing_tracks_the_grid_axes() {
        let m = CostModel::calibrated();
        let base = DesignPoint {
            scheme: Scheme::Turnpike,
            wcdl: 10,
            sb_size: 4,
            clq: Some(ClqKind::Compact(2)),
            colors: Some(4),
            geom: turnpike_resilience::cache_geom("a53").unwrap(),
        };
        let p0 = base.price(&m);
        let bigger = DesignPoint {
            sb_size: 40,
            ..base
        };
        assert!(bigger.price(&m).area_um2 > p0.area_um2);
        // Geometry is priced as part of the *core* (unchanged baseline
        // caches), so it never moves the added-hardware cost.
        let slim = DesignPoint {
            geom: turnpike_resilience::cache_geom("slim").unwrap(),
            ..base
        };
        assert_eq!(slim.price(&m), p0);
    }
}
