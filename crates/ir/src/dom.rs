//! Dominator tree computation (Cooper–Harvey–Kennedy iterative algorithm).

use crate::block::BlockId;
use crate::cfg::Cfg;

/// Immediate-dominator tree for the reachable part of a CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` = immediate dominator of `b`; entry maps to itself;
    /// unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Compute dominators using the iterative RPO algorithm of
    /// Cooper, Harvey, and Kennedy ("A Simple, Fast Dominance Algorithm").
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let rpo = cfg.rpo();
        let entry = rpo[0];
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // Pick the first processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cfg, p, cur),
                    });
                }
                let new_idom = new_idom.expect("reachable block has a processed predecessor");
                if idom[b.index()] != Some(new_idom) {
                    idom[b.index()] = Some(new_idom);
                    changed = true;
                }
            }
        }
        DomTree { idom, entry }
    }

    /// Immediate dominator of `b` (the entry dominates itself);
    /// `None` for unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() {
            return false; // unreachable blocks are dominated by nothing
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[cur.index()].expect("walked into unreachable block");
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }
}

fn intersect(idom: &[Option<BlockId>], cfg: &Cfg, mut a: BlockId, mut b: BlockId) -> BlockId {
    let key = |x: BlockId| cfg.rpo_index(x).expect("processed blocks are reachable");
    while a != b {
        while key(a) > key(b) {
            a = idom[a.index()].expect("processed");
        }
        while key(b) > key(a) {
            b = idom[b.index()].expect("processed");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BasicBlock, Terminator};
    use crate::function::Function;
    use crate::reg::Reg;

    fn diamond_with_loop() -> Function {
        // bb0 -> bb1 -> {bb2, bb3} -> bb4 -> bb1 (backedge); bb1 -> bb5 exit
        let mut f = Function::empty("g");
        f.num_regs = 1;
        f.blocks = vec![
            BasicBlock::new(Terminator::Jump(BlockId(1))),
            BasicBlock::new(Terminator::Branch {
                cond: Reg(0),
                then_bb: BlockId(2),
                else_bb: BlockId(5),
            }),
            BasicBlock::new(Terminator::Branch {
                cond: Reg(0),
                then_bb: BlockId(3),
                else_bb: BlockId(4),
            }),
            BasicBlock::new(Terminator::Jump(BlockId(4))),
            BasicBlock::new(Terminator::Jump(BlockId(1))),
            BasicBlock::new(Terminator::Ret { value: None }),
        ];
        f
    }

    #[test]
    fn idoms_of_loop_diamond() {
        let f = diamond_with_loop();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&cfg);
        assert_eq!(dt.idom(BlockId(0)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dt.idom(BlockId(3)), Some(BlockId(2)));
        assert_eq!(dt.idom(BlockId(4)), Some(BlockId(2)));
        assert_eq!(dt.idom(BlockId(5)), Some(BlockId(1)));
        assert_eq!(dt.entry(), BlockId(0));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let f = diamond_with_loop();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&cfg);
        assert!(dt.dominates(BlockId(0), BlockId(0)));
        assert!(dt.dominates(BlockId(0), BlockId(5)));
        assert!(dt.dominates(BlockId(1), BlockId(4)));
        assert!(dt.dominates(BlockId(2), BlockId(4)));
        assert!(!dt.dominates(BlockId(3), BlockId(4)));
        assert!(!dt.dominates(BlockId(5), BlockId(1)));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut f = Function::empty("u");
        f.blocks
            .push(BasicBlock::new(Terminator::Ret { value: None }));
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&cfg);
        assert_eq!(dt.idom(BlockId(1)), None);
        assert!(!dt.dominates(BlockId(0), BlockId(1)));
    }
}
