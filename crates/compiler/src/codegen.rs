//! Code generation: allocated IR → flat machine program.
//!
//! By this point the function uses only physical register indices (`< 32`),
//! every `Bin`/`Cmp` has a register left operand, and region boundaries carry
//! stable ids. Codegen:
//!
//! 1. lays blocks out in index order and resolves branch targets;
//! 2. renumbers region boundaries sequentially by PC (the ISA invariant);
//! 3. generates one recovery block per static region: loads of the region's
//!    live-in registers from their checkpoint slots, plus reconstruction
//!    code for checkpoints pruned at that boundary;
//! 4. emits the initial register image (program parameters).

use crate::prune::PruneRecipes;
use crate::vulnerability::RegionModes;
use std::collections::{BTreeMap, HashMap};
use turnpike_ir::{BlockId, Cfg, Inst, Liveness, Operand, Program, Reg, Terminator};
use turnpike_isa::{
    MOperand, MachAddr, MachInst, MachProgram, PhysReg, ProtectionMode, RecoveryBlock, RegionId,
};

/// Codegen failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// A register index exceeds the physical register file (the function was
    /// not register-allocated).
    UnallocatedReg(Reg),
    /// A `Bin`/`Cmp` still has an immediate left operand (not legalized).
    UnlegalizedImm,
    /// An absolute address is negative.
    NegativeAddress(i64),
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::UnallocatedReg(r) => write!(f, "register {r} is not physical"),
            CodegenError::UnlegalizedImm => {
                write!(f, "immediate left operand survived legalization")
            }
            CodegenError::NegativeAddress(a) => write!(f, "negative absolute address {a}"),
        }
    }
}

impl std::error::Error for CodegenError {}

fn phys(r: Reg) -> Result<PhysReg, CodegenError> {
    u8::try_from(r.0)
        .ok()
        .and_then(|i| PhysReg::new(i).ok())
        .ok_or(CodegenError::UnallocatedReg(r))
}

fn moperand(o: Operand) -> Result<MOperand, CodegenError> {
    Ok(match o {
        Operand::Reg(r) => MOperand::Reg(phys(r)?),
        Operand::Imm(v) => MOperand::Imm(v),
    })
}

fn maddr(a: turnpike_ir::Addr) -> Result<MachAddr, CodegenError> {
    Ok(match a.base {
        Some(b) => MachAddr::RegOffset(phys(b)?, a.offset),
        None => {
            if a.offset < 0 {
                return Err(CodegenError::NegativeAddress(a.offset));
            }
            MachAddr::Abs(a.offset as u64)
        }
    })
}

fn lower_inst(inst: &Inst) -> Result<Option<MachInst>, CodegenError> {
    Ok(Some(match *inst {
        Inst::Bin { op, dst, lhs, rhs } => {
            let Operand::Reg(l) = lhs else {
                return Err(CodegenError::UnlegalizedImm);
            };
            MachInst::Bin {
                op,
                dst: phys(dst)?,
                lhs: phys(l)?,
                rhs: moperand(rhs)?,
            }
        }
        Inst::Cmp { op, dst, lhs, rhs } => {
            let Operand::Reg(l) = lhs else {
                return Err(CodegenError::UnlegalizedImm);
            };
            MachInst::Cmp {
                op,
                dst: phys(dst)?,
                lhs: phys(l)?,
                rhs: moperand(rhs)?,
            }
        }
        Inst::Mov { dst, src } => MachInst::Mov {
            dst: phys(dst)?,
            src: moperand(src)?,
        },
        Inst::Load { dst, addr } => MachInst::Load {
            dst: phys(dst)?,
            addr: maddr(addr)?,
        },
        Inst::Store { src, addr } => MachInst::Store {
            src: moperand(src)?,
            addr: maddr(addr)?,
        },
        Inst::Ckpt { reg } => MachInst::Ckpt { reg: phys(reg)? },
        // Placeholder id; renumbered below.
        Inst::RegionBoundary { .. } => MachInst::RegionBoundary { id: RegionId(0) },
        Inst::Nop => return Ok(None),
    }))
}

/// Lower a function to a machine program with every region at the default
/// protection mode ([`codegen_with_modes`] with empty modes).
///
/// # Errors
///
/// See [`CodegenError`].
pub fn codegen(program: &Program, recipes: &PruneRecipes) -> Result<MachProgram, CodegenError> {
    codegen_with_modes(program, recipes, &RegionModes::default())
}

/// Lower a function to a machine program.
///
/// `recipes` carries pruning reconstruction code (empty when pruning is
/// disabled or the function has no regions). `modes` carries the
/// vulnerability pass's per-region protection assignment, keyed by stable
/// boundary id; only non-default modes are attached to the emitted
/// program, so an all-default assignment produces a byte-identical program
/// with an empty mode map.
///
/// # Errors
///
/// See [`CodegenError`]; all variants indicate pipeline bugs rather than
/// user-facing conditions.
pub fn codegen_with_modes(
    program: &Program,
    recipes: &PruneRecipes,
    modes: &RegionModes,
) -> Result<MachProgram, CodegenError> {
    let f = &program.func;
    let cfg = Cfg::compute(f);
    let live = Liveness::compute(f, &cfg);

    // Pass 1: per-block machine instruction counts (for target resolution).
    let mut lowered: Vec<Vec<MachInst>> = Vec::with_capacity(f.blocks.len());
    // Remember which lowered positions are boundaries, with their stable id
    // and their (block, index) for liveness queries.
    struct BoundaryInfo {
        stable_id: u32,
        block: BlockId,
        inst_idx: usize,
        local_pc: usize,
    }
    let mut boundaries: Vec<BoundaryInfo> = Vec::new();
    for (bid, blk) in f.iter_blocks() {
        let mut insts = Vec::with_capacity(blk.insts.len());
        for (ii, inst) in blk.insts.iter().enumerate() {
            if let Some(m) = lower_inst(inst)? {
                if let Inst::RegionBoundary { id } = *inst {
                    boundaries.push(BoundaryInfo {
                        stable_id: id,
                        block: bid,
                        inst_idx: ii,
                        local_pc: insts.len(),
                    });
                }
                insts.push(m);
            }
        }
        lowered.push(insts);
    }

    // Terminator sizes: computed per block given fall-through elision.
    let n = f.blocks.len();
    let mut term_size = vec![0usize; n];
    for (bi, blk) in f.blocks.iter().enumerate() {
        let next = bi + 1;
        term_size[bi] = match blk.term {
            Terminator::Jump(t) => usize::from(t.index() != next),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                if then_bb == else_bb {
                    usize::from(then_bb.index() != next)
                } else {
                    1 + usize::from(else_bb.index() != next)
                }
            }
            Terminator::Ret { .. } => 1,
        };
    }
    let mut block_start = vec![0u32; n];
    let mut pc = 0u32;
    for bi in 0..n {
        block_start[bi] = pc;
        pc += (lowered[bi].len() + term_size[bi]) as u32;
    }

    // Pass 2: emit with resolved targets.
    let mut insts: Vec<MachInst> = Vec::with_capacity(pc as usize);
    for (bi, blk) in f.blocks.iter().enumerate() {
        insts.extend(lowered[bi].iter().copied());
        let next = bi + 1;
        match blk.term {
            Terminator::Jump(t) => {
                if t.index() != next {
                    insts.push(MachInst::Jump {
                        target: block_start[t.index()],
                    });
                }
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                if then_bb == else_bb {
                    if then_bb.index() != next {
                        insts.push(MachInst::Jump {
                            target: block_start[then_bb.index()],
                        });
                    }
                } else {
                    insts.push(MachInst::BranchNz {
                        cond: phys(cond)?,
                        target: block_start[then_bb.index()],
                    });
                    if else_bb.index() != next {
                        insts.push(MachInst::Jump {
                            target: block_start[else_bb.index()],
                        });
                    }
                }
            }
            Terminator::Ret { value } => {
                let value = value.map(moperand).transpose()?;
                insts.push(MachInst::Ret { value });
            }
        }
    }

    // Renumber boundaries sequentially by PC; map stable id → RegionId.
    let mut stable_to_region: HashMap<u32, RegionId> = HashMap::new();
    {
        let mut k = 1u32;
        for inst in insts.iter_mut() {
            if let MachInst::RegionBoundary { id } = inst {
                *id = RegionId(k);
                k += 1;
            }
        }
        // Recover the association via flat PC order of the recorded
        // boundaries (same order as emission: block index, then local pc).
        let mut order: Vec<&BoundaryInfo> = boundaries.iter().collect();
        order.sort_by_key(|b| block_start[b.block.index()] + b.local_pc as u32);
        for (idx, b) in order.iter().enumerate() {
            stable_to_region.insert(b.stable_id, RegionId(idx as u32 + 1));
        }
    }

    // Recovery blocks.
    let mut recovery: BTreeMap<RegionId, RecoveryBlock> = BTreeMap::new();
    // Region 0: restore parameters from their (pre-verified) slots.
    let mut r0 = RecoveryBlock::new();
    for &p in &f.params {
        let pr = phys(p)?;
        r0.insts.push(MachInst::Load {
            dst: pr,
            addr: MachAddr::CkptSlot(pr),
        });
    }
    recovery.insert(RegionId(0), r0);
    for b in &boundaries {
        let region = stable_to_region[&b.stable_id];
        let live_here = live.live_before(f, b.block, b.inst_idx);
        let pruned: Vec<Reg> = recipes.pruned_at(b.stable_id).collect();
        let mut blk = RecoveryBlock::new();
        for r in live_here.iter() {
            if pruned.contains(&r) {
                continue;
            }
            let pr = phys(r)?;
            blk.insts.push(MachInst::Load {
                dst: pr,
                addr: MachAddr::CkptSlot(pr),
            });
        }
        if let Some(list) = recipes.by_boundary.get(&b.stable_id) {
            for (_, def) in list {
                if let Some(m) = lower_inst(def)? {
                    blk.insts.push(m);
                }
            }
        }
        recovery.insert(region, blk);
    }

    let reg_init: Vec<(PhysReg, i64)> = f
        .params
        .iter()
        .zip(&program.param_values)
        .map(|(&p, &v)| Ok((phys(p)?, v)))
        .collect::<Result<_, CodegenError>>()?;

    // Per-region protection modes, translated from stable boundary ids to
    // the final (PC-ordered) region ids. Only deviations from the default
    // are recorded: uniform programs keep an empty map and stay
    // byte-identical to pre-policy output.
    let mut region_modes: BTreeMap<RegionId, ProtectionMode> = BTreeMap::new();
    if let Some(m) = modes.entry {
        if m != ProtectionMode::Turnpike {
            region_modes.insert(RegionId(0), m);
        }
    }
    for (&stable, &m) in &modes.by_stable {
        if m == ProtectionMode::Turnpike {
            continue;
        }
        if let Some(&rid) = stable_to_region.get(&stable) {
            region_modes.insert(rid, m);
        }
    }

    let out = MachProgram {
        name: f.name.clone(),
        insts,
        data: program.data.clone(),
        reg_init,
        recovery,
        region_modes,
    };
    debug_assert_eq!(out.validate(), Ok(()));
    Ok(out)
}

/// Baseline code-size measurement as an analysis [`crate::pass::Pass`]:
/// lowers the allocated (not yet instrumented) function without recovery
/// support to record the code-size denominator. Does not modify the IR.
pub struct BaselineSizePass;

impl crate::pass::Pass for BaselineSizePass {
    fn name(&self) -> &'static str {
        "baseline-size"
    }

    fn is_analysis(&self) -> bool {
        true
    }

    fn run(
        &self,
        prog: &mut Program,
        cx: &mut crate::pass::PassCx<'_>,
    ) -> Result<(), crate::pipeline::CompileError> {
        let base = codegen(prog, &PruneRecipes::default())?;
        cx.metrics.add(
            turnpike_metrics::Counter::BaselineInsts,
            base.insts.len() as u64,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::{DataSegment, FunctionBuilder};
    use turnpike_isa::interp as misa;

    fn small_prog() -> Program {
        let mut b = FunctionBuilder::new("cg");
        let base = b.param();
        let i = b.fresh_reg();
        let c = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(i, 0i64);
        b.jump(body);
        b.switch_to(body);
        b.store(i, base, 0);
        b.add(i, i, 1i64);
        b.cmp_lt(c, i, 5i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(i)));
        Program::with_params(
            b.finish().unwrap(),
            DataSegment::zeroed(0x1000, 1),
            vec![0x1000],
        )
    }

    #[test]
    fn lowered_program_matches_ir_interpreter() {
        let p = small_prog();
        let golden = turnpike_ir::interp::golden(&p).unwrap();
        let m = codegen(&p, &PruneRecipes::default()).unwrap();
        m.validate().unwrap();
        let out = misa::run(&m, &misa::MachInterpConfig::default()).unwrap();
        assert_eq!(out.ret, golden.0);
        assert_eq!(out.memory, golden.1);
    }

    #[test]
    fn boundary_renumbering_is_sequential() {
        let mut b = FunctionBuilder::new("rb");
        let x = b.fresh_reg();
        b.mov(x, 1i64);
        b.inst(Inst::RegionBoundary { id: 41 });
        b.store_abs(x, 0x1000);
        b.inst(Inst::RegionBoundary { id: 7 });
        b.ret(None);
        let f = b.finish().unwrap();
        let p = Program::new(f, DataSegment::zeroed(0, 0));
        let m = codegen(&p, &PruneRecipes::default()).unwrap();
        let ids: Vec<u32> = m
            .insts
            .iter()
            .filter_map(|i| match i {
                MachInst::RegionBoundary { id } => Some(id.0),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(m.num_regions(), 3);
        m.validate().unwrap();
    }

    #[test]
    fn recovery_blocks_cover_live_ins() {
        let mut b = FunctionBuilder::new("rec");
        let v = b.fresh_reg();
        let w = b.fresh_reg();
        b.mov(v, 3i64);
        b.inst(Inst::Ckpt { reg: v });
        b.inst(Inst::RegionBoundary { id: 1 });
        b.add(w, v, 1i64);
        b.ret(Some(Operand::Reg(w)));
        let f = b.finish().unwrap();
        let p = Program::new(f, DataSegment::zeroed(0, 0));
        let m = codegen(&p, &PruneRecipes::default()).unwrap();
        let r1 = &m.recovery[&RegionId(1)];
        // v is live into region 1 -> restored from its slot.
        assert!(r1.insts.iter().any(|i| matches!(
            i,
            MachInst::Load { addr: MachAddr::CkptSlot(r), .. } if r.index() == 0
        )));
        // Region 0 exists with an (empty) recovery block: no params.
        assert!(m.recovery[&RegionId(0)].insts.is_empty());
    }

    #[test]
    fn pruned_registers_use_recipes_not_loads() {
        let mut b = FunctionBuilder::new("pr");
        let a = b.fresh_reg();
        let r = b.fresh_reg();
        let w = b.fresh_reg();
        b.mov(a, 5i64);
        b.inst(Inst::Ckpt { reg: a });
        b.bin(turnpike_ir::BinOp::Add, r, a, 9i64);
        b.inst(Inst::RegionBoundary { id: 3 });
        b.add(w, r, Operand::Reg(a));
        b.ret(Some(Operand::Reg(w)));
        let f = b.finish().unwrap();
        let p = Program::new(f, DataSegment::zeroed(0, 0));
        let mut recipes = PruneRecipes::default();
        recipes.by_boundary.insert(
            3,
            vec![(
                r,
                Inst::Bin {
                    op: turnpike_ir::BinOp::Add,
                    dst: r,
                    lhs: Operand::Reg(a),
                    rhs: Operand::Imm(9),
                },
            )],
        );
        let m = codegen(&p, &recipes).unwrap();
        let blk = &m.recovery[&RegionId(1)];
        // No slot load for r, but an add reconstructing it.
        assert!(!blk.insts.iter().any(|i| matches!(
            i,
            MachInst::Load { addr: MachAddr::CkptSlot(x), .. } if x.index() == 1
        )));
        assert!(blk.insts.iter().any(|i| matches!(
            i,
            MachInst::Bin { dst, .. } if dst.index() == 1
        )));
        m.validate().unwrap();
    }

    #[test]
    fn params_initialize_registers_and_region0_recovery() {
        let p = small_prog();
        let m = codegen(&p, &PruneRecipes::default()).unwrap();
        assert_eq!(m.reg_init.len(), 1);
        assert_eq!(m.reg_init[0].1, 0x1000);
        let r0 = &m.recovery[&RegionId(0)];
        assert_eq!(r0.insts.len(), 1);
    }

    #[test]
    fn fallthrough_jumps_are_elided() {
        let mut b = FunctionBuilder::new("ft");
        let x = b.fresh_reg();
        let nextb = b.create_block();
        b.mov(x, 1i64);
        b.jump(nextb);
        b.switch_to(nextb);
        b.ret(Some(Operand::Reg(x)));
        let f = b.finish().unwrap();
        let p = Program::new(f, DataSegment::zeroed(0, 0));
        let m = codegen(&p, &PruneRecipes::default()).unwrap();
        assert!(!m.insts.iter().any(|i| matches!(i, MachInst::Jump { .. })));
    }
}
