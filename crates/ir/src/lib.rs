//! Compiler intermediate representation for the Turnpike reproduction.
//!
//! The IR is a conventional three-address, load/store representation over an
//! unbounded set of *virtual registers*. It is deliberately small: the
//! Turnpike/Turnstile compiler passes (region partitioning, eager
//! checkpointing, checkpoint pruning, LICM sinking, instruction scheduling,
//! loop induction variable merging, and store-aware register allocation) only
//! need arithmetic, memory, compare-and-branch, and the two resilience
//! pseudo-instructions [`Inst::Ckpt`] and [`Inst::RegionBoundary`].
//!
//! # Layers
//!
//! * [`Function`] / [`BasicBlock`] / [`Inst`] — the IR itself.
//! * [`FunctionBuilder`] — ergonomic construction.
//! * [`mod@cfg`], [`dom`], [`loops`], [`liveness`] — analyses used by the passes.
//! * [`verify`] — structural well-formedness checks.
//! * [`interp`] — a reference interpreter defining golden semantics; the
//!   cycle-level simulator in `turnpike-sim` must agree with it functionally.
//!
//! # Example
//!
//! ```
//! use turnpike_ir::{FunctionBuilder, Operand, Program, DataSegment, interp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FunctionBuilder::new("sum_to_ten");
//! let (i, acc) = (b.fresh_reg(), b.fresh_reg());
//! let body = b.create_block();
//! let done = b.create_block();
//!
//! b.mov(i, Operand::Imm(0));
//! b.mov(acc, Operand::Imm(0));
//! b.jump(body);
//!
//! b.switch_to(body);
//! b.add(acc, Operand::Reg(acc), Operand::Reg(i));
//! b.add(i, Operand::Reg(i), Operand::Imm(1));
//! let c = b.fresh_reg();
//! b.cmp_lt(c, Operand::Reg(i), Operand::Imm(10));
//! b.branch(c, body, done);
//!
//! b.switch_to(done);
//! b.ret(Some(Operand::Reg(acc)));
//!
//! let f = b.finish()?;
//! let program = Program::new(f, DataSegment::zeroed(0x1000, 0));
//! let out = interp::run(&program, &interp::InterpConfig::default())?;
//! assert_eq!(out.ret, Some(45));
//! # Ok(())
//! # }
//! ```

pub mod block;
pub mod builder;
pub mod cfg;
pub mod display;
pub mod dom;
pub mod function;
pub mod inst;
pub mod interp;
pub mod liveness;
pub mod loops;
pub mod reg;
pub mod regset;
pub mod verify;

pub use block::{BasicBlock, BlockId, Terminator};
pub use builder::FunctionBuilder;
pub use cfg::Cfg;
pub use dom::DomTree;
pub use function::{DataSegment, Function, Program};
pub use inst::{Addr, BinOp, CmpOp, Inst};
pub use interp::{ExecOutcome, InterpConfig, InterpError};
pub use liveness::Liveness;
pub use loops::{Loop, LoopForest};
pub use reg::{Operand, Reg};
pub use regset::RegSet;
pub use verify::{verify_function, VerifyError};

/// Base byte address of the checkpoint storage area.
///
/// Checkpoint stores (and the recovery loads that read them back) address a
/// dedicated region of memory that application data never touches. Each
/// architectural register owns [`CKPT_SLOT_STRIDE`] bytes there so that the
/// hardware-coloring scheme can keep four 8-byte colored slots per register.
pub const CKPT_BASE: u64 = 0x8000_0000;

/// Bytes of checkpoint storage owned by each architectural register.
pub const CKPT_SLOT_STRIDE: u64 = 32;

/// Number of colored checkpoint slots per register (the paper's 4-color pool).
pub const CKPT_COLORS: u64 = 4;

/// Byte address of the colored checkpoint slot for physical register `reg`.
///
/// Color 0 is also the slot used when hardware coloring is disabled
/// (Turnstile semantics: one checkpoint location per register).
pub fn ckpt_slot_addr(reg: u8, color: u8) -> u64 {
    debug_assert!((color as u64) < CKPT_COLORS);
    CKPT_BASE + reg as u64 * CKPT_SLOT_STRIDE + color as u64 * 8
}
