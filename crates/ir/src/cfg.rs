//! Control-flow graph utilities: predecessor lists and orderings.

use crate::block::BlockId;
use crate::function::Function;

/// Predecessor/successor information plus a reverse postorder for a function.
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<Option<u32>>,
}

impl Cfg {
    /// Compute the CFG for a function.
    pub fn compute(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (id, b) in f.iter_blocks() {
            for s in b.term.successors() {
                succs[id.index()].push(s);
                preds[s.index()].push(id);
            }
        }
        // Reverse postorder via iterative DFS from entry.
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        // Stack of (block, next-successor-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
        visited[f.entry.index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ss = &succs[b.index()];
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }
        postorder.reverse();
        let mut rpo_index = vec![None; n];
        for (i, b) in postorder.iter().enumerate() {
            rpo_index[b.index()] = Some(i as u32);
        }
        Cfg {
            preds,
            succs,
            rpo: postorder,
            rpo_index,
        }
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Blocks in reverse postorder (entry first). Unreachable blocks are
    /// excluded.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the reverse postorder, or `None` if unreachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<u32> {
        self.rpo_index[b.index()]
    }

    /// Whether `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index(b).is_some()
    }

    /// Number of blocks in the underlying function.
    pub fn num_blocks(&self) -> usize {
        self.preds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BasicBlock, Terminator};
    use crate::reg::Reg;

    /// Build a diamond: bb0 -> {bb1, bb2} -> bb3, plus unreachable bb4.
    fn diamond() -> Function {
        let mut f = Function::empty("d");
        f.num_regs = 1;
        f.blocks = vec![
            BasicBlock::new(Terminator::Branch {
                cond: Reg(0),
                then_bb: BlockId(1),
                else_bb: BlockId(2),
            }),
            BasicBlock::new(Terminator::Jump(BlockId(3))),
            BasicBlock::new(Terminator::Jump(BlockId(3))),
            BasicBlock::new(Terminator::Ret { value: None }),
            BasicBlock::new(Terminator::Ret { value: None }),
        ];
        f
    }

    #[test]
    fn preds_and_succs() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert!(cfg.preds(BlockId(0)).is_empty());
        assert_eq!(cfg.num_blocks(), 5);
    }

    #[test]
    fn rpo_starts_at_entry_and_skips_unreachable() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.rpo()[0], BlockId(0));
        assert_eq!(cfg.rpo().len(), 4);
        assert!(!cfg.is_reachable(BlockId(4)));
        assert!(cfg.is_reachable(BlockId(3)));
        // Entry has RPO index 0; join comes after both branches.
        assert_eq!(cfg.rpo_index(BlockId(0)), Some(0));
        let j = cfg.rpo_index(BlockId(3)).unwrap();
        assert!(j > cfg.rpo_index(BlockId(1)).unwrap());
        assert!(j > cfg.rpo_index(BlockId(2)).unwrap());
    }

    #[test]
    fn loop_rpo_places_header_before_body() {
        // bb0 -> bb1 (header) -> bb2 (body) -> bb1; bb1 -> bb3 exit.
        let mut f = Function::empty("l");
        f.num_regs = 1;
        f.blocks = vec![
            BasicBlock::new(Terminator::Jump(BlockId(1))),
            BasicBlock::new(Terminator::Branch {
                cond: Reg(0),
                then_bb: BlockId(2),
                else_bb: BlockId(3),
            }),
            BasicBlock::new(Terminator::Jump(BlockId(1))),
            BasicBlock::new(Terminator::Ret { value: None }),
        ];
        let cfg = Cfg::compute(&f);
        assert!(cfg.rpo_index(BlockId(1)).unwrap() < cfg.rpo_index(BlockId(2)).unwrap());
        assert_eq!(cfg.preds(BlockId(1)), &[BlockId(0), BlockId(2)]);
    }
}
