//! Tabular result container shared by all figure generators.

/// A named table of labeled numeric rows (one row per benchmark or series
/// point, one column per configuration).
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure/table identifier, e.g. `"fig19"`.
    pub id: String,
    /// Human-readable caption.
    pub title: String,
    /// Column headers (excluding the leading label column).
    pub columns: Vec<String>,
    /// Rows: `(label, values)`, one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// An empty table with headers.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics when the value count does not match the column count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Look up a row by label.
    pub fn row(&self, label: &str) -> Option<&[f64]> {
        self.rows
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| v.as_slice())
    }

    /// The values in one column across all rows.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|(_, v)| v[idx]).collect())
    }

    /// Serialize as pretty JSON (hand-rolled: the build environment has no
    /// registry access for serde, and the format is this one fixed shape).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.rows.len() * 64);
        out.push_str("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_string(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        out.push_str("  \"columns\": [");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(c));
        }
        out.push_str("],\n  \"rows\": [");
        for (i, (label, values)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    [");
            out.push_str(&json_string(label));
            out.push_str(", [");
            for (j, v) in values.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_number(*v));
            }
            out.push_str("]]");
        }
        if !self.rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// Serialize as compact single-line JSON — same structure and number
    /// formatting as [`Table::to_json`], no whitespace. The serving layer's
    /// line-delimited protocol embeds figure results with this.
    pub fn to_compact_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.rows.len() * 48);
        out.push_str(&format!(
            "{{\"id\":{},\"title\":{},\"columns\":[",
            json_string(&self.id),
            json_string(&self.title)
        ));
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(c));
        }
        out.push_str("],\"rows\":[");
        for (i, (label, values)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            out.push_str(&json_string(label));
            out.push_str(",[");
            for (j, v) in values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_number(*v));
            }
            out.push_str("]]");
        }
        out.push_str("]}");
        out
    }
}

/// JSON-escape a string (control characters, quotes, backslashes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a finite double as a JSON number (non-finite values have no JSON
/// representation; emit null like serde_json does).
pub fn json_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    // `{}` on f64 prints the shortest representation that round-trips,
    // which is valid JSON; force a decimal point for integral values so
    // consumers see a float.
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([9])
            .max()
            .unwrap_or(9);
        write!(f, "{:<label_w$}", "benchmark")?;
        for c in &self.columns {
            write!(f, " {c:>14}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:<label_w$}")?;
            for v in values {
                if v.abs() >= 1000.0 {
                    write!(f, " {v:>14.1}")?;
                } else {
                    write!(f, " {v:>14.4}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut t = Table::new("figX", "demo", &["a", "b"]);
        t.push("k1", vec![1.0, 2.0]);
        t.push("k2", vec![3.0, 4.0]);
        assert_eq!(t.row("k1"), Some(&[1.0, 2.0][..]));
        assert_eq!(t.row("nope"), None);
        assert_eq!(t.column("b"), Some(vec![2.0, 4.0]));
        assert_eq!(t.column("c"), None);
        let s = t.to_string();
        assert!(s.contains("figX"));
        assert!(s.contains("k2"));
        let j = t.to_json();
        assert!(j.contains("\"columns\""));
    }

    #[test]
    fn compact_json_is_one_line_with_the_same_content() {
        let mut t = Table::new("figX", "demo", &["a", "b"]);
        t.push("k1", vec![1.0, 2.5]);
        let c = t.to_compact_json();
        assert!(!c.contains('\n'));
        assert_eq!(
            c,
            "{\"id\":\"figX\",\"title\":\"demo\",\"columns\":[\"a\",\"b\"],\
             \"rows\":[[\"k1\",[1.0,2.5]]]}"
        );
        // Same bytes as the pretty renderer modulo whitespace.
        let pretty: String = t.to_json().split_whitespace().collect();
        assert_eq!(pretty, c);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("f", "t", &["a"]);
        t.push("x", vec![1.0, 2.0]);
    }
}
