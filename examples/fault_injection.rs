//! Fault injection: strike a Turnpike-protected kernel with particles and
//! show that every run recovers to the fault-free result (zero SDC), while
//! the unprotected baseline silently corrupts.
//!
//! ```sh
//! cargo run --example fault_injection
//! ```

use turnpike::resilience::{fault_campaign, CampaignConfig, RunSpec, Scheme};
use turnpike::workloads::{kernel_by_name, Scale, Suite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = kernel_by_name(Suite::Cpu2006, "leslie3d", Scale::Smoke)
        .expect("leslie3d is in the catalog");
    println!("kernel: {} ({})", kernel.name, kernel.suite);

    let config = CampaignConfig {
        runs: 25,
        seed: 2021,
        strikes_per_run: 1,
        ..Default::default()
    };

    for scheme in [Scheme::Turnstile, Scheme::Turnpike] {
        let report = fault_campaign(&kernel.program, &RunSpec::new(scheme), &config)?;
        println!(
            "{:<10} runs={} detections={} recoveries={} SDC={} {}",
            scheme.label(),
            report.runs,
            report.detections,
            report.recoveries,
            report.sdc,
            if report.sdc_free() {
                "(zero silent corruption)"
            } else {
                "(!!)"
            }
        );
        assert!(report.sdc_free(), "resilient schemes must never show SDC");
    }

    // The baseline has no sensors and no recovery: strikes are free to
    // corrupt the output. (Some strikes still land in dead state.)
    let report = fault_campaign(&kernel.program, &RunSpec::new(Scheme::Baseline), &config)?;
    println!(
        "{:<10} runs={} SDC={} (no protection: corruption is possible)",
        Scheme::Baseline.label(),
        report.runs,
        report.sdc,
    );
    Ok(())
}
