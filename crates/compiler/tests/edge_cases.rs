//! Edge-case integration tests for the compiler pipeline: shapes that
//! stress pass interactions rather than any single pass.

use turnpike_compiler::{compile, CompilerConfig};
use turnpike_ir::{
    interp, BinOp, CmpOp, DataSegment, FunctionBuilder, Inst, Operand, Program, Reg,
};
use turnpike_isa::interp as misa;

fn golden_matches(p: &Program, cfg: &CompilerConfig) {
    let golden = interp::golden(p).expect("interprets");
    let out = compile(p, cfg).expect("compiles");
    out.program.validate().expect("validates");
    let m = misa::run(&out.program, &Default::default()).expect("executes");
    assert_eq!(m.ret, golden.0);
    let data: std::collections::BTreeMap<u64, i64> = m
        .memory
        .into_iter()
        .filter(|(a, _)| *a < turnpike_compiler::SPILL_BASE)
        .collect();
    assert_eq!(data, golden.1);
}

/// Triple-nested loops with stores at every depth.
#[test]
fn nested_loops_partition_soundly() {
    let mut b = FunctionBuilder::new("nest");
    let base = b.param();
    let (i, j, k, t, c) = (
        b.fresh_reg(),
        b.fresh_reg(),
        b.fresh_reg(),
        b.fresh_reg(),
        b.fresh_reg(),
    );
    let li = b.create_block();
    let lj = b.create_block();
    let lk = b.create_block();
    let ek = b.create_block();
    let ej = b.create_block();
    let done = b.create_block();
    b.mov(i, 0i64);
    b.jump(li);
    b.switch_to(li);
    b.mov(j, 0i64);
    b.jump(lj);
    b.switch_to(lj);
    b.mov(k, 0i64);
    b.jump(lk);
    b.switch_to(lk);
    b.mul(t, i, 9i64);
    b.add(t, t, Operand::Reg(j));
    b.add(t, t, Operand::Reg(k));
    b.shl(t, t, 3i64);
    b.bin(BinOp::Rem, t, t, 64i64 * 8);
    b.add(t, t, Operand::Reg(base));
    b.store(k, t, 0);
    b.add(k, k, 1i64);
    b.cmp(CmpOp::Lt, c, k, 3i64);
    b.branch(c, lk, ek);
    b.switch_to(ek);
    b.add(j, j, 1i64);
    b.cmp(CmpOp::Lt, c, j, 3i64);
    b.branch(c, lj, ej);
    b.switch_to(ej);
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, 3i64);
    b.branch(c, li, done);
    b.switch_to(done);
    b.ret(Some(Operand::Reg(t)));
    let p = Program::with_params(
        b.finish().unwrap(),
        DataSegment::zeroed(0x1_0000, 64),
        vec![0x1_0000],
    );
    for sb in [2u32, 4, 8] {
        golden_matches(&p, &CompilerConfig::turnstile(sb));
        golden_matches(&p, &CompilerConfig::turnpike(sb));
    }
}

/// A loop whose body is split across several blocks (if/else inside).
#[test]
fn multi_block_loop_bodies() {
    let mut b = FunctionBuilder::new("mb");
    let base = b.param();
    let (i, v, t, c) = (b.fresh_reg(), b.fresh_reg(), b.fresh_reg(), b.fresh_reg());
    let head = b.create_block();
    let odd = b.create_block();
    let even = b.create_block();
    let latch = b.create_block();
    let done = b.create_block();
    b.mov(i, 0i64);
    b.mov(v, 0i64);
    b.jump(head);
    b.switch_to(head);
    b.bin(BinOp::And, c, i, 1i64);
    b.branch(c, odd, even);
    b.switch_to(odd);
    b.add(v, v, Operand::Reg(i));
    b.shl(t, i, 3i64);
    b.add(t, t, Operand::Reg(base));
    b.store(v, t, 0);
    b.jump(latch);
    b.switch_to(even);
    b.xor(v, v, Operand::Reg(i));
    b.jump(latch);
    b.switch_to(latch);
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, 20i64);
    b.branch(c, head, done);
    b.switch_to(done);
    b.ret(Some(Operand::Reg(v)));
    let p = Program::with_params(
        b.finish().unwrap(),
        DataSegment::zeroed(0x1_0000, 20),
        vec![0x1_0000],
    );
    golden_matches(&p, &CompilerConfig::turnpike(4));
    golden_matches(&p, &CompilerConfig::turnstile(2));
}

/// Branch whose both arms are the same target, plus a jump to the next
/// block (fall-through elision paths in codegen).
#[test]
fn degenerate_control_flow() {
    let mut b = FunctionBuilder::new("deg");
    let (x, c) = (b.fresh_reg(), b.fresh_reg());
    let merged = b.create_block();
    let next = b.create_block();
    b.mov(x, 3i64);
    b.cmp(CmpOp::Gt, c, x, 0i64);
    b.branch(c, merged, merged); // same target both ways
    b.switch_to(merged);
    b.add(x, x, 1i64);
    b.jump(next); // jump to physically next block: elided
    b.switch_to(next);
    b.ret(Some(Operand::Reg(x)));
    let p = Program::new(b.finish().unwrap(), DataSegment::zeroed(0, 0));
    golden_matches(&p, &CompilerConfig::baseline());
    golden_matches(&p, &CompilerConfig::turnpike(4));
}

/// Checkpointed value consumed only by the terminator of a later block.
#[test]
fn terminator_only_uses_cross_regions() {
    let mut b = FunctionBuilder::new("term");
    let (x, y) = (b.fresh_reg(), b.fresh_reg());
    let t1 = b.create_block();
    let t2 = b.create_block();
    b.mov(x, 1i64);
    b.store_abs(x, 0x1000);
    b.store_abs(x, 0x1008);
    b.store_abs(x, 0x1010); // forces a split boundary before here (budget 2)
    b.jump(t1);
    b.switch_to(t1);
    b.branch(x, t2, t2);
    b.switch_to(t2);
    b.mov(y, 9i64);
    b.ret(Some(Operand::Reg(y)));
    let p = Program::new(b.finish().unwrap(), DataSegment::zeroed(0x1000, 3));
    golden_matches(&p, &CompilerConfig::turnstile(4));
}

/// Immediates at the encoding boundaries survive the full pipeline.
#[test]
fn extreme_immediates() {
    let mut b = FunctionBuilder::new("imm");
    let (x, y) = (b.fresh_reg(), b.fresh_reg());
    b.mov(x, i32::MAX as i64);
    b.add(y, x, i32::MIN as i64 + 1);
    b.store_abs(y, 0x1000);
    b.mov(x, -128i64); // i8 store-immediate limit
    b.store_abs(-128i64, 0x1008);
    b.store_abs(127i64, 0x1010);
    b.ret(Some(Operand::Reg(y)));
    let p = Program::new(b.finish().unwrap(), DataSegment::zeroed(0x1000, 3));
    golden_matches(&p, &CompilerConfig::turnpike(4));
    // The encoded program round-trips.
    let out = compile(&p, &CompilerConfig::turnpike(4)).unwrap();
    let bytes = turnpike_isa::encode_program(&out.program.insts).unwrap();
    assert_eq!(
        turnpike_isa::decode_program(&bytes).unwrap(),
        out.program.insts
    );
}

/// An empty-body function and a single-store function (minimal regions).
#[test]
fn minimal_programs() {
    let mut b = FunctionBuilder::new("empty");
    b.ret(None);
    let p = Program::new(b.finish().unwrap(), DataSegment::zeroed(0, 0));
    golden_matches(&p, &CompilerConfig::turnpike(4));

    let mut b = FunctionBuilder::new("one_store");
    b.store_abs(7i64, 0x1000);
    b.ret(None);
    let p = Program::new(b.finish().unwrap(), DataSegment::zeroed(0x1000, 1));
    golden_matches(&p, &CompilerConfig::turnstile(2));
    golden_matches(&p, &CompilerConfig::turnpike(2));
}

/// LICM's store-bound revert path: a boundary-free loop checkpointing
/// enough registers that hoisting them all to the exit would blow the SB
/// bound; the transformation must be (partially or fully) declined while
/// semantics hold.
#[test]
fn licm_revert_keeps_semantics() {
    let mut b = FunctionBuilder::new("revert");
    let base = b.param();
    let accs: Vec<Reg> = (0..3).map(|_| b.fresh_reg()).collect();
    let (i, t, v, c) = (b.fresh_reg(), b.fresh_reg(), b.fresh_reg(), b.fresh_reg());
    let body = b.create_block();
    let after = b.create_block();
    let done = b.create_block();
    for &a in &accs {
        b.mov(a, 0i64);
    }
    b.mov(i, 0i64);
    b.jump(body);
    b.switch_to(body);
    b.bin(BinOp::And, t, i, 7i64);
    b.shl(t, t, 3i64);
    b.add(t, t, Operand::Reg(base));
    b.load(v, t, 0);
    for &a in &accs {
        b.add(a, a, Operand::Reg(v));
    }
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, 12i64);
    b.branch(c, body, after);
    b.switch_to(after);
    // Two stores right at the loop exit: hoisted ckpts + these would
    // exceed a 4-entry SB, forcing the revert logic to engage.
    b.store(accs[0], base, 64);
    b.store(accs[1], base, 72);
    b.inst(Inst::RegionBoundary { id: 99 });
    b.jump(done);
    b.switch_to(done);
    let out = b.fresh_reg();
    b.mov(out, 0i64);
    for &a in &accs {
        b.add(out, out, a);
    }
    b.ret(Some(Operand::Reg(out)));
    let p = Program::with_params(
        b.finish().unwrap(),
        DataSegment::with_words(0x1_0000, (0..16).collect()),
        vec![0x1_0000],
    );
    golden_matches(&p, &CompilerConfig::turnpike(4));
}
