//! Each kernel template is designed to exercise a specific Turnpike
//! mechanism. These tests pin that contract so catalog or compiler changes
//! cannot silently defeat a template's purpose.

use turnpike_compiler::{compile, CompilerConfig};
use turnpike_workloads::{kernel_by_name, Scale, Suite};

fn turnpike(sb: u32) -> CompilerConfig {
    CompilerConfig::turnpike(sb)
}

#[test]
fn streaming_kernels_merge_their_pointer_iv() {
    for (suite, name) in [
        (Suite::Cpu2006, "bwaves"),
        (Suite::Cpu2006, "libquan"),
        (Suite::Cpu2017, "roms"),
        (Suite::Cpu2017, "exchange2"),
    ] {
        let k = kernel_by_name(suite, name, Scale::Smoke).unwrap();
        let out = compile(&k.program, &turnpike(4)).unwrap();
        assert!(
            out.stats.ivs_merged >= 1,
            "{name}: LIVM should merge the strength-reduced pointer IV"
        );
    }
}

#[test]
fn streaming_and_stencil_kernels_feed_pruning() {
    for (suite, name) in [
        (Suite::Cpu2006, "bwaves"),
        (Suite::Cpu2006, "leslie3d"),
        (Suite::Cpu2017, "cactubssn"),
    ] {
        let k = kernel_by_name(suite, name, Scale::Smoke).unwrap();
        let out = compile(&k.program, &turnpike(4)).unwrap();
        assert!(
            out.stats.ckpts_pruned >= 1,
            "{name}: the derived-guard checkpoint should be pruned"
        );
    }
}

#[test]
fn reduction_kernels_feed_licm() {
    for (suite, name) in [
        (Suite::Cpu2017, "leela"),
        (Suite::Cpu2017, "deepsjeng"),
        (Suite::Cpu2017, "nab"),
        (Suite::Splash3, "water-sp"),
    ] {
        let k = kernel_by_name(suite, name, Scale::Smoke).unwrap();
        let out = compile(&k.program, &turnpike(4)).unwrap();
        assert!(
            out.stats.ckpts_licm_removed >= 1,
            "{name}: in-loop accumulator checkpoints should sink to the exit"
        );
    }
}

#[test]
fn high_pressure_kernels_spill_and_ra_trick_helps() {
    for (suite, name) in [(Suite::Cpu2006, "gemsfdtd"), (Suite::Cpu2017, "lbm")] {
        let k = kernel_by_name(suite, name, Scale::Smoke).unwrap();
        let aware = compile(&k.program, &turnpike(4)).unwrap();
        let mut blind = turnpike(4);
        blind.store_aware_ra = false;
        let blind = compile(&k.program, &blind).unwrap();
        assert!(
            blind.stats.spilled_vregs > 0,
            "{name}: should exceed the register file"
        );
        assert!(
            aware.stats.spill_stores <= blind.stats.spill_stores,
            "{name}: store-aware RA must not add spill stores ({} vs {})",
            aware.stats.spill_stores,
            blind.stats.spill_stores
        );
    }
}

#[test]
fn every_kernel_partitions_within_the_hard_bound() {
    // RegionOverflow is a compile error; compiling all 36 under every SB
    // size in the evaluation proves the partitioner always finds a legal
    // region structure.
    for sb in [4u32, 8, 10, 20, 30, 40] {
        for k in turnpike_workloads::all_kernels(Scale::Smoke) {
            compile(&k.program, &turnpike(sb))
                .unwrap_or_else(|e| panic!("{} at SB {sb}: {e}", k.name));
        }
    }
}

#[test]
fn rmw_kernels_defeat_war_free_release() {
    use turnpike_resilience::{run_kernel, RunSpec, Scheme};
    for (suite, name) in [(Suite::Cpu2006, "hmmer"), (Suite::Cpu2017, "xz")] {
        let k = kernel_by_name(suite, name, Scale::Smoke).unwrap();
        let r = run_kernel(&k.program, &RunSpec::new(Scheme::Turnpike)).unwrap();
        let s = &r.outcome.stats;
        assert!(
            s.war_free_released < s.stores / 2,
            "{name}: read-modify-write stores should mostly quarantine \
             ({} free of {})",
            s.war_free_released,
            s.stores
        );
    }
}

#[test]
fn gap_stencils_split_ideal_from_compact_clq() {
    use turnpike_resilience::{run_kernel, RunSpec, Scheme};
    use turnpike_sim::ClqKind;
    for (suite, name) in [
        (Suite::Cpu2006, "milc"),
        (Suite::Cpu2017, "fotonik3d"),
        (Suite::Splash3, "ocean-ng"),
    ] {
        let k = kernel_by_name(suite, name, Scale::Smoke).unwrap();
        let ideal = run_kernel(
            &k.program,
            &RunSpec::new(Scheme::FastRelease).with_clq(ClqKind::Ideal),
        )
        .unwrap();
        let compact = run_kernel(
            &k.program,
            &RunSpec::new(Scheme::FastRelease).with_clq(ClqKind::Compact(2)),
        )
        .unwrap();
        assert!(
            ideal.outcome.stats.clq.war_free > compact.outcome.stats.clq.war_free,
            "{name}: range checking must lose precision on gap stores \
             ({} vs {})",
            ideal.outcome.stats.clq.war_free,
            compact.outcome.stats.clq.war_free
        );
    }
}

#[test]
fn pointer_chase_kernels_stall_on_loads() {
    use turnpike_resilience::{run_kernel, RunSpec, Scheme};
    let k = kernel_by_name(Suite::Cpu2006, "mcf", Scale::Smoke).unwrap();
    let r = run_kernel(&k.program, &RunSpec::new(Scheme::Turnstile)).unwrap();
    let s = &r.outcome.stats;
    assert!(
        s.stall_data_hazard > s.cycles / 4,
        "mcf: the load-use chain should dominate ({} of {})",
        s.stall_data_hazard,
        s.cycles
    );
}
