//! Pass-manager integration properties.
//!
//! Two families of evidence that the declarative pipeline is sound:
//!
//! * **Generated kernels** (proptest): every pass emits IR the verifier
//!   accepts *and* preserves observable program behavior, across the whole
//!   config lattice (baseline / turnstile / turnpike at several SB sizes).
//! * **The 36-kernel catalog**: the per-pass metric deltas recorded in
//!   [`turnpike_compiler::PassRecord`]s sum exactly to the whole-compile
//!   registry, and the legacy [`PassStats`] view is a pure projection of it.

use proptest::prelude::*;
use turnpike_compiler::{CompilerConfig, PassManager, PassStats};
use turnpike_metrics::MetricSet;
use turnpike_workloads::{all_kernels, generate, GeneratorConfig, Scale};

/// The config lattice the properties quantify over: every scheme shape the
/// pipeline materializes differently, at more than one store-buffer size.
fn configs() -> Vec<CompilerConfig> {
    vec![
        CompilerConfig::baseline(),
        CompilerConfig::turnstile(4),
        CompilerConfig::turnstile(8),
        CompilerConfig::turnpike(4),
        CompilerConfig::turnpike(8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every pass of every materialized pipeline produces IR the verifier
    /// accepts, and no pass changes the program's observable behavior
    /// (return value + architectural memory, spill slots excluded).
    #[test]
    fn every_pass_verifies_and_preserves_behavior(
        seed in 0u64..1 << 32,
        loops in 1usize..4,
        body_ops in 4usize..20,
        store_pct in 0u32..60,
        accumulators in 1usize..5,
    ) {
        let gc = GeneratorConfig {
            loops,
            trip: 8,
            body_ops,
            store_density: f64::from(store_pct) / 100.0,
            accumulators,
            ..GeneratorConfig::default()
        };
        let program = generate(seed, &gc);
        for cc in configs() {
            let out = PassManager::for_config(&cc)
                .with_ir_verification(true)
                .with_equivalence_checks(true)
                .run(&program);
            prop_assert!(
                out.is_ok(),
                "seed {seed} under {cc:?}: {}",
                out.err().map(|e| e.to_string()).unwrap_or_default()
            );
        }
    }
}

/// On every catalog kernel, merging the per-pass metric deltas reproduces
/// the whole-compile registry exactly, and `PassStats` agrees with its
/// metric projection. This is what lets figures attribute any total to the
/// pass that produced it.
#[test]
fn catalog_per_pass_metrics_sum_to_totals() {
    let kernels = all_kernels(Scale::Smoke);
    assert_eq!(kernels.len(), 36, "the paper's catalog is 36 kernels");
    for cc in [CompilerConfig::turnpike(4), CompilerConfig::turnstile(4)] {
        for k in &kernels {
            let out = PassManager::for_config(&cc)
                .with_ir_verification(true)
                .run(&k.program)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            let mut merged = MetricSet::new();
            for rec in &out.passes {
                merged.merge(&rec.metrics);
            }
            assert_eq!(
                merged, out.metrics,
                "{}: per-pass deltas must cover the registry",
                k.name
            );
            assert_eq!(
                PassStats::from_metrics(&out.metrics),
                out.stats,
                "{}: PassStats must be a pure projection of the registry",
                k.name
            );
        }
    }
}

/// The verifier hook runs after *every* pass: each record names a pipeline
/// stage, and no stage repeats (the fixpoint iterates inside one pass).
#[test]
fn records_are_one_per_stage() {
    let k = &all_kernels(Scale::Smoke)[0];
    let out = PassManager::for_config(&CompilerConfig::turnpike(4))
        .run(&k.program)
        .unwrap();
    let names: Vec<&str> = out.passes.iter().map(|r| r.name).collect();
    let mut unique = names.clone();
    unique.dedup();
    assert_eq!(names, unique, "no pipeline stage records twice");
    assert!(names.contains(&"checkpoint") && names.contains(&"codegen"));
}
