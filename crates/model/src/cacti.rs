//! CACTI-like CAM/RAM cost model (paper Table 1, 22 nm).
//!
//! The paper uses four CACTI point queries to compare Turnpike's added
//! hardware (color maps + compact CLQ, both plain RAM) against store-buffer
//! CAM designs. We fit two tiny scaling laws to those published points:
//!
//! * **RAM**: area and energy scale linearly with capacity. The paper's two
//!   RAM points (24 B color maps: 36.651 µm² / 0.02518 pJ; 16 B CLQ:
//!   24.434 µm² / 0.01679 pJ) are consistent with a pure linear law
//!   (their ratio equals the byte ratio 1.5).
//! * **CAM**: area and energy follow a power law in the entry count
//!   (`cost = c · entries^α`), fitted through the paper's 4-entry
//!   (621.28 µm² / 0.43099 pJ) and 40-entry (3132.50 µm² / 2.11525 pJ)
//!   store-buffer points.
//!
//! [`CostModel::price`] composes these laws over a whole [`SimConfig`] so
//! the design-space explorer can cost arbitrary configurations, not just
//! Table 1's fixed points.

use turnpike_sim::{ClqKind, SimConfig};

/// Area (µm²) and dynamic access energy (pJ) of one structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructureCost {
    /// Area in square micrometers.
    pub area_um2: f64,
    /// Dynamic energy per access in picojoules.
    pub energy_pj: f64,
}

/// The calibrated cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    ram_area_per_byte: f64,
    ram_energy_per_byte: f64,
    cam_area_c: f64,
    cam_area_alpha: f64,
    cam_energy_c: f64,
    cam_energy_alpha: f64,
}

// The paper's published CACTI points (22 nm).
const SB4_AREA: f64 = 621.28;
const SB4_ENERGY: f64 = 0.43099;
const SB40_AREA: f64 = 3132.50;
const SB40_ENERGY: f64 = 2.11525;
const COLORMAP_BYTES: f64 = 24.0;
const COLORMAP_AREA: f64 = 36.651;
const COLORMAP_ENERGY: f64 = 0.02518;

impl CostModel {
    /// The model calibrated to the paper's Table 1 points.
    pub fn calibrated() -> Self {
        let cam_area_alpha = (SB40_AREA / SB4_AREA).ln() / (40f64 / 4f64).ln();
        let cam_area_c = SB4_AREA / 4f64.powf(cam_area_alpha);
        let cam_energy_alpha = (SB40_ENERGY / SB4_ENERGY).ln() / (40f64 / 4f64).ln();
        let cam_energy_c = SB4_ENERGY / 4f64.powf(cam_energy_alpha);
        CostModel {
            ram_area_per_byte: COLORMAP_AREA / COLORMAP_BYTES,
            ram_energy_per_byte: COLORMAP_ENERGY / COLORMAP_BYTES,
            cam_area_c,
            cam_area_alpha,
            cam_energy_c,
            cam_energy_alpha,
        }
    }

    /// Cost of a RAM structure of `bytes` capacity.
    pub fn ram(&self, bytes: f64) -> StructureCost {
        StructureCost {
            area_um2: self.ram_area_per_byte * bytes,
            energy_pj: self.ram_energy_per_byte * bytes,
        }
    }

    /// Cost of a CAM structure with `entries` entries.
    pub fn cam(&self, entries: u32) -> StructureCost {
        let n = entries.max(1) as f64;
        StructureCost {
            area_um2: self.cam_area_c * n.powf(self.cam_area_alpha),
            energy_pj: self.cam_energy_c * n.powf(self.cam_energy_alpha),
        }
    }

    /// Turnpike's color maps: 3 maps × log2(colors) bits × registers.
    pub fn color_maps(&self, regs: u32, colors: u32) -> StructureCost {
        let bits = 3.0 * (colors.max(2) as f64).log2() * regs as f64;
        self.ram(bits / 8.0)
    }

    /// The compact CLQ: `entries` × (region tag + min + max) ≈ 8 bytes each.
    pub fn compact_clq(&self, entries: u32) -> StructureCost {
        self.ram(entries as f64 * 8.0)
    }

    /// Price a full simulator configuration: the cost of every piece of
    /// *added* hardware the configuration implies, not just Table 1's fixed
    /// points.
    ///
    /// * the store buffer CAM, sized by `sb_size`;
    /// * the color maps (only when `coloring` is on), sized by the
    ///   configured color-pool count for a 32-register file;
    /// * the CLQ, priced by kind: compact entries are RAM
    ///   ([`Self::compact_clq`]), CAM entries use the CAM law, `Off` is
    ///   free, and `Ideal` — an unbounded oracle with no physical sizing —
    ///   is priced as an RBB-sized CAM, the smallest structure that could
    ///   actually deliver its behavior (the RBB bounds in-flight regions).
    pub fn price(&self, sc: &SimConfig) -> StructureCost {
        let mut total = self.cam(sc.sb_size);
        let mut add = |c: StructureCost| {
            total.area_um2 += c.area_um2;
            total.energy_pj += c.energy_pj;
        };
        if sc.coloring {
            add(self.color_maps(32, sc.colors as u32));
        }
        match sc.clq {
            ClqKind::Off => {}
            ClqKind::Compact(entries) => add(self.compact_clq(entries)),
            ClqKind::Cam(entries) => add(self.cam(entries)),
            ClqKind::Ideal => add(self.cam(sc.rbb_size)),
        }
        total
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

/// One row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Structure description.
    pub name: String,
    /// Cost.
    pub cost: StructureCost,
}

/// The regenerated Table 1 with the paper's two summary ratios.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The five structure rows in the paper's order.
    pub rows: Vec<Table1Row>,
    /// Turnpike total relative to the 4-entry SB (paper: 9.8% area,
    /// 9.7% energy).
    pub turnpike_vs_sb4: (f64, f64),
    /// 40-entry SB relative to the 4-entry SB (paper: 504% / 497%).
    pub sb40_vs_sb4: (f64, f64),
}

impl Table1 {
    /// Build the table for a 32-register core with 4 colors and a 2-entry
    /// CLQ (the paper's configuration).
    pub fn build() -> Self {
        let m = CostModel::calibrated();
        let sb4 = m.cam(4);
        let colors = m.color_maps(32, 4);
        let clq = m.compact_clq(2);
        let total = StructureCost {
            area_um2: colors.area_um2 + clq.area_um2,
            energy_pj: colors.energy_pj + clq.energy_pj,
        };
        let sb40 = m.cam(40);
        let rows = vec![
            Table1Row {
                name: "4-entry SB (CAM)".into(),
                cost: sb4,
            },
            Table1Row {
                name: "Color maps in Turnpike (RAM)".into(),
                cost: colors,
            },
            Table1Row {
                name: "2-entry CLQ in Turnpike (RAM)".into(),
                cost: clq,
            },
            Table1Row {
                name: "Turnpike in total (color maps + 2-entry CLQ)".into(),
                cost: total,
            },
            Table1Row {
                name: "40-entry SB (CAM)".into(),
                cost: sb40,
            },
        ];
        Table1 {
            rows,
            turnpike_vs_sb4: (
                total.area_um2 / sb4.area_um2,
                total.energy_pj / sb4.energy_pj,
            ),
            sb40_vs_sb4: (sb40.area_um2 / sb4.area_um2, sb40.energy_pj / sb4.energy_pj),
        }
    }
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<48} {:>12} {:>16}",
            "Structure", "Area (um^2)", "Dyn access (pJ)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<48} {:>12.3} {:>16.5}",
                r.name, r.cost.area_um2, r.cost.energy_pj
            )?;
        }
        writeln!(
            f,
            "{:<48} {:>11.1}% {:>15.1}%",
            "Turnpike in total / 4-entry SB",
            self.turnpike_vs_sb4.0 * 100.0,
            self.turnpike_vs_sb4.1 * 100.0
        )?;
        write!(
            f,
            "{:<48} {:>11.0}% {:>15.0}%",
            "40-entry SB / 4-entry SB",
            self.sb40_vs_sb4.0 * 100.0,
            self.sb40_vs_sb4.1 * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cam_fit_passes_through_anchors() {
        let m = CostModel::calibrated();
        let sb4 = m.cam(4);
        assert!((sb4.area_um2 - SB4_AREA).abs() < 1e-6);
        assert!((sb4.energy_pj - SB4_ENERGY).abs() < 1e-9);
        let sb40 = m.cam(40);
        assert!((sb40.area_um2 - SB40_AREA).abs() < 1e-6);
        assert!((sb40.energy_pj - SB40_ENERGY).abs() < 1e-9);
    }

    #[test]
    fn ram_fit_reproduces_paper_points() {
        let m = CostModel::calibrated();
        // Color maps: 3 * log2(4) * 32 bits = 192 bits = 24 bytes.
        let c = m.color_maps(32, 4);
        assert!((c.area_um2 - COLORMAP_AREA).abs() < 1e-6);
        assert!((c.energy_pj - COLORMAP_ENERGY).abs() < 1e-9);
        // 2-entry CLQ = 16 bytes -> 24.434 um^2 / 0.01679 pJ.
        let q = m.compact_clq(2);
        assert!((q.area_um2 - 24.434).abs() < 0.01);
        assert!((q.energy_pj - 0.01679).abs() < 1e-4);
    }

    #[test]
    fn table1_ratios_match_paper() {
        let t = Table1::build();
        // Paper: 9.8% area, 9.7% energy for Turnpike vs 4-entry SB.
        assert!(
            (t.turnpike_vs_sb4.0 * 100.0 - 9.8).abs() < 0.15,
            "{:?}",
            t.turnpike_vs_sb4
        );
        assert!((t.turnpike_vs_sb4.1 * 100.0 - 9.7).abs() < 0.15);
        // Paper: 504% / 497% for the 40-entry SB. (The paper's published
        // point values give 504.2% / 490.8%; its 497% energy ratio was
        // evidently taken from unrounded CACTI output, so allow that slack.)
        assert!((t.sb40_vs_sb4.0 * 100.0 - 504.0).abs() < 1.5);
        assert!((t.sb40_vs_sb4.1 * 100.0 - 497.0).abs() < 8.0);
        assert_eq!(t.rows.len(), 5);
        let text = t.to_string();
        assert!(text.contains("40-entry SB"));
    }

    #[test]
    fn cam_costs_grow_superlinearly_in_entries_but_sublinearly_per_entry() {
        let m = CostModel::calibrated();
        let a = m.cam(4).area_um2;
        let b = m.cam(8).area_um2;
        assert!(b > a);
        assert!(b < 2.0 * a, "per-entry cost amortizes");
    }

    #[test]
    fn degenerate_inputs() {
        let m = CostModel::calibrated();
        assert!(m.cam(0).area_um2 > 0.0);
        assert_eq!(m.ram(0.0).area_um2, 0.0);
    }

    /// `price` must reproduce the published Table 1 points exactly when fed
    /// the paper's configurations, so the calibration can't drift as the
    /// explorer starts pricing arbitrary grid points.
    #[test]
    fn price_is_pinned_to_table1_rows() {
        let m = CostModel::calibrated();
        let t = Table1::build();

        // Baseline turnstile on a 4-entry SB: no coloring, no CLQ — the
        // price is exactly the Table 1 "4-entry SB (CAM)" row.
        let turnstile4 = SimConfig::turnstile(4, 10);
        assert!(!turnstile4.coloring);
        assert_eq!(turnstile4.clq, ClqKind::Off);
        let p = m.price(&turnstile4);
        assert!((p.area_um2 - SB4_AREA).abs() < 1e-6);
        assert!((p.energy_pj - SB4_ENERGY).abs() < 1e-9);

        // Turnstile on a 40-entry SB: the "40-entry SB (CAM)" row.
        let p = m.price(&SimConfig::turnstile(40, 10));
        assert!((p.area_um2 - SB40_AREA).abs() < 1e-6);
        assert!((p.energy_pj - SB40_ENERGY).abs() < 1e-9);

        // Full Turnpike (4 colors, 2-entry compact CLQ) on a 4-entry SB:
        // the SB row plus the Table 1 Turnpike total (color maps + CLQ).
        let turnpike4 = SimConfig::turnpike(4, 10);
        assert_eq!(turnpike4.colors, 4);
        assert_eq!(turnpike4.clq, ClqKind::Compact(2));
        let p = m.price(&turnpike4);
        let total = &t.rows[3].cost;
        assert!((p.area_um2 - (SB4_AREA + total.area_um2)).abs() < 1e-6);
        assert!((p.energy_pj - (SB4_ENERGY + total.energy_pj)).abs() < 1e-9);
    }

    /// Every priced axis must actually move the price: the explorer's cost
    /// objective is meaningless for a knob `price` ignores.
    #[test]
    fn price_responds_to_every_swept_knob() {
        let m = CostModel::calibrated();
        let base = SimConfig::turnpike(4, 10);
        let p0 = m.price(&base);

        let mut bigger_sb = base.clone();
        bigger_sb.sb_size = 8;
        assert!(m.price(&bigger_sb).area_um2 > p0.area_um2);

        let mut more_colors = base.clone();
        more_colors.colors = 8;
        assert!(m.price(&more_colors).area_um2 > p0.area_um2);

        let mut cam_clq = base.clone();
        cam_clq.clq = ClqKind::Cam(4);
        assert!(m.price(&cam_clq).area_um2 > p0.area_um2);

        let mut no_coloring = base.clone();
        no_coloring.coloring = false;
        assert!(m.price(&no_coloring).area_um2 < p0.area_um2);

        // Ideal is priced as an RBB-sized CAM: strictly the most expensive
        // CLQ option, so the oracle never looks free on the frontier.
        let mut ideal = base.clone();
        ideal.clq = ClqKind::Ideal;
        assert!(m.price(&ideal).area_um2 > m.price(&cam_clq).area_um2);
    }
}
