//! Machine instructions.

use crate::reg::{MOperand, PhysReg};
use std::fmt;
use turnpike_ir::{BinOp, CmpOp};

/// A machine memory address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachAddr {
    /// Base register plus signed byte offset.
    RegOffset(PhysReg, i64),
    /// Absolute byte address.
    Abs(u64),
    /// The checkpoint storage slot of a register, resolved by hardware: in
    /// recovery blocks the verified-colors (VC) map selects the colored slot;
    /// outside recovery, color 0. Regular code never uses this mode.
    CkptSlot(PhysReg),
}

impl MachAddr {
    /// Base register of the addressing mode, if any.
    pub fn base(self) -> Option<PhysReg> {
        match self {
            MachAddr::RegOffset(r, _) => Some(r),
            MachAddr::Abs(_) | MachAddr::CkptSlot(_) => None,
        }
    }
}

impl fmt::Display for MachAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachAddr::RegOffset(r, o) => write!(f, "[{r}{o:+}]"),
            MachAddr::Abs(a) => write!(f, "[{a:#x}]"),
            MachAddr::CkptSlot(r) => write!(f, "[ckpt:{r}]"),
        }
    }
}

/// A flat machine instruction. Branch targets are instruction indices into
/// the enclosing [`MachProgram`](crate::MachProgram).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachInst {
    /// `dst = lhs op rhs`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: PhysReg,
        /// Left operand (always a register on this machine).
        lhs: PhysReg,
        /// Right operand.
        rhs: MOperand,
    },
    /// `dst = (lhs op rhs) ? 1 : 0`.
    Cmp {
        /// Comparison.
        op: CmpOp,
        /// Destination register.
        dst: PhysReg,
        /// Left operand.
        lhs: PhysReg,
        /// Right operand.
        rhs: MOperand,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: PhysReg,
        /// Source operand.
        src: MOperand,
    },
    /// `dst = memory[addr]`.
    Load {
        /// Destination register.
        dst: PhysReg,
        /// Effective address.
        addr: MachAddr,
    },
    /// `memory[addr] = src`.
    Store {
        /// Stored value.
        src: MOperand,
        /// Effective address.
        addr: MachAddr,
    },
    /// Checkpoint store of `reg` into its checkpoint storage slot.
    Ckpt {
        /// Register being checkpointed.
        reg: PhysReg,
    },
    /// Region boundary: ends the current region, starts static region `id`.
    RegionBoundary {
        /// Static region id of the region *starting* here.
        id: crate::program::RegionId,
    },
    /// Unconditional jump to instruction index `target`.
    Jump {
        /// Destination instruction index.
        target: u32,
    },
    /// Branch to `target` when `cond != 0`; fall through otherwise.
    BranchNz {
        /// Condition register.
        cond: PhysReg,
        /// Taken-path destination instruction index.
        target: u32,
    },
    /// Program end with optional return value.
    Ret {
        /// Returned value, if any.
        value: Option<MOperand>,
    },
    /// No operation.
    Nop,
}

impl MachInst {
    /// Register written, if any.
    pub fn def(self) -> Option<PhysReg> {
        match self {
            MachInst::Bin { dst, .. }
            | MachInst::Cmp { dst, .. }
            | MachInst::Mov { dst, .. }
            | MachInst::Load { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Registers read (up to 3), in a small inline buffer. The simulator
    /// calls this once per executed instruction, so the list must not
    /// touch the heap.
    pub fn uses(self) -> MachUses {
        let mut buf = [PhysReg::new_unchecked(0); 3];
        let mut len = 0;
        let mut push = |r: Option<PhysReg>| {
            if let Some(r) = r {
                buf[len] = r;
                len += 1;
            }
        };
        match self {
            MachInst::Bin { lhs, rhs, .. } | MachInst::Cmp { lhs, rhs, .. } => {
                push(Some(lhs));
                push(rhs.reg());
            }
            MachInst::Mov { src, .. } => push(src.reg()),
            MachInst::Load { addr, .. } => push(addr.base()),
            MachInst::Store { src, addr } => {
                push(src.reg());
                push(addr.base());
            }
            MachInst::Ckpt { reg } => push(Some(reg)),
            MachInst::BranchNz { cond, .. } => push(Some(cond)),
            MachInst::Ret { value } => push(value.and_then(MOperand::reg)),
            MachInst::RegionBoundary { .. } | MachInst::Jump { .. } | MachInst::Nop => {}
        }
        MachUses { buf, len }
    }

    /// Whether this is a memory instruction (load, store, or checkpoint).
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            MachInst::Load { .. } | MachInst::Store { .. } | MachInst::Ckpt { .. }
        )
    }

    /// Whether this writes memory (regular store or checkpoint).
    pub fn is_store(self) -> bool {
        matches!(self, MachInst::Store { .. } | MachInst::Ckpt { .. })
    }

    /// Whether this is a checkpoint store.
    pub fn is_ckpt(self) -> bool {
        matches!(self, MachInst::Ckpt { .. })
    }

    /// Whether this is a control-flow instruction.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            MachInst::Jump { .. } | MachInst::BranchNz { .. } | MachInst::Ret { .. }
        )
    }

    /// Execution latency in cycles on the modeled core (loads excluded —
    /// their latency comes from the cache hierarchy).
    pub fn latency(self) -> u32 {
        match self {
            MachInst::Bin { op, .. } => op.latency(),
            _ => 1,
        }
    }
}

/// Registers read by a [`MachInst`], in a fixed inline buffer.
/// Dereferences to a `[PhysReg]` slice.
#[derive(Debug, Clone, Copy)]
pub struct MachUses {
    buf: [PhysReg; 3],
    len: usize,
}

impl std::ops::Deref for MachUses {
    type Target = [PhysReg];

    fn deref(&self) -> &[PhysReg] {
        &self.buf[..self.len]
    }
}

impl fmt::Display for MachInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachInst::Bin { op, dst, lhs, rhs } => write!(f, "{op} {dst}, {lhs}, {rhs}"),
            MachInst::Cmp { op, dst, lhs, rhs } => write!(f, "cmp.{op} {dst}, {lhs}, {rhs}"),
            MachInst::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            MachInst::Load { dst, addr } => write!(f, "ld {dst}, {addr}"),
            MachInst::Store { src, addr } => write!(f, "st {src}, {addr}"),
            MachInst::Ckpt { reg } => write!(f, "ckpt {reg}"),
            MachInst::RegionBoundary { id } => write!(f, "rb {id}"),
            MachInst::Jump { target } => write!(f, "jmp @{target}"),
            MachInst::BranchNz { cond, target } => write!(f, "bnz {cond}, @{target}"),
            MachInst::Ret { value: Some(v) } => write!(f, "ret {v}"),
            MachInst::Ret { value: None } => write!(f, "ret"),
            MachInst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RegionId;

    fn r(i: u8) -> PhysReg {
        PhysReg::new(i).unwrap()
    }

    #[test]
    fn defs_uses_classification() {
        let i = MachInst::Bin {
            op: BinOp::Add,
            dst: r(0),
            lhs: r(1),
            rhs: MOperand::Reg(r(2)),
        };
        assert_eq!(i.def(), Some(r(0)));
        assert_eq!(&*i.uses(), [r(1), r(2)]);
        assert!(!i.is_mem());

        let s = MachInst::Store {
            src: MOperand::Reg(r(3)),
            addr: MachAddr::RegOffset(r(4), 8),
        };
        assert!(s.is_store() && s.is_mem() && !s.is_ckpt());
        assert_eq!(&*s.uses(), [r(3), r(4)]);

        let c = MachInst::Ckpt { reg: r(5) };
        assert!(c.is_ckpt() && c.is_store());
        assert_eq!(&*c.uses(), [r(5)]);

        let b = MachInst::BranchNz {
            cond: r(6),
            target: 3,
        };
        assert!(b.is_control());
        assert_eq!(&*b.uses(), [r(6)]);
        assert!(MachInst::Ret { value: None }.is_control());
        assert!(!MachInst::Nop.is_control());
    }

    #[test]
    fn ckpt_slot_addressing_has_no_base() {
        let l = MachInst::Load {
            dst: r(1),
            addr: MachAddr::CkptSlot(r(1)),
        };
        assert!(l.uses().is_empty());
        assert_eq!(l.def(), Some(r(1)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            MachInst::Bin {
                op: BinOp::Add,
                dst: r(0),
                lhs: r(1),
                rhs: MOperand::Imm(4)
            }
            .to_string(),
            "add r0, r1, #4"
        );
        assert_eq!(
            MachInst::Load {
                dst: r(2),
                addr: MachAddr::CkptSlot(r(2))
            }
            .to_string(),
            "ld r2, [ckpt:r2]"
        );
        assert_eq!(
            MachInst::RegionBoundary { id: RegionId(3) }.to_string(),
            "rb R3"
        );
        assert_eq!(MachInst::Jump { target: 9 }.to_string(), "jmp @9");
    }

    #[test]
    fn latency_delegates_to_binop() {
        let m = MachInst::Bin {
            op: BinOp::Mul,
            dst: r(0),
            lhs: r(0),
            rhs: MOperand::Imm(2),
        };
        assert_eq!(m.latency(), 3);
        assert_eq!(MachInst::Nop.latency(), 1);
    }
}
