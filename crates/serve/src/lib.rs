//! `turnpike-serve`: a batch campaign service for the Turnpike
//! reproduction.
//!
//! Long fault-injection campaigns and figure regenerations are batch jobs;
//! this crate turns the evaluation harness into a **service** for them: a
//! std-only, multi-threaded TCP server speaking a line-delimited JSON
//! protocol (the same stable-key-order style as the observability layer's
//! JSONL sink), with
//!
//! - a **bounded work queue with admission control** — when the queue is
//!   full, submissions get a typed `overloaded` rejection with a
//!   retry-after hint instead of unbounded buffering ([`queue`],
//!   [`server`]);
//! - **per-job timeouts and cooperative cancellation** — campaigns abandon
//!   between injected runs; the client always gets a terminal event;
//! - a **worker pool** executing jobs through a pluggable [`Executor`]
//!   (the production one, backed by the bench crate's memoizing engine,
//!   lives in `turnpike-bench` to avoid a dependency cycle);
//! - a **persistent content-addressed artifact store** ([`store`]) with a
//!   versioned on-disk format and corrupt-entry quarantine, shared between
//!   the server and the direct CLI;
//! - a **per-job flight recorder** ([`flight`]) — a drop-oldest ring of
//!   lifecycle events dumped as JSONL evidence when a job fails, hits its
//!   deadline, or trips the store's quarantine;
//! - a **`metrics` admin request** returning Prometheus-style text
//!   exposition of the live registry with a stable line order;
//! - **graceful shutdown** that drains queued and in-flight jobs;
//! - a [`Client`] and [`loadgen`] harness measuring throughput and
//!   latency percentiles into `turnpike-metrics` histograms.
//!
//! Everything the server observes — queue depth peaks, admission
//! decisions, job/queue-wait latency, store hit rate — lands in the same
//! [`turnpike_metrics::MetricSet`] registry the compiler and simulator
//! report into.

pub mod client;
pub mod fleet;
pub mod flight;
pub mod json;
pub mod poll;
pub mod proto;
pub mod queue;
pub mod server;
pub mod store;

pub use client::{loadgen, Backoff, Client, LoadgenConfig, LoadgenReport, Outcome};
pub use fleet::{loadgen_fleet, Arrival, FleetLoadgenConfig, FleetReport, WorkerLoad};
pub use flight::{FlightEvent, FlightRecorder, FLIGHT_CAP};
pub use json::Json;
pub use proto::{
    Event, JobKind, JobRequest, LineReader, ProgressStats, Request, StoreStatus, WriteQueue,
};
pub use queue::{JobQueue, PushError};
pub use server::{ExecOutput, Executor, JobCtl, Server, ServerConfig};
pub use store::{Lookup, Store};
