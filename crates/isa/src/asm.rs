//! Textual assembly parsing.
//!
//! Parses the exact syntax [`MachProgram::disasm`](crate::MachProgram::disasm)
//! and the instruction `Display` impls emit, so machine programs round-trip
//! through text. Useful for writing machine-level tests and for tooling.
//!
//! ```
//! use turnpike_isa::asm::parse_asm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let insts = parse_asm(
//!     "mov r1, #41
//!      add r1, r1, #1
//!      ret r1",
//! )?;
//! assert_eq!(insts.len(), 3);
//! # Ok(())
//! # }
//! ```

use crate::inst::{MachAddr, MachInst};
use crate::program::RegionId;
use crate::reg::{MOperand, PhysReg};
use std::error::Error;
use std::fmt;
use turnpike_ir::{BinOp, CmpOp};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<PhysReg, AsmError> {
    let idx = tok
        .strip_prefix('r')
        .and_then(|s| s.parse::<u8>().ok())
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))?;
    PhysReg::new(idx).map_err(|e| err(line, e.to_string()))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok
        .strip_prefix('#')
        .ok_or_else(|| err(line, format!("expected immediate, got `{tok}`")))?;
    t.parse::<i64>()
        .map_err(|_| err(line, format!("bad immediate `{tok}`")))
}

fn parse_operand(tok: &str, line: usize) -> Result<MOperand, AsmError> {
    if tok.starts_with('#') {
        Ok(MOperand::Imm(parse_imm(tok, line)?))
    } else {
        Ok(MOperand::Reg(parse_reg(tok, line)?))
    }
}

fn parse_addr(tok: &str, line: usize) -> Result<MachAddr, AsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [address], got `{tok}`")))?;
    if let Some(r) = inner.strip_prefix("ckpt:") {
        return Ok(MachAddr::CkptSlot(parse_reg(r, line)?));
    }
    if let Some(hex) = inner.strip_prefix("0x") {
        let a = u64::from_str_radix(hex, 16)
            .map_err(|_| err(line, format!("bad hex address `{inner}`")))?;
        return Ok(MachAddr::Abs(a));
    }
    // rN+off or rN-off (offset always signed, as Display prints `{:+}`).
    let split = inner
        .char_indices()
        .skip(1)
        .find(|&(_, c)| c == '+' || c == '-')
        .map(|(i, _)| i)
        .ok_or_else(|| err(line, format!("bad address `{inner}`")))?;
    let base = parse_reg(&inner[..split], line)?;
    let off = inner[split..]
        .parse::<i64>()
        .map_err(|_| err(line, format!("bad offset in `{inner}`")))?;
    Ok(MachAddr::RegOffset(base, off))
}

fn parse_target(tok: &str, line: usize) -> Result<u32, AsmError> {
    tok.strip_prefix('@')
        .and_then(|s| s.parse::<u32>().ok())
        .ok_or_else(|| err(line, format!("expected @target, got `{tok}`")))
}

fn binop_by_name(name: &str) -> Option<BinOp> {
    BinOp::ALL.into_iter().find(|op| op.to_string() == name)
}

fn cmpop_by_name(name: &str) -> Option<CmpOp> {
    CmpOp::ALL.into_iter().find(|op| op.to_string() == name)
}

/// Parse one instruction line (without pc prefix or comments).
fn parse_line(src: &str, line: usize) -> Result<MachInst, AsmError> {
    let mut parts = src.splitn(2, ' ');
    let mnemonic = parts.next().unwrap_or_default();
    let rest = parts.next().unwrap_or("").trim();
    let args: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{mnemonic}` expects {n} operands, got {}", args.len()),
            ))
        }
    };

    if let Some(op) = binop_by_name(mnemonic) {
        want(3)?;
        return Ok(MachInst::Bin {
            op,
            dst: parse_reg(args[0], line)?,
            lhs: parse_reg(args[1], line)?,
            rhs: parse_operand(args[2], line)?,
        });
    }
    if let Some(cmp) = mnemonic.strip_prefix("cmp.") {
        let op = cmpop_by_name(cmp)
            .ok_or_else(|| err(line, format!("unknown comparison `{mnemonic}`")))?;
        want(3)?;
        return Ok(MachInst::Cmp {
            op,
            dst: parse_reg(args[0], line)?,
            lhs: parse_reg(args[1], line)?,
            rhs: parse_operand(args[2], line)?,
        });
    }
    match mnemonic {
        "mov" => {
            want(2)?;
            Ok(MachInst::Mov {
                dst: parse_reg(args[0], line)?,
                src: parse_operand(args[1], line)?,
            })
        }
        "ld" => {
            want(2)?;
            Ok(MachInst::Load {
                dst: parse_reg(args[0], line)?,
                addr: parse_addr(args[1], line)?,
            })
        }
        "st" => {
            want(2)?;
            Ok(MachInst::Store {
                src: parse_operand(args[0], line)?,
                addr: parse_addr(args[1], line)?,
            })
        }
        "ckpt" => {
            want(1)?;
            Ok(MachInst::Ckpt {
                reg: parse_reg(args[0], line)?,
            })
        }
        "rb" => {
            want(1)?;
            let id = args[0]
                .strip_prefix('R')
                .and_then(|s| s.parse::<u32>().ok())
                .ok_or_else(|| err(line, format!("bad region id `{}`", args[0])))?;
            Ok(MachInst::RegionBoundary { id: RegionId(id) })
        }
        "jmp" => {
            want(1)?;
            Ok(MachInst::Jump {
                target: parse_target(args[0], line)?,
            })
        }
        "bnz" => {
            want(2)?;
            Ok(MachInst::BranchNz {
                cond: parse_reg(args[0], line)?,
                target: parse_target(args[1], line)?,
            })
        }
        "ret" => match args.len() {
            0 => Ok(MachInst::Ret { value: None }),
            1 => Ok(MachInst::Ret {
                value: Some(parse_operand(args[0], line)?),
            }),
            n => Err(err(line, format!("`ret` expects 0 or 1 operands, got {n}"))),
        },
        "nop" => {
            want(0)?;
            Ok(MachInst::Nop)
        }
        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

/// Parse an assembly listing into machine instructions.
///
/// Accepts the [`disasm`](crate::MachProgram::disasm) format: blank lines
/// and `;` comment lines are skipped, and an optional leading `N:` pc label
/// on each line is ignored.
///
/// # Errors
///
/// Returns the first [`AsmError`] with its line number.
pub fn parse_asm(text: &str) -> Result<Vec<MachInst>, AsmError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let mut s = raw.trim();
        if s.is_empty() || s.starts_with(';') {
            continue;
        }
        // Strip a leading "N:" pc label.
        if let Some(colon) = s.find(':') {
            if s[..colon].trim().chars().all(|c| c.is_ascii_digit()) {
                s = s[colon + 1..].trim();
            }
        }
        if s.is_empty() {
            continue;
        }
        out.push(parse_line(s, line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::MachProgram;
    use turnpike_ir::DataSegment;

    fn r(i: u8) -> PhysReg {
        PhysReg::new(i).unwrap()
    }

    #[test]
    fn parses_every_syntax_form() {
        let text = "
            ; a comment
            mov r1, #-7
            mov r2, r1
            mul r3, r1, #100
            xor r3, r3, r2
            cmp.le r4, r3, #0
            cmp.ne r4, r3, r1
            ld r5, [r1+16]
            ld r5, [r1-8]
            ld r5, [0x1008]
            ld r5, [ckpt:r5]
            st r5, [r1+0]
            st #3, [0x2000]
            ckpt r6
            rb R1
            jmp @17
            bnz r4, @0
            ret r3
            ret #5
            ret
            nop
        ";
        let insts = parse_asm(text).unwrap();
        assert_eq!(insts.len(), 20);
        assert_eq!(
            insts[0],
            MachInst::Mov {
                dst: r(1),
                src: MOperand::Imm(-7)
            }
        );
        assert_eq!(
            insts[9],
            MachInst::Load {
                dst: r(5),
                addr: MachAddr::CkptSlot(r(5))
            }
        );
        assert_eq!(insts[13], MachInst::RegionBoundary { id: RegionId(1) });
    }

    #[test]
    fn disasm_round_trips() {
        let insts = vec![
            MachInst::Mov {
                dst: r(0),
                src: MOperand::Imm(3),
            },
            MachInst::Bin {
                op: BinOp::Shl,
                dst: r(1),
                lhs: r(0),
                rhs: MOperand::Imm(2),
            },
            MachInst::Store {
                src: MOperand::Reg(r(1)),
                addr: MachAddr::RegOffset(r(0), -16),
            },
            MachInst::Ckpt { reg: r(1) },
            MachInst::RegionBoundary { id: RegionId(1) },
            MachInst::BranchNz {
                cond: r(1),
                target: 0,
            },
            MachInst::Ret {
                value: Some(MOperand::Reg(r(1))),
            },
        ];
        let p = MachProgram::from_insts("rt", insts.clone(), DataSegment::zeroed(0, 0));
        let parsed = parse_asm(&p.disasm()).unwrap();
        assert_eq!(parsed, insts);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_asm("mov r1, #1\nbogus r2").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
        let e = parse_asm("mov r99, #1").unwrap_err();
        assert!(e.message.contains("out of range"));
        let e = parse_asm("add r1, r2").unwrap_err();
        assert!(e.message.contains("expects 3"));
        let e = parse_asm("ld r1, [zzz]").unwrap_err();
        assert!(e.message.contains("bad address") || e.message.contains("expected register"));
    }
}
