//! Per-job flight recorder: a bounded ring of lifecycle events dumped as
//! JSONL evidence when a job goes wrong.
//!
//! A healthy job's recorder is dropped silently at completion. When a job
//! fails, is canceled by its deadline, or produces a quarantined store
//! entry, the ring is dumped next to the artifact store — one file per
//! job, newest `FLIGHT_CAP` events, oldest dropped first — so a wedged or
//! failed job leaves evidence behind even though the server kept running.
//! The dump is plain JSONL with a header line, greppable without tooling.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;

use crate::json::escape;

/// Ring capacity per job. 256 events comfortably covers accept → queue →
/// start → per-chunk progress → terminal for any realistic campaign while
/// bounding a pathological job's memory at a few tens of KiB.
pub const FLIGHT_CAP: usize = 256;

/// One recorded lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the server started.
    pub t_us: u64,
    /// Event kind: `accept`, `queue`, `start`, `progress`, `done`,
    /// `fail`, `cancel`, `deadline`, `quarantine`.
    pub kind: &'static str,
    /// Free-form detail (queue depth, progress counts, error text...).
    pub detail: String,
}

impl FlightEvent {
    /// Render as one stable JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_us\":{},\"kind\":\"{}\",\"detail\":{}}}",
            self.t_us,
            self.kind,
            escape(&self.detail)
        )
    }
}

/// Drop-oldest ring of [`FlightEvent`]s for one job.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    job: u64,
    events: VecDeque<FlightEvent>,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder for server job `job`.
    pub fn new(job: u64) -> Self {
        FlightRecorder {
            job,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The job this recorder belongs to.
    pub fn job(&self) -> u64 {
        self.job
    }

    /// Events currently held (after any drops).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded (and nothing dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Record one event, dropping the oldest past [`FLIGHT_CAP`].
    pub fn record(&mut self, t_us: u64, kind: &'static str, detail: impl Into<String>) {
        if self.events.len() == FLIGHT_CAP {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(FlightEvent {
            t_us,
            kind,
            detail: detail.into(),
        });
    }

    /// Render the ring as JSONL: a header line documenting the job and any
    /// drop-oldest truncation, then one line per retained event in order.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"flight\":1,\"job\":{},\"events\":{},\"dropped\":{}}}\n",
            self.job,
            self.events.len(),
            self.dropped
        );
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Dump the ring as `job-<id>.jsonl` under `dir`, creating the
    /// directory if needed. Best-effort by design — the dump happens on a
    /// failure path, and evidence writing must never turn one failed job
    /// into a failed server — so errors are returned for logging, not
    /// propagation.
    ///
    /// # Errors
    ///
    /// Directory-creation and write failures.
    pub fn dump(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("job-{}.jsonl", self.job));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_jsonl().as_bytes())?;
        f.flush()?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_documents_it() {
        let mut r = FlightRecorder::new(7);
        assert!(r.is_empty());
        for i in 0..(FLIGHT_CAP as u64 + 10) {
            r.record(i, "progress", format!("done={i}"));
        }
        assert_eq!(r.len(), FLIGHT_CAP);
        let text = r.to_jsonl();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            format!("{{\"flight\":1,\"job\":7,\"events\":{FLIGHT_CAP},\"dropped\":10}}")
        );
        // Oldest 10 dropped: the first retained event is t_us=10.
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_us\":10,\"kind\":\"progress\",\"detail\":\"done=10\"}"
        );
        assert_eq!(text.lines().count(), FLIGHT_CAP + 1);
    }

    #[test]
    fn dump_writes_one_file_per_job() {
        let dir = std::env::temp_dir().join(format!(
            "turnpike-flight-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = FlightRecorder::new(3);
        r.record(5, "accept", "queue_depth=1");
        r.record(9, "fail", "kernel 'warp' not found");
        let path = r.dump(&dir.join("flight")).unwrap();
        assert_eq!(path.file_name().unwrap(), "job-3.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"flight\":1,\"job\":3,\"events\":2,\"dropped\":0}\n"));
        assert!(text.contains("\"kind\":\"fail\""));
        assert!(text.contains("kernel 'warp' not found"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
