//! Paged sparse flat memory for the functional state.
//!
//! The core's data and checkpoint memories used to be `BTreeMap<u64, i64>`;
//! every load and store walked the tree, which `BENCH_reproduce.json`
//! showed dominating simulation time. [`PagedMem`] replaces the tree with
//! fixed-size flat pages indexed by `addr >> PAGE_SHIFT`:
//!
//! * **O(1) word access** within a page (one shift, one mask, one array
//!   index) plus a short binary search over the sorted page directory —
//!   kernels touch a handful of pages (the data segment near its base and
//!   one page of checkpoint slots at `CKPT_BASE`), so the directory stays
//!   tiny;
//! * a **presence bitmap** per page preserves the map's untouched-word
//!   semantics exactly: a load of a never-written address still reads 0 via
//!   `get(..) == None`, and [`PagedMem::to_btree`] reconstructs the
//!   `BTreeMap` view of [`SimOutcome`](crate::SimOutcome) byte-identically
//!   (only addresses ever inserted appear, in sorted order);
//! * pages live behind [`Arc`], so cloning a `PagedMem` is O(pages) pointer
//!   copies — the copy-on-write substrate of the core's snapshot/fork API
//!   ([`Core::run_collecting_snapshots`](crate::Core::run_collecting_snapshots)).
//!   Writes after a clone go through [`Arc::make_mut`], copying only the
//!   written page.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// log2 of the address span of one page. A page covers `1 << PAGE_SHIFT`
/// *byte addresses* (the functional maps key on exact `u64` addresses, so
/// presence is tracked per address, not per 8-byte word): 512 addresses,
/// 4 KiB of word storage plus a 64-byte presence bitmap.
const PAGE_SHIFT: u32 = 9;
/// Addressable slots per page.
const PAGE_SLOTS: usize = 1 << PAGE_SHIFT;
/// Low-bits mask selecting the slot within a page.
const PAGE_MASK: u64 = (PAGE_SLOTS as u64) - 1;

/// One fixed-size page: a flat word array and the presence bitmap telling
/// written slots apart from the implicit-zero background.
#[derive(Debug, Clone)]
struct Page {
    /// One bit per slot; set once the slot has been inserted.
    present: [u64; PAGE_SLOTS / 64],
    /// Word storage, indexed by `addr & PAGE_MASK`.
    words: Box<[i64; PAGE_SLOTS]>,
}

impl Page {
    fn new() -> Self {
        Page {
            present: [0; PAGE_SLOTS / 64],
            words: Box::new([0; PAGE_SLOTS]),
        }
    }

    #[inline]
    fn is_present(&self, slot: usize) -> bool {
        self.present[slot / 64] & (1 << (slot % 64)) != 0
    }

    #[inline]
    fn set(&mut self, slot: usize, value: i64) {
        self.present[slot / 64] |= 1 << (slot % 64);
        self.words[slot] = value;
    }
}

/// Sparse flat memory: a sorted directory of copy-on-write pages.
///
/// Drop-in replacement for the simulator's former `BTreeMap<u64, i64>`
/// functional memories with identical observable semantics (see the module
/// docs) and O(1) in-page access.
#[derive(Debug, Default)]
pub struct PagedMem {
    /// `(page_index, page)` sorted by page index.
    pages: Vec<(u64, Arc<Page>)>,
    /// Directory position of the most recently accessed page — a one-entry
    /// TLB for the accessor fast paths. Relaxed atomic (not `Cell`) purely
    /// so shared snapshots stay `Sync`; it is a performance hint with no
    /// observable effect.
    hot: AtomicUsize,
}

impl Clone for PagedMem {
    fn clone(&self) -> Self {
        PagedMem {
            pages: self.pages.clone(),
            hot: AtomicUsize::new(self.hot.load(Ordering::Relaxed)),
        }
    }
}

impl PagedMem {
    /// An empty memory (every address reads as untouched).
    pub fn new() -> Self {
        PagedMem::default()
    }

    #[inline]
    fn find(&self, page_idx: u64) -> Result<usize, usize> {
        let hot = self.hot.load(Ordering::Relaxed);
        if let Some(&(i, _)) = self.pages.get(hot) {
            if i == page_idx {
                return Ok(hot);
            }
        }
        let found = self.pages.binary_search_by_key(&page_idx, |&(i, _)| i);
        if let Ok(i) = found {
            self.hot.store(i, Ordering::Relaxed);
        }
        found
    }

    /// The value at `addr`, or `None` if the address was never inserted.
    #[inline]
    pub fn get(&self, addr: u64) -> Option<i64> {
        let (idx, slot) = (addr >> PAGE_SHIFT, (addr & PAGE_MASK) as usize);
        let i = self.find(idx).ok()?;
        let page = &self.pages[i].1;
        page.is_present(slot).then(|| page.words[slot])
    }

    /// Insert (or overwrite) the word at `addr`. Copies the page first if
    /// it is shared with a snapshot (copy-on-write).
    #[inline]
    pub fn insert(&mut self, addr: u64, value: i64) {
        let (idx, slot) = (addr >> PAGE_SHIFT, (addr & PAGE_MASK) as usize);
        match self.find(idx) {
            Ok(i) => Arc::make_mut(&mut self.pages[i].1).set(slot, value),
            Err(i) => {
                let mut page = Page::new();
                page.set(slot, value);
                self.pages.insert(i, (idx, Arc::new(page)));
            }
        }
    }

    /// Number of inserted addresses.
    pub fn len(&self) -> usize {
        self.pages
            .iter()
            .map(|(_, p)| {
                p.present
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether no address was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `self` and `other` hold identical content: the same set of
    /// inserted addresses, each with an equal value. Pages shared through
    /// the copy-on-write ancestry compare by pointer; a page present in
    /// only one directory matches only if it is all-absent (which never
    /// arises in practice — pages are created by `insert` — but keeps the
    /// predicate exact).
    pub fn content_eq(&self, other: &PagedMem) -> bool {
        fn blank(page: &Page) -> bool {
            page.present.iter().all(|&w| w == 0)
        }
        let (mut a, mut b) = (self.pages.iter().peekable(), other.pages.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (None, None) => return true,
                (Some((_, p)), None) => {
                    if !blank(p) {
                        return false;
                    }
                    a.next();
                }
                (None, Some((_, p))) => {
                    if !blank(p) {
                        return false;
                    }
                    b.next();
                }
                (Some((ia, pa)), Some((ib, pb))) => {
                    if ia < ib {
                        if !blank(pa) {
                            return false;
                        }
                        a.next();
                    } else if ib < ia {
                        if !blank(pb) {
                            return false;
                        }
                        b.next();
                    } else {
                        if !Arc::ptr_eq(pa, pb) {
                            if pa.present != pb.present {
                                return false;
                            }
                            for slot in 0..PAGE_SLOTS {
                                if pa.is_present(slot) && pa.words[slot] != pb.words[slot] {
                                    return false;
                                }
                            }
                        }
                        a.next();
                        b.next();
                    }
                }
            }
        }
    }

    /// The `BTreeMap` view: every inserted `(addr, value)` pair in address
    /// order — byte-identical to what the former map-backed memory held.
    pub fn to_btree(&self) -> BTreeMap<u64, i64> {
        let mut out = BTreeMap::new();
        for (idx, page) in &self.pages {
            let base = idx << PAGE_SHIFT;
            for slot in 0..PAGE_SLOTS {
                if page.is_present(slot) {
                    out.insert(base + slot as u64, page.words[slot]);
                }
            }
        }
        out
    }
}

impl FromIterator<(u64, i64)> for PagedMem {
    fn from_iter<T: IntoIterator<Item = (u64, i64)>>(iter: T) -> Self {
        let mut m = PagedMem::new();
        for (a, v) in iter {
            m.insert(a, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_addresses_read_none() {
        let m = PagedMem::new();
        assert_eq!(m.get(0), None);
        assert_eq!(m.get(0x1000), None);
        assert!(m.is_empty());
    }

    #[test]
    fn insert_get_roundtrip_across_page_boundaries() {
        let mut m = PagedMem::new();
        // Straddle a page boundary: 0x1ff and 0x200 land on different pages.
        for a in [0u64, 0x1ff, 0x200, 0x1000, 0x8000_0000, u64::MAX] {
            m.insert(a, a as i64 ^ 0x5a);
        }
        for a in [0u64, 0x1ff, 0x200, 0x1000, 0x8000_0000, u64::MAX] {
            assert_eq!(m.get(a), Some(a as i64 ^ 0x5a), "addr {a:#x}");
        }
        // Neighbors of written slots stay untouched.
        assert_eq!(m.get(1), None);
        assert_eq!(m.get(0x201), None);
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn overwrite_keeps_one_entry() {
        let mut m = PagedMem::new();
        m.insert(0x40, 1);
        m.insert(0x40, 2);
        assert_eq!(m.get(0x40), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn zero_value_is_distinct_from_untouched() {
        let mut m = PagedMem::new();
        m.insert(0x10, 0);
        assert_eq!(m.get(0x10), Some(0));
        assert_eq!(m.get(0x18), None);
        assert_eq!(m.to_btree(), BTreeMap::from([(0x10, 0)]));
    }

    #[test]
    fn to_btree_matches_reference_map() {
        let pairs: Vec<(u64, i64)> = (0..2000u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9) % 0x10_0000, i as i64 - 7))
            .collect();
        let m: PagedMem = pairs.iter().copied().collect();
        let reference: BTreeMap<u64, i64> = pairs.iter().copied().collect();
        assert_eq!(m.to_btree(), reference);
    }

    #[test]
    fn content_eq_is_structural() {
        let pairs: Vec<(u64, i64)> = vec![(0x10, 1), (0x1ff, 2), (0x200, 3), (0x9000, 4)];
        let a: PagedMem = pairs.iter().copied().collect();
        let mut b: PagedMem = pairs.iter().rev().copied().collect();
        assert!(a.content_eq(&b));
        assert!(b.content_eq(&a));
        // A COW clone shares pages: pointer fast path.
        let c = a.clone();
        assert!(a.content_eq(&c));
        // Divergent value.
        b.insert(0x1ff, 7);
        assert!(!a.content_eq(&b));
        // Divergent presence (extra address on an existing page).
        let mut d = a.clone();
        d.insert(0x11, 0);
        assert!(!a.content_eq(&d));
        // Extra page on one side.
        let mut e = a.clone();
        e.insert(0xdead_0000, 0);
        assert!(!a.content_eq(&e));
        assert!(!e.content_eq(&a));
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut a = PagedMem::new();
        a.insert(0x100, 7);
        let b = a.clone();
        a.insert(0x100, 8); // must not write through to the clone
        a.insert(0x108, 9);
        assert_eq!(b.get(0x100), Some(7));
        assert_eq!(b.get(0x108), None);
        assert_eq!(a.get(0x100), Some(8));
    }
}
