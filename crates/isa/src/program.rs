//! Machine programs, regions, and recovery blocks.

use crate::inst::MachInst;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use turnpike_ir::DataSegment;

/// Identifier of a *static* region: region `k` starts at the `k`-th region
/// boundary in instruction order ([`RegionId(0)`](RegionId) is the implicit
/// region starting at PC 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

impl RegionId {
    /// Numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Protection applied to one static region.
///
/// Region metadata attached by the compiler's vulnerability policy
/// ([`MachProgram::region_modes`]); the simulator consults the *running*
/// region's mode so machinery can be dropped region-by-region. The modes
/// form a lattice `Unprotected < Turnstile < Turnpike`: each step keeps
/// every guarantee of the one below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtectionMode {
    /// No detection and no store gating: strikes inside the region are
    /// never detected (they may corrupt output), its stores release
    /// immediately when safe, and its verification window is zero.
    /// Checkpoints still follow the protected path — recovery of the
    /// region itself, or of a protected neighbor, must observe correct
    /// checkpoint slots.
    Unprotected,
    /// Detection plus gated stores, but no Turnpike fast-release
    /// structures (per-region WAR-free release and checkpoint coloring are
    /// forced off even when the core has the hardware).
    Turnstile,
    /// Full protection: detection, gated stores, and whatever fast-release
    /// hardware the core config enables. On a core without that hardware
    /// this is identical to [`ProtectionMode::Turnstile`].
    Turnpike,
}

impl fmt::Display for ProtectionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectionMode::Unprotected => write!(f, "unprotected"),
            ProtectionMode::Turnstile => write!(f, "turnstile"),
            ProtectionMode::Turnpike => write!(f, "turnpike"),
        }
    }
}

/// Code executed by the recovery controller before re-running a region.
///
/// A recovery block restores the region's live-in registers from their
/// checkpoint storage (via [`MachAddr::CkptSlot`](crate::MachAddr::CkptSlot)
/// loads, which the hardware resolves through the verified-colors map) and
/// reconstructs any registers whose checkpoints were pruned. It must not
/// contain stores or control flow.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryBlock {
    /// Straight-line restoration code.
    pub insts: Vec<MachInst>,
}

impl RecoveryBlock {
    /// An empty recovery block (region with no live-in registers).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Structural defects detected by [`MachProgram::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A jump/branch targets an instruction index out of range.
    BadTarget {
        /// PC of the offending instruction.
        pc: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// The program does not end in an unconditional control transfer, so
    /// execution could fall off the end.
    FallsOffEnd,
    /// A recovery block contains a store or control-flow instruction.
    BadRecoveryInst {
        /// Region whose recovery block is malformed.
        region: RegionId,
    },
    /// Region ids on boundary instructions are not 1,2,3,... in PC order.
    NonSequentialRegions {
        /// PC of the offending boundary.
        pc: u32,
    },
    /// A protection-mode entry names a region the program does not have.
    UnknownModeRegion {
        /// The out-of-range region id.
        region: RegionId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadTarget { pc, target } => {
                write!(f, "instruction at pc {pc} targets out-of-range {target}")
            }
            ValidateError::FallsOffEnd => write!(f, "program may fall off the end"),
            ValidateError::BadRecoveryInst { region } => {
                write!(f, "recovery block of {region} contains a store or branch")
            }
            ValidateError::NonSequentialRegions { pc } => {
                write!(f, "region boundary at pc {pc} breaks sequential numbering")
            }
            ValidateError::UnknownModeRegion { region } => {
                write!(f, "protection mode attached to unknown region {region}")
            }
        }
    }
}

impl Error for ValidateError {}

/// A complete machine program: flat instruction stream, static data, initial
/// register values, and per-region recovery metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachProgram {
    /// Program name (propagated from the IR function).
    pub name: String,
    /// Flat instruction stream; branch targets index into this vector.
    pub insts: Vec<MachInst>,
    /// Static data image.
    pub data: DataSegment,
    /// Initial register values applied before cycle 0 (program inputs and
    /// materialized addresses).
    pub reg_init: Vec<(crate::PhysReg, i64)>,
    /// Recovery blocks keyed by static region id. Region 0 (function entry)
    /// always has an entry; its block restores the program inputs.
    pub recovery: BTreeMap<RegionId, RecoveryBlock>,
    /// Per-region protection modes attached by the compiler's vulnerability
    /// policy. Empty for uniform configurations: every region then follows
    /// the core configuration, exactly as before this metadata existed.
    /// Absent ids default to [`ProtectionMode::Turnpike`] (full protection).
    pub region_modes: BTreeMap<RegionId, ProtectionMode>,
}

impl MachProgram {
    /// Minimal constructor for a program with no regions or recovery blocks
    /// (used in tests and by the baseline, resilience-free configuration).
    pub fn from_insts(name: &str, insts: Vec<MachInst>, data: DataSegment) -> Self {
        MachProgram {
            name: name.to_string(),
            insts,
            data,
            reg_init: Vec::new(),
            recovery: BTreeMap::new(),
            region_modes: BTreeMap::new(),
        }
    }

    /// The protection mode of static region `id`: explicit metadata if the
    /// compiler attached any, full protection otherwise.
    pub fn region_mode(&self, id: RegionId) -> ProtectionMode {
        self.region_modes
            .get(&id)
            .copied()
            .unwrap_or(ProtectionMode::Turnpike)
    }

    /// Number of static regions (boundary count + the implicit entry region).
    pub fn num_regions(&self) -> u32 {
        1 + self
            .insts
            .iter()
            .filter(|i| matches!(i, MachInst::RegionBoundary { .. }))
            .count() as u32
    }

    /// The PC at which static region `id` begins executing: PC 0 for region
    /// 0, one past the boundary instruction otherwise. Returns `None` for an
    /// unknown region id.
    pub fn region_entry(&self, id: RegionId) -> Option<u32> {
        if id.0 == 0 {
            return Some(0);
        }
        self.insts.iter().enumerate().find_map(|(pc, i)| match i {
            MachInst::RegionBoundary { id: rid } if *rid == id => Some(pc as u32 + 1),
            _ => None,
        })
    }

    /// Static code size in bytes under the fixed 8-byte encoding.
    pub fn code_bytes(&self) -> u64 {
        self.insts.len() as u64 * 8
    }

    /// Check structural invariants.
    ///
    /// # Errors
    ///
    /// See [`ValidateError`] for the catalogue of defects.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let n = self.insts.len() as u32;
        let mut next_region = 1u32;
        for (pc, inst) in self.insts.iter().enumerate() {
            let pc = pc as u32;
            match *inst {
                MachInst::Jump { target } | MachInst::BranchNz { target, .. } if target >= n => {
                    return Err(ValidateError::BadTarget { pc, target });
                }
                MachInst::RegionBoundary { id } => {
                    if id.0 != next_region {
                        return Err(ValidateError::NonSequentialRegions { pc });
                    }
                    next_region += 1;
                }
                _ => {}
            }
        }
        match self.insts.last() {
            Some(MachInst::Ret { .. }) | Some(MachInst::Jump { .. }) => {}
            _ => return Err(ValidateError::FallsOffEnd),
        }
        for (&region, block) in &self.recovery {
            for inst in &block.insts {
                if inst.is_store() || inst.is_control() {
                    return Err(ValidateError::BadRecoveryInst { region });
                }
            }
        }
        if let Some((&region, _)) = self.region_modes.range(RegionId(next_region)..).next() {
            return Err(ValidateError::UnknownModeRegion { region });
        }
        Ok(())
    }

    /// Disassembly listing with PCs, for debugging and docs.
    pub fn disasm(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "; {} ({} insts)", self.name, self.insts.len());
        for (pc, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(s, "{pc:5}: {inst}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{MOperand, PhysReg};
    use turnpike_ir::BinOp;

    fn r(i: u8) -> PhysReg {
        PhysReg::new(i).unwrap()
    }

    fn ret() -> MachInst {
        MachInst::Ret { value: None }
    }

    #[test]
    fn region_numbering_and_entries() {
        let p = MachProgram::from_insts(
            "p",
            vec![
                MachInst::Nop,
                MachInst::RegionBoundary { id: RegionId(1) },
                MachInst::Nop,
                MachInst::RegionBoundary { id: RegionId(2) },
                ret(),
            ],
            DataSegment::zeroed(0, 0),
        );
        assert_eq!(p.num_regions(), 3);
        assert_eq!(p.region_entry(RegionId(0)), Some(0));
        assert_eq!(p.region_entry(RegionId(1)), Some(2));
        assert_eq!(p.region_entry(RegionId(2)), Some(4));
        assert_eq!(p.region_entry(RegionId(9)), None);
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.code_bytes(), 40);
    }

    #[test]
    fn validate_rejects_bad_target() {
        let p = MachProgram::from_insts(
            "b",
            vec![MachInst::Jump { target: 5 }, ret()],
            DataSegment::zeroed(0, 0),
        );
        assert_eq!(
            p.validate(),
            Err(ValidateError::BadTarget { pc: 0, target: 5 })
        );
    }

    #[test]
    fn validate_rejects_fallthrough_end() {
        let p = MachProgram::from_insts("f", vec![MachInst::Nop], DataSegment::zeroed(0, 0));
        assert_eq!(p.validate(), Err(ValidateError::FallsOffEnd));
    }

    #[test]
    fn validate_rejects_nonsequential_regions() {
        let p = MachProgram::from_insts(
            "r",
            vec![MachInst::RegionBoundary { id: RegionId(2) }, ret()],
            DataSegment::zeroed(0, 0),
        );
        assert_eq!(
            p.validate(),
            Err(ValidateError::NonSequentialRegions { pc: 0 })
        );
    }

    #[test]
    fn region_modes_default_and_validate() {
        let mut p = MachProgram::from_insts(
            "m",
            vec![
                MachInst::Nop,
                MachInst::RegionBoundary { id: RegionId(1) },
                ret(),
            ],
            DataSegment::zeroed(0, 0),
        );
        // Empty metadata: every region defaults to full protection.
        assert_eq!(p.region_mode(RegionId(0)), ProtectionMode::Turnpike);
        p.region_modes
            .insert(RegionId(1), ProtectionMode::Unprotected);
        assert_eq!(p.region_mode(RegionId(1)), ProtectionMode::Unprotected);
        assert_eq!(p.region_mode(RegionId(0)), ProtectionMode::Turnpike);
        assert_eq!(p.validate(), Ok(()));
        p.region_modes
            .insert(RegionId(7), ProtectionMode::Turnstile);
        assert_eq!(
            p.validate(),
            Err(ValidateError::UnknownModeRegion {
                region: RegionId(7)
            })
        );
    }

    #[test]
    fn protection_modes_form_a_lattice() {
        assert!(ProtectionMode::Unprotected < ProtectionMode::Turnstile);
        assert!(ProtectionMode::Turnstile < ProtectionMode::Turnpike);
        assert_eq!(ProtectionMode::Unprotected.to_string(), "unprotected");
    }

    #[test]
    fn validate_rejects_store_in_recovery() {
        let mut p = MachProgram::from_insts("s", vec![ret()], DataSegment::zeroed(0, 0));
        p.recovery.insert(
            RegionId(0),
            RecoveryBlock {
                insts: vec![MachInst::Ckpt { reg: r(0) }],
            },
        );
        assert_eq!(
            p.validate(),
            Err(ValidateError::BadRecoveryInst {
                region: RegionId(0)
            })
        );
    }

    #[test]
    fn recovery_block_with_alu_ok() {
        let mut p = MachProgram::from_insts("ok", vec![ret()], DataSegment::zeroed(0, 0));
        p.recovery.insert(
            RegionId(0),
            RecoveryBlock {
                insts: vec![
                    MachInst::Load {
                        dst: r(1),
                        addr: crate::MachAddr::CkptSlot(r(1)),
                    },
                    MachInst::Bin {
                        op: BinOp::Add,
                        dst: r(2),
                        lhs: r(1),
                        rhs: MOperand::Imm(9),
                    },
                ],
            },
        );
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn disasm_contains_pcs() {
        let p = MachProgram::from_insts("d", vec![MachInst::Nop, ret()], DataSegment::zeroed(0, 0));
        let d = p.disasm();
        assert!(d.contains("0: nop"));
        assert!(d.contains("1: ret"));
    }
}
