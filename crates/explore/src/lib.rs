//! Cross-layer design-space exploration (the CLEAR framing applied to
//! Turnpike).
//!
//! CLEAR evaluates soft-error resilience as a sweep over protection
//! technique × hardware cost × workload rather than a handful of
//! hand-picked configurations. This crate is the *domain* layer of that
//! sweep for the Turnpike reproduction:
//!
//! * [`grid`] — enumerate the canonical points of a declarative
//!   [`ExploreAxes`](turnpike_resilience::ExploreAxes) grid (scheme × WCDL
//!   × SB size × CLQ design × color count × cache geometry), collapsing
//!   axis values that provably cannot affect a scheme, and map each point
//!   to the [`RunSpec`](turnpike_resilience::RunSpec) that evaluates it
//!   and the [`StructureCost`](turnpike_model::StructureCost) that prices
//!   it;
//! * [`pareto`] — epsilon-dominance Pareto filtering over the three
//!   objectives (runtime overhead, hardware area, SDC rate), with the
//!   exact brute-force filter kept alongside as the correctness oracle.
//!
//! The crate is pure data-flow: no I/O, no threads, no randomness. The
//! bench crate's explore driver owns execution (jobs through the memoizing
//! engine or a serve fleet) and reporting; everything here is
//! deterministic by construction, which is what lets the driver promise a
//! byte-identical frontier at any thread or worker count.

pub mod grid;
pub mod pareto;

pub use grid::{clq_name, enumerate, parse_clq, DesignPoint, Grid};
pub use pareto::{
    area_unit, eps_pareto_mask, exact_pareto_mask, staged_eps_prune, Objectives, DEFAULT_EPSILON,
};
