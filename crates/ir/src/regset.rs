//! A dense bitset over virtual registers, used by the dataflow analyses.

use crate::reg::Reg;
use std::fmt;

/// A fixed-capacity bitset of [`Reg`]s.
///
/// All dataflow sets in the compiler (liveness in/out, gen/kill) are
/// `RegSet`s sized to the function's `num_regs`, so set operations are
/// word-parallel.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RegSet {
    words: Vec<u64>,
    capacity: u32,
}

impl RegSet {
    /// An empty set able to hold registers `0..capacity`.
    pub fn new(capacity: u32) -> Self {
        let n = (capacity as usize).div_ceil(64);
        RegSet {
            words: vec![0; n],
            capacity,
        }
    }

    /// Capacity the set was created with.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Insert a register. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside the capacity.
    pub fn insert(&mut self, r: Reg) -> bool {
        assert!(r.0 < self.capacity, "register {r} out of capacity");
        let (w, b) = (r.index() / 64, r.index() % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old & (1 << b) == 0
    }

    /// Remove a register. Returns `true` if it was present.
    pub fn remove(&mut self, r: Reg) -> bool {
        if r.0 >= self.capacity {
            return false;
        }
        let (w, b) = (r.index() / 64, r.index() % 64);
        let old = self.words[w];
        self.words[w] &= !(1 << b);
        old & (1 << b) != 0
    }

    /// Membership test.
    pub fn contains(&self, r: Reg) -> bool {
        if r.0 >= self.capacity {
            return false;
        }
        let (w, b) = (r.index() / 64, r.index() % 64);
        self.words[w] & (1 << b) != 0
    }

    /// `self |= other`. Returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// `self -= other`.
    pub fn subtract(&mut self, other: &RegSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &RegSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterate over members in increasing register order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Reg> for RegSet {
    /// Collects registers into a set sized to the largest element.
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> Self {
        let regs: Vec<Reg> = iter.into_iter().collect();
        let cap = regs.iter().map(|r| r.0 + 1).max().unwrap_or(0);
        let mut s = RegSet::new(cap);
        for r in regs {
            s.insert(r);
        }
        s
    }
}

impl Extend<Reg> for RegSet {
    fn extend<I: IntoIterator<Item = Reg>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r);
        }
    }
}

/// Iterator over the members of a [`RegSet`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a RegSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = Reg;

    fn next(&mut self) -> Option<Reg> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros();
                self.bits &= self.bits - 1;
                return Some(Reg((self.word * 64) as u32 + b));
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = RegSet::new(130);
        assert!(s.insert(Reg(0)));
        assert!(s.insert(Reg(129)));
        assert!(!s.insert(Reg(0)));
        assert!(s.contains(Reg(0)));
        assert!(s.contains(Reg(129)));
        assert!(!s.contains(Reg(64)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(Reg(0)));
        assert!(!s.remove(Reg(0)));
        assert!(!s.contains(Reg(0)));
        assert!(!s.remove(Reg(999))); // out of capacity is simply absent
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        let mut s = RegSet::new(4);
        s.insert(Reg(4));
    }

    #[test]
    fn set_algebra() {
        let mut a = RegSet::new(100);
        let mut b = RegSet::new(100);
        a.extend([Reg(1), Reg(2), Reg(70)]);
        b.extend([Reg(2), Reg(3)]);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b)); // fixed point
        assert_eq!(a.len(), 4);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![Reg(1), Reg(70)]);
        let mut c = RegSet::new(100);
        c.extend([Reg(1), Reg(5)]);
        a.intersect_with(&c);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![Reg(1)]);
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn iteration_order_is_sorted() {
        let mut s = RegSet::new(200);
        for r in [180, 3, 64, 65, 0] {
            s.insert(Reg(r));
        }
        let v: Vec<u32> = s.iter().map(|r| r.0).collect();
        assert_eq!(v, vec![0, 3, 64, 65, 180]);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: RegSet = [Reg(9), Reg(1)].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert!(s.contains(Reg(9)));
        let empty: RegSet = std::iter::empty().collect();
        assert!(empty.is_empty());
        assert_eq!(format!("{empty:?}"), "{}");
    }
}
