//! Client side: a blocking line-protocol client and a load generator.
//!
//! [`Client::submit`] returns the job's terminal [`Outcome`]. The `done`
//! payload is extracted from the event line **textually** (not re-rendered
//! through the JSON codec) so the bytes the caller sees are exactly the
//! bytes the executor produced — float formatting survives untouched,
//! which is what the byte-identical served-vs-CLI guarantee rests on.
//!
//! [`loadgen`] drives N concurrent clients against one server, retrying
//! `overloaded` rejections with the server's retry-after hint, recording
//! client-observed latency into a [`Histogram`], and proving exactly-once
//! completion by tagging every job and checking each tag terminates
//! exactly once.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use turnpike_metrics::Histogram;

use crate::json::Json;
use crate::proto::{JobRequest, ProgressStats};

/// Terminal disposition of one submitted job.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Finished; `result` is the executor payload, byte-for-byte.
    Done {
        /// Server-assigned job id.
        job: u64,
        /// Artifact-store disposition (`"hit"` / `"miss"` / `"off"`).
        store: String,
        /// Verbatim single-line JSON payload.
        result: String,
    },
    /// Admission control refused the job.
    Overloaded {
        /// Server's suggested wait before retrying.
        retry_after_ms: u64,
    },
    /// The server is draining and takes no new work.
    ShuttingDown,
    /// The job (or request) failed.
    Error {
        /// Server-assigned job id (0 if never admitted).
        job: u64,
        /// Server-provided reason.
        message: String,
    },
}

/// A connected protocol client. One request is in flight at a time per
/// connection (matching the server's per-connection handling).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Extract the verbatim `result` payload from a `done` line without
/// re-rendering. The envelope's `,"store":"` / `,"result":` markers
/// contain unescaped quotes, which cannot occur inside any JSON string our
/// encoder emits, so a textual search is unambiguous.
fn extract_result(line: &str) -> Option<&str> {
    let store_at = line.find(",\"store\":\"")?;
    let marker = ",\"result\":";
    let result_at = line[store_at..].find(marker)? + store_at + marker.len();
    line.get(result_at..line.len() - 1)
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Submit a job and block until its terminal event, invoking
    /// `on_progress(done, total)` for each progress line.
    ///
    /// # Errors
    ///
    /// I/O failures and protocol violations (unparseable event lines).
    pub fn submit_with(
        &mut self,
        req: &JobRequest,
        mut on_progress: impl FnMut(u64, u64),
    ) -> std::io::Result<Outcome> {
        self.submit_streaming(req, |done, total, _| on_progress(done, total))
    }

    /// Submit a job and block until its terminal event, invoking
    /// `on_progress(done, total, stats)` for each progress line. `stats`
    /// is `Some` when the server attached the streaming-estimator payload
    /// (older servers and early progress lines send none), decoded
    /// all-or-nothing so a torn payload reads as absent, never as garbage.
    ///
    /// # Errors
    ///
    /// I/O failures and protocol violations (unparseable event lines).
    pub fn submit_streaming(
        &mut self,
        req: &JobRequest,
        mut on_progress: impl FnMut(u64, u64, Option<&ProgressStats>),
    ) -> std::io::Result<Outcome> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        self.send_line(&req.to_line())?;
        loop {
            let line = self.read_line()?;
            let v = Json::parse(&line).map_err(|e| bad(format!("bad event line '{line}': {e}")))?;
            let event = v
                .get("event")
                .and_then(Json::as_str)
                .ok_or_else(|| bad(format!("event line without 'event': {line}")))?;
            let job = v.get("job").and_then(Json::as_u64).unwrap_or(0);
            match event {
                "accepted" => {}
                "progress" => {
                    let done = v.get("done").and_then(Json::as_u64).unwrap_or(0);
                    let total = v.get("total").and_then(Json::as_u64).unwrap_or(0);
                    let stats = ProgressStats::from_json(&v);
                    on_progress(done, total, stats.as_ref());
                }
                "done" => {
                    let store = v
                        .get("store")
                        .and_then(Json::as_str)
                        .unwrap_or("off")
                        .to_string();
                    let result = extract_result(&line)
                        .ok_or_else(|| bad(format!("done line without result: {line}")))?
                        .to_string();
                    return Ok(Outcome::Done { job, store, result });
                }
                "overloaded" => {
                    let retry_after_ms =
                        v.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(0);
                    return Ok(Outcome::Overloaded { retry_after_ms });
                }
                "shutting_down" => return Ok(Outcome::ShuttingDown),
                "error" => {
                    let message = v
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown error")
                        .to_string();
                    return Ok(Outcome::Error { job, message });
                }
                other => return Err(bad(format!("unexpected event '{other}'"))),
            }
        }
    }

    /// [`Client::submit_with`] discarding progress.
    ///
    /// # Errors
    ///
    /// See [`Client::submit_with`].
    pub fn submit(&mut self, req: &JobRequest) -> std::io::Result<Outcome> {
        self.submit_with(req, |_, _| {})
    }

    /// Fetch the server's stats snapshot (a single-line JSON object).
    ///
    /// # Errors
    ///
    /// I/O failures and protocol violations.
    pub fn stats(&mut self) -> std::io::Result<String> {
        self.send_line("{\"type\":\"stats\"}")?;
        let line = self.read_line()?;
        let prefix = "{\"event\":\"stats\",\"server\":";
        line.strip_prefix(prefix)
            .and_then(|rest| rest.strip_suffix('}'))
            .map(ToString::to_string)
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected stats reply: {line}"),
                )
            })
    }

    /// Fetch Prometheus-style text exposition of the server's live metric
    /// registry (decoded from its single-line JSON envelope).
    ///
    /// # Errors
    ///
    /// I/O failures and protocol violations.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        self.send_line("{\"type\":\"metrics\"}")?;
        let line = self.read_line()?;
        let bad = || {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected metrics reply: {line}"),
            )
        };
        let v = Json::parse(&line).map_err(|_| bad())?;
        if v.get("event").and_then(Json::as_str) != Some("metrics") {
            return Err(bad());
        }
        v.get("body")
            .and_then(Json::as_str)
            .map(ToString::to_string)
            .ok_or_else(bad)
    }

    /// Ask the server to shut down gracefully (drain, then exit).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        self.send_line("{\"type\":\"shutdown\"}")?;
        let _ = self.read_line()?;
        Ok(())
    }
}

/// Jittered exponential backoff for `overloaded` retries.
///
/// The delay doubles per attempt from `base_ms` up to `cap_ms`, with
/// "equal jitter" (half deterministic, half uniform-random) so a thundering
/// herd of rejected clients decorrelates instead of re-arriving in
/// lockstep. The server's `retry_after_ms` hint is honored as a **floor**:
/// backing off less than the server asked would waste a round trip on a
/// guaranteed rejection. The policy is a pure state machine — [`Backoff::next_delay`]
/// computes durations without sleeping or reading a clock — so tests drive
/// it with a mock clock and real clients sleep on whatever it returns.
///
/// Determinism: the jitter stream is seeded SplitMix64, so a given
/// `(seed, attempt sequence, hints)` always produces the same delays —
/// which keeps the load generator's schedule reproducible.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A policy starting at `base_ms` and never exceeding `cap_ms` per
    /// delay, with jitter drawn from `seed`.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Backoff {
        Backoff {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
            attempt: 0,
            rng: seed,
        }
    }

    /// SplitMix64 step: the same tiny generator the resilience crate uses
    /// for per-run seeds — statistically solid, three lines, no deps.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The delay to wait before the next retry, advancing the attempt
    /// counter. `retry_after_ms` is the server's hint (0 when absent).
    pub fn next_delay(&mut self, retry_after_ms: u64) -> Duration {
        let exp = self
            .base_ms
            .saturating_mul(1u64.checked_shl(self.attempt).unwrap_or(u64::MAX))
            .min(self.cap_ms);
        self.attempt = self.attempt.saturating_add(1);
        // Equal jitter: keep half the exponential term, jitter the rest.
        let half = exp / 2;
        let jittered = half + self.next_u64() % (exp - half + 1);
        Duration::from_millis(
            jittered
                .max(retry_after_ms)
                .min(self.cap_ms.max(retry_after_ms)),
        )
    }

    /// Forget accumulated attempts (call after a successful submission).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Jobs submitted per client.
    pub jobs_per_client: usize,
    /// Template request; each submission gets a unique `tag`.
    pub request: JobRequest,
    /// Give up on a job after this many `overloaded` retries.
    pub max_retries: usize,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            clients: 8,
            jobs_per_client: 4,
            request: JobRequest::new(crate::proto::JobKind::Run),
            max_retries: 1000,
        }
    }
}

/// What a [`loadgen`] run observed.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Jobs attempted (clients × jobs_per_client).
    pub jobs: usize,
    /// Jobs that reached `done`.
    pub completed: usize,
    /// Jobs that terminated in `error`.
    pub errors: usize,
    /// `overloaded` rejections observed (== retries performed).
    pub overloaded: u64,
    /// Tags that never reached a terminal event.
    pub lost: usize,
    /// Tags that reached `done` more than once.
    pub duplicated: usize,
    /// Client-observed submit→done latency, in microseconds (includes
    /// retry backoff — the client's actual experience under saturation).
    pub latency: Histogram,
    /// Wall-clock of the whole run, in microseconds.
    pub wall_us: u64,
    /// Server stats snapshot taken after the run.
    pub server_stats: String,
}

impl LoadgenReport {
    /// Completed jobs per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.completed as f64 * 1.0e6 / self.wall_us as f64
    }

    /// Single-line JSON rendering with fixed key order.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"jobs\":{},\"completed\":{},\"errors\":{},\"overloaded\":{},\"lost\":{},\
             \"duplicated\":{},\"wall_us\":{},\"throughput_jobs_per_s\":{:.3},\
             \"latency_p50_us\":{},\"latency_p90_us\":{},\"latency_p99_us\":{},\
             \"latency_p999_us\":{},\"latency_max_us\":{},\"server\":{}}}",
            self.jobs,
            self.completed,
            self.errors,
            self.overloaded,
            self.lost,
            self.duplicated,
            self.wall_us,
            self.throughput(),
            self.latency.quantile(0.50).round() as u64,
            self.latency.quantile(0.90).round() as u64,
            self.latency.quantile(0.99).round() as u64,
            self.latency.quantile(0.999).round() as u64,
            self.latency.max(),
            self.server_stats,
        )
    }
}

struct LoadgenTally {
    done_tags: Vec<String>,
    error_tags: Vec<String>,
    overloaded: u64,
    latency: Histogram,
}

/// Drive `cfg.clients` concurrent connections against `addr`, each
/// submitting `cfg.jobs_per_client` uniquely-tagged jobs, retrying
/// rejections. Every tag is accounted for in the report: `lost` and
/// `duplicated` are both zero iff the server delivered exactly-once.
///
/// # Errors
///
/// Propagates the first connection failure; per-job errors are tallied,
/// not raised.
pub fn loadgen(addr: std::net::SocketAddr, cfg: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    let tally = Mutex::new(LoadgenTally {
        done_tags: Vec::new(),
        error_tags: Vec::new(),
        overloaded: 0,
        latency: Histogram::new(),
    });
    let started = Instant::now();
    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut handles = Vec::new();
        for c in 0..cfg.clients {
            let tally = &tally;
            handles.push(scope.spawn(move || -> std::io::Result<()> {
                let mut client = Client::connect(addr)?;
                // Per-client jitter stream: seeded by index so the whole
                // run's retry schedule is reproducible yet decorrelated
                // across clients.
                let mut backoff = Backoff::new(1, 1_000, c as u64);
                for j in 0..cfg.jobs_per_client {
                    let mut req = cfg.request.clone();
                    req.tag = format!("c{c}-j{j}");
                    let job_start = Instant::now();
                    let mut retries = 0usize;
                    loop {
                        match client.submit(&req)? {
                            Outcome::Done { .. } => {
                                let us = job_start.elapsed().as_micros() as u64;
                                let mut t = tally.lock().unwrap();
                                t.done_tags.push(req.tag.clone());
                                t.latency.record(us);
                                backoff.reset();
                                break;
                            }
                            Outcome::Overloaded { retry_after_ms } => {
                                tally.lock().unwrap().overloaded += 1;
                                retries += 1;
                                if retries > cfg.max_retries {
                                    tally.lock().unwrap().error_tags.push(req.tag.clone());
                                    break;
                                }
                                std::thread::sleep(backoff.next_delay(retry_after_ms));
                            }
                            Outcome::ShuttingDown | Outcome::Error { .. } => {
                                tally.lock().unwrap().error_tags.push(req.tag.clone());
                                break;
                            }
                        }
                    }
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("loadgen client thread panicked")?;
        }
        Ok(())
    })?;
    let wall_us = started.elapsed().as_micros() as u64;
    let server_stats = Client::connect(addr)?.stats()?;
    let tally = tally.into_inner().unwrap();

    let jobs = cfg.clients * cfg.jobs_per_client;
    let mut sorted = tally.done_tags.clone();
    sorted.sort_unstable();
    let duplicated = sorted.windows(2).filter(|w| w[0] == w[1]).count();
    let mut terminal = sorted.clone();
    terminal.extend(tally.error_tags.iter().cloned());
    terminal.sort_unstable();
    let mut lost = 0usize;
    for c in 0..cfg.clients {
        for j in 0..cfg.jobs_per_client {
            if terminal.binary_search(&format!("c{c}-j{j}")).is_err() {
                lost += 1;
            }
        }
    }

    Ok(LoadgenReport {
        jobs,
        completed: tally.done_tags.len() - duplicated,
        errors: tally.error_tags.len(),
        overloaded: tally.overloaded,
        lost,
        duplicated,
        latency: tally.latency,
        wall_us,
        server_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_extraction_preserves_payload_bytes() {
        let line = "{\"event\":\"done\",\"job\":7,\"tag\":\"t\",\"store\":\"miss\",\
                    \"result\":{\"ipc\":0.500000,\"note\":\"a\\\"b\"}}";
        assert_eq!(
            extract_result(line),
            Some("{\"ipc\":0.500000,\"note\":\"a\\\"b\"}")
        );
    }

    #[test]
    fn result_extraction_is_not_fooled_by_marker_text_in_tag() {
        // Quotes in the tag are escaped on the wire, so the raw marker
        // `,"store":"` can only be the envelope's own field.
        let line = "{\"event\":\"done\",\"job\":1,\"tag\":\",\\\"store\\\":\\\"x\",\
                    \"store\":\"off\",\"result\":{\"v\":1}}";
        assert_eq!(extract_result(line), Some("{\"v\":1}"));
    }

    /// Mock-clock walk through the backoff schedule: no sleeping, just the
    /// pure delay sequence, checked against the policy's contract.
    #[test]
    fn backoff_grows_within_envelope_and_honors_the_server_hint() {
        let mut b = Backoff::new(10, 640, 42);
        let mut prev_ceiling = 0u64;
        for attempt in 0..12u32 {
            let d = b.next_delay(0).as_millis() as u64;
            let exp = 10u64
                .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
                .min(640);
            // Equal jitter keeps every delay inside [exp/2, exp].
            assert!(d >= exp / 2, "attempt {attempt}: {d} < {}", exp / 2);
            assert!(d <= exp, "attempt {attempt}: {d} > {exp}");
            assert!(exp >= prev_ceiling, "envelope must not shrink");
            prev_ceiling = exp;
        }
        // Cap reached: delays stay at or under it forever.
        for _ in 0..4 {
            assert!(b.next_delay(0).as_millis() as u64 <= 640);
        }

        // The server's retry-after hint is a floor, even above the cap.
        let mut b = Backoff::new(10, 640, 42);
        assert!(b.next_delay(50).as_millis() as u64 >= 50);
        assert!(b.next_delay(10_000).as_millis() as u64 >= 10_000);
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_resets() {
        let walk = |seed: u64| {
            let mut b = Backoff::new(5, 1_000, seed);
            (0..8).map(|_| b.next_delay(0)).collect::<Vec<_>>()
        };
        assert_eq!(walk(7), walk(7), "same seed, same schedule");
        assert_ne!(walk(7), walk(8), "different seeds decorrelate");

        let mut b = Backoff::new(5, 1_000, 7);
        for _ in 0..6 {
            let _ = b.next_delay(0);
        }
        b.reset();
        // After reset the envelope restarts at the base.
        assert!(b.next_delay(0).as_millis() as u64 <= 5);
    }
}
