//! Distributed campaign coordinator: shard a fault-injection campaign by
//! run-index range across a fleet of `reproduce serve` workers and merge
//! the shard reports into a payload **byte-identical** to a single-process
//! run.
//!
//! Correctness rests on three properties the rest of the workspace already
//! pins down:
//!
//! 1. every run's outcome is a pure function of `(campaign seed, global
//!    run index)` — `run_seed` derives the per-run RNG from the global
//!    index, so a shard executing runs `[offset, offset+n)` produces
//!    exactly the runs the whole campaign would;
//! 2. campaign counters are sums over runs, so shard totals absorb into
//!    whole-campaign totals regardless of which worker ran which shard
//!    (the `shard_merge` property test exercises 1..=8-way partitions
//!    across the Fig-21 ladder);
//! 3. the payload is re-rendered from the merged totals through the same
//!    [`campaign_payload`] the serve executor uses, so the merged report
//!    is the same *bytes*, not merely the same numbers.
//!
//! Fault tolerance is work-stealing re-dispatch: shards live in a shared
//! queue, each worker thread pulls the next shard, and a worker that dies
//! mid-shard (connection drop, rejection budget exhausted, draining
//! server) puts the shard back for the survivors. A shard is only marked
//! finished when its payload parsed back into totals, so a half-streamed
//! result can never count.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use turnpike_serve::{Backoff, Client, JobKind, JobRequest, Outcome};

use crate::service::{campaign_payload, CampaignTotals};

/// Coordinator tuning knobs (the campaign itself rides in `request`).
#[derive(Debug, Clone)]
pub struct CoordinateConfig {
    /// Whole-campaign request; must be `kind: campaign` with
    /// `run_offset == 0`. The coordinator derives shard requests from it.
    pub request: JobRequest,
    /// Shard count; `0` means one shard per worker. Clamped to `runs` so
    /// no shard is empty.
    pub shards: usize,
    /// Give up on a shard attempt after this many `overloaded` rejections
    /// in a row (the shard is then re-queued for another worker).
    pub max_retries: usize,
}

impl Default for CoordinateConfig {
    fn default() -> CoordinateConfig {
        CoordinateConfig {
            request: JobRequest::new(JobKind::Campaign),
            shards: 0,
            max_retries: 100,
        }
    }
}

/// Per-worker share of a finished coordination, for the report.
#[derive(Debug, Clone)]
pub struct WorkerShare {
    /// Worker address as given.
    pub addr: String,
    /// Shards this worker completed.
    pub shards_done: u64,
    /// Injected runs inside those shards.
    pub runs_done: u64,
    /// Whether the worker was still healthy when the campaign finished.
    pub alive: bool,
}

/// What a [`coordinate`] call produced.
#[derive(Debug, Clone)]
pub struct CoordinateReport {
    /// Merged campaign payload — byte-identical to a single-process run
    /// of the same request.
    pub payload: String,
    /// The merged counters behind `payload`.
    pub totals: CampaignTotals,
    /// Shards the campaign was split into.
    pub shards: usize,
    /// Shard attempts that were re-queued after a worker failure.
    pub reassigned: u64,
    /// Per-worker completion shares, in the order workers were given.
    pub workers: Vec<WorkerShare>,
    /// Wall-clock of the whole coordination, in microseconds.
    pub wall_us: u64,
}

impl CoordinateReport {
    /// Single-line JSON rendering with fixed key order (the campaign
    /// payload itself is embedded verbatim).
    pub fn to_json(&self) -> String {
        let workers = self
            .workers
            .iter()
            .map(|w| {
                format!(
                    "{{\"addr\":{},\"shards_done\":{},\"runs_done\":{},\"alive\":{}}}",
                    crate::table::json_string(&w.addr),
                    w.shards_done,
                    w.runs_done,
                    w.alive
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"shards\":{},\"reassigned\":{},\"wall_us\":{},\"workers\":[{}],\"campaign\":{}}}",
            self.shards, self.reassigned, self.wall_us, workers, self.payload
        )
    }
}

/// One pending unit of work: global run offset and run count.
type Shard = (u64, u64);

/// Split `runs` into `shards` contiguous ranges covering `[0, runs)`.
/// Earlier shards take the remainder so sizes differ by at most one.
fn partition(runs: u64, shards: usize) -> Vec<Shard> {
    let shards = shards.max(1) as u64;
    let base = runs / shards;
    let rem = runs % shards;
    let mut out = Vec::with_capacity(shards as usize);
    let mut offset = 0u64;
    for i in 0..shards {
        let n = base + u64::from(i < rem);
        if n == 0 {
            break;
        }
        out.push((offset, n));
        offset += n;
    }
    out
}

struct FleetState {
    /// Shards nobody has finished yet; workers pull from the front and
    /// push failed attempts to the back.
    pending: Mutex<VecDeque<Shard>>,
    /// Finished shards: `(offset, runs, totals)`.
    done: Mutex<Vec<(u64, u64, CampaignTotals)>>,
    /// Runs inside finished shards (progress numerator base).
    completed_runs: AtomicU64,
    /// Per-worker progress inside the shard currently in flight.
    in_flight: Vec<AtomicU64>,
    /// Shards re-queued after a worker failure.
    reassigned: AtomicU64,
    /// A deterministic job failure (bad kernel, executor error). Fatal:
    /// re-dispatching it would fail identically on every worker.
    fatal: Mutex<Option<String>>,
    shard_count: usize,
}

impl FleetState {
    fn finished(&self) -> bool {
        self.done.lock().unwrap().len() == self.shard_count || self.fatal.lock().unwrap().is_some()
    }

    fn progress_done(&self) -> u64 {
        self.completed_runs.load(Ordering::Relaxed)
            + self
                .in_flight
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .sum::<u64>()
    }
}

/// Run one worker thread: pull shards, submit them to `addr`, retry
/// rejections with jittered backoff, and re-queue the shard on any
/// worker-side failure. Returns `(shards_done, runs_done, alive)`.
fn worker_loop(
    addr: SocketAddr,
    index: usize,
    state: &FleetState,
    cfg: &CoordinateConfig,
    on_progress: Option<&(dyn Fn(u64, u64) + Sync)>,
) -> (u64, u64, bool) {
    let total = cfg.request.runs;
    let mut shards_done = 0u64;
    let mut runs_done = 0u64;
    let mut client: Option<Client> = None;
    let mut backoff = Backoff::new(1, 1_000, index as u64);
    loop {
        if state.finished() {
            return (shards_done, runs_done, true);
        }
        let Some((offset, runs)) = state.pending.lock().unwrap().pop_front() else {
            // Nothing pending but shards are still in flight elsewhere; if
            // one of those workers dies, its shard lands back in the queue
            // for us. Poll instead of exiting.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };

        let requeue = |state: &FleetState| {
            state.pending.lock().unwrap().push_back((offset, runs));
            state.reassigned.fetch_add(1, Ordering::Relaxed);
            state.in_flight[index].store(0, Ordering::Relaxed);
        };

        let mut req = cfg.request.clone();
        req.run_offset = offset;
        req.runs = runs;
        req.tag = format!("shard-{offset}");

        let mut retries = 0usize;
        loop {
            // (Re)connect lazily: a worker that was killed and restarted
            // rejoins the fleet on the next shard attempt.
            let c = match &mut client {
                Some(c) => c,
                None => match Client::connect(addr) {
                    Ok(c) => client.insert(c),
                    Err(_) => {
                        requeue(state);
                        return (shards_done, runs_done, false);
                    }
                },
            };
            let outcome = c.submit_with(&req, |done, _total| {
                state.in_flight[index].store(done, Ordering::Relaxed);
                if let Some(f) = on_progress {
                    f(state.progress_done(), total);
                }
            });
            match outcome {
                Ok(Outcome::Done { result, .. }) => {
                    let Some(totals) = CampaignTotals::from_payload(&result) else {
                        // A payload we can't read back is a protocol-level
                        // worker failure, not a merge input.
                        requeue(state);
                        return (shards_done, runs_done, false);
                    };
                    state.in_flight[index].store(0, Ordering::Relaxed);
                    state.completed_runs.fetch_add(runs, Ordering::Relaxed);
                    state.done.lock().unwrap().push((offset, runs, totals));
                    if let Some(f) = on_progress {
                        f(state.progress_done(), total);
                    }
                    shards_done += 1;
                    runs_done += runs;
                    backoff.reset();
                    break;
                }
                Ok(Outcome::Overloaded { retry_after_ms }) => {
                    retries += 1;
                    if retries > cfg.max_retries {
                        requeue(state);
                        return (shards_done, runs_done, false);
                    }
                    std::thread::sleep(backoff.next_delay(retry_after_ms));
                }
                Ok(Outcome::ShuttingDown) => {
                    // Draining server: it finishes what it has but takes no
                    // new work — treat as the worker leaving the fleet.
                    requeue(state);
                    return (shards_done, runs_done, false);
                }
                Ok(Outcome::Error { message, .. }) => {
                    // Deterministic job error: every worker would fail the
                    // same way, so abort the campaign instead of looping.
                    *state.fatal.lock().unwrap() = Some(message);
                    state.in_flight[index].store(0, Ordering::Relaxed);
                    return (shards_done, runs_done, true);
                }
                Err(_) => {
                    // Connection died mid-shard (worker killed); hand the
                    // shard to the survivors.
                    requeue(state);
                    return (shards_done, runs_done, false);
                }
            }
        }
    }
}

/// Shard `cfg.request` across `workers` and merge the results.
///
/// `on_progress(done_runs, total_runs)` is invoked from worker threads as
/// shard progress streams in; `done_runs` aggregates finished shards plus
/// live in-flight progress across the fleet.
///
/// # Errors
///
/// - an invalid request (not a campaign, nonzero `run_offset`, zero runs,
///   or no workers);
/// - a deterministic job error reported by a worker (re-dispatching would
///   fail identically);
/// - every worker failing while shards remain (nobody left to run them).
pub fn coordinate(
    workers: &[SocketAddr],
    cfg: &CoordinateConfig,
    on_progress: Option<&(dyn Fn(u64, u64) + Sync)>,
) -> std::io::Result<CoordinateReport> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg.to_string());
    if cfg.request.kind != JobKind::Campaign {
        return Err(bad("coordinate requires a campaign request"));
    }
    if cfg.request.run_offset != 0 {
        return Err(bad("the whole-campaign request must have run_offset 0"));
    }
    if cfg.request.runs == 0 {
        return Err(bad("a campaign with zero runs has nothing to shard"));
    }
    if workers.is_empty() {
        return Err(bad("at least one worker address is required"));
    }

    let shard_want = if cfg.shards == 0 {
        workers.len()
    } else {
        cfg.shards
    };
    let shards = partition(cfg.request.runs, shard_want.min(cfg.request.runs as usize));
    let state = FleetState {
        pending: Mutex::new(shards.iter().copied().collect()),
        done: Mutex::new(Vec::with_capacity(shards.len())),
        completed_runs: AtomicU64::new(0),
        in_flight: (0..workers.len()).map(|_| AtomicU64::new(0)).collect(),
        reassigned: AtomicU64::new(0),
        fatal: Mutex::new(None),
        shard_count: shards.len(),
    };

    let started = Instant::now();
    let shares: Vec<(u64, u64, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .iter()
            .enumerate()
            .map(|(i, &addr)| {
                let state = &state;
                scope.spawn(move || worker_loop(addr, i, state, cfg, on_progress))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("coordinator worker thread panicked"))
            .collect()
    });
    let wall_us = started.elapsed().as_micros() as u64;

    if let Some(message) = state.fatal.into_inner().unwrap() {
        return Err(std::io::Error::other(format!(
            "worker job error: {message}"
        )));
    }
    let mut done = state.done.into_inner().unwrap();
    if done.len() != shards.len() {
        return Err(std::io::Error::other(format!(
            "campaign incomplete: {} of {} shards finished and no workers remain",
            done.len(),
            shards.len()
        )));
    }

    // Merge in ascending global-run order. Counter addition commutes, but
    // a canonical order makes the merge auditable against the shard list.
    done.sort_unstable_by_key(|&(offset, _, _)| offset);
    let mut totals = CampaignTotals::default();
    for (_, _, t) in &done {
        totals.absorb(t);
    }
    let payload = campaign_payload(&cfg.request, &cfg.request.scale, &totals);

    Ok(CoordinateReport {
        payload,
        totals,
        shards: shards.len(),
        reassigned: state.reassigned.into_inner(),
        workers: workers
            .iter()
            .zip(&shares)
            .map(|(addr, &(shards_done, runs_done, alive))| WorkerShare {
                addr: addr.to_string(),
                shards_done,
                runs_done,
                alive,
            })
            .collect(),
        wall_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_the_range_contiguously() {
        for runs in [1u64, 2, 7, 8, 9, 100] {
            for shards in 1usize..=8 {
                let parts = partition(runs, shards);
                assert!(parts.len() <= shards);
                let mut next = 0u64;
                for &(offset, n) in &parts {
                    assert_eq!(offset, next, "runs={runs} shards={shards}");
                    assert!(n > 0);
                    next += n;
                }
                assert_eq!(next, runs, "runs={runs} shards={shards}");
                // Balanced: sizes differ by at most one.
                let max = parts.iter().map(|&(_, n)| n).max().unwrap();
                let min = parts.iter().map(|&(_, n)| n).min().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn invalid_requests_are_rejected_before_any_connection() {
        let workers = ["127.0.0.1:1".parse().unwrap()];
        let mut cfg = CoordinateConfig::default();
        cfg.request.kind = JobKind::Run;
        assert!(coordinate(&workers, &cfg, None).is_err());
        let mut cfg = CoordinateConfig::default();
        cfg.request.run_offset = 3;
        assert!(coordinate(&workers, &cfg, None).is_err());
        let mut cfg = CoordinateConfig::default();
        cfg.request.runs = 0;
        assert!(coordinate(&workers, &cfg, None).is_err());
        let cfg = CoordinateConfig::default();
        assert!(coordinate(&[], &cfg, None).is_err());
    }
}
