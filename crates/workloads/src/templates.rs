//! Kernel templates: parameterized program shapes.
//!
//! Each template builds a complete [`Program`] from a few knobs. Data
//! segments start at [`DATA_BASE`]; kernels receive base addresses as
//! program parameters so the register allocator and recovery machinery see
//! realistic live-in state.

use turnpike_ir::{BinOp, CmpOp, DataSegment, FunctionBuilder, Operand, Program, Reg};

/// Base address of kernel data.
pub const DATA_BASE: u64 = 0x1_0000;

/// Streaming store kernel (bwaves/roms/libquantum-style).
///
/// A single-block loop writes `stores_per_iter` consecutive array cells per
/// iteration through a strength-reduced pointer IV (`p += 8*stores`), the
/// exact Figure-8 shape LIVM merges away. Stores hit fresh addresses, so
/// with a CLQ they are all WAR-free. `alu` pads each iteration with that
/// many extra arithmetic operations, controlling region size (the paper's
/// SPEC loops average ~11 instructions per region).
pub fn streaming(name: &str, trip: i64, stores_per_iter: usize, alu: usize) -> Program {
    let spi = stores_per_iter.max(1);
    let mut b = FunctionBuilder::new(name);
    let base = b.param();
    let i = b.fresh_reg();
    let p = b.fresh_reg();
    let v = b.fresh_reg();
    let c = b.fresh_reg();
    let q = b.fresh_reg(); // derived guard: reconstructible at recovery
    let d = b.fresh_reg();
    let body = b.create_block();
    let done = b.create_block();
    b.mov(i, 0i64);
    b.mov(p, DATA_BASE as i64);
    b.jump(body);
    b.switch_to(body);
    // A value derived from the live induction variable, consumed after the
    // in-loop region split: its eager checkpoint is exactly what optimal
    // pruning removes (recovery recomputes q = i + 1_000_000).
    b.add(q, i, 1_000_000i64);
    b.mul(v, i, 7i64);
    for k in 0..alu {
        match k % 3 {
            0 => b.add(v, v, 13i64),
            1 => b.xor(v, v, 0x55i64),
            _ => b.shl(v, v, 1i64),
        }
    }
    for k in 0..spi {
        b.add(v, v, 3i64);
        b.store(v, p, (k * 8) as i64);
    }
    b.add(p, p, (spi * 8) as i64);
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, trip);
    b.cmp(CmpOp::Lt, d, i, Operand::Reg(q)); // always true: i < old_i + 1e6
    b.bin(BinOp::And, c, c, Operand::Reg(d));
    b.branch(c, body, done);
    b.switch_to(done);
    let acc = b.fresh_reg();
    b.load(acc, base, 0);
    b.ret(Some(Operand::Reg(acc)));
    Program::with_params(
        b.finish().expect("template is well-formed"),
        DataSegment::zeroed(DATA_BASE, trip as usize * spi + 1),
        vec![DATA_BASE as i64],
    )
}

/// Reduction kernel (leela/water-sp/deepsjeng-style).
///
/// An outer epoch loop stores one result per epoch (so the outer loop gets a
/// header region boundary); the inner loop is store-free and boundary-free,
/// accumulating into `accs` registers from loaded data. Eager checkpointing
/// checkpoints every accumulator every inner iteration (their values cross
/// the post-loop boundary); LICM sinks all of them to the inner-loop exit —
/// the paper's Figure-10 win.
pub fn reduction(name: &str, trip: i64, accs: usize, array: usize) -> Program {
    let accs = accs.clamp(1, 3);
    let epochs = 8i64;
    let inner = (trip / epochs).max(4);
    let mut b = FunctionBuilder::new(name);
    let base = b.param();
    let e = b.fresh_reg();
    let i = b.fresh_reg();
    let c = b.fresh_reg();
    let t = b.fresh_reg();
    let v = b.fresh_reg();
    let acc: Vec<Reg> = (0..accs).map(|_| b.fresh_reg()).collect();
    let outer = b.create_block();
    let body = b.create_block();
    let after = b.create_block();
    let done = b.create_block();
    b.mov(e, 0i64);
    for &a in &acc {
        b.mov(a, 0i64);
    }
    b.jump(outer);
    b.switch_to(outer);
    b.mov(i, 0i64);
    b.jump(body);
    b.switch_to(body);
    // Derived addressing (induced IV): no extra loop-carried register.
    b.bin(BinOp::Rem, t, i, array as i64);
    b.shl(t, t, 3i64);
    b.add(t, t, Operand::Reg(base));
    b.load(v, t, 0);
    for (k, &a) in acc.iter().enumerate() {
        match k % 3 {
            0 => b.add(a, a, Operand::Reg(v)),
            1 => b.xor(a, a, Operand::Reg(v)),
            _ => b.bin(BinOp::Sub, a, a, Operand::Reg(v)),
        }
    }
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, inner);
    b.branch(c, body, after);
    b.switch_to(after);
    // Store this epoch's running value: the outer loop carries a store, so
    // its header gets a region boundary that the accumulators cross.
    b.shl(t, e, 3i64);
    b.add(t, t, Operand::Reg(base));
    b.store(acc[0], t, (array as i64) * 8);
    b.add(e, e, 1i64);
    b.cmp(CmpOp::Lt, c, e, epochs);
    b.branch(c, outer, done);
    b.switch_to(done);
    let out = b.fresh_reg();
    b.mov(out, 0i64);
    for &a in &acc {
        b.add(out, out, a);
    }
    b.ret(Some(Operand::Reg(out)));
    let data: Vec<i64> = (0..array as i64)
        .map(|k| k * 13 % 97)
        .chain(std::iter::repeat_n(0, epochs as usize))
        .collect();
    Program::with_params(
        b.finish().expect("template is well-formed"),
        DataSegment::with_words(DATA_BASE, data),
        vec![DATA_BASE as i64],
    )
}

/// Pointer-chasing kernel (mcf/omnetpp/xalan-style).
///
/// Walks a shuffled ring of 16-byte nodes (`[next, value]`), accumulating
/// values; every `store_every` hops it writes the running sum to a scratch
/// cell. The load-use chain makes eager checkpoints stall for the full load
/// latency (the paper's Figure 6), and the large footprint generates cache
/// misses.
pub fn pointer_chase(name: &str, nodes: usize, hops: i64, store_every: i64) -> Program {
    let nodes = nodes.max(4);
    let mut b = FunctionBuilder::new(name);
    let base = b.param();
    let p = b.fresh_reg();
    let acc = b.fresh_reg();
    let i = b.fresh_reg();
    let c = b.fresh_reg();
    let v = b.fresh_reg();
    let t = b.fresh_reg();
    let body = b.create_block();
    let skip = b.create_block();
    let latch = b.create_block();
    let done = b.create_block();
    b.mov(p, Operand::Reg(base));
    b.mov(acc, 0i64);
    b.mov(i, 0i64);
    b.jump(body);
    b.switch_to(body);
    b.load(v, p, 8);
    b.add(acc, acc, Operand::Reg(v));
    b.load(p, p, 0); // chase
    b.bin(BinOp::Rem, t, i, store_every);
    b.cmp(CmpOp::Eq, c, t, 0i64);
    b.branch(c, skip, latch);
    b.switch_to(skip);
    // Scratch cell behind the node array.
    b.store_abs(acc, (DATA_BASE + nodes as u64 * 16) as i64);
    b.jump(latch);
    b.switch_to(latch);
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, hops);
    b.branch(c, body, done);
    b.switch_to(done);
    b.ret(Some(Operand::Reg(acc)));
    // Ring with a deterministic stride permutation (coprime step).
    let step = (nodes / 2) | 1;
    let mut words = vec![0i64; nodes * 2 + 1];
    for k in 0..nodes {
        let next = (k + step) % nodes;
        words[k * 2] = (DATA_BASE + next as u64 * 16) as i64;
        words[k * 2 + 1] = (k as i64 * 31) % 211 - 100;
    }
    Program::with_params(
        b.finish().expect("template is well-formed"),
        DataSegment::with_words(DATA_BASE, words),
        vec![DATA_BASE as i64],
    )
}

/// Stencil kernel (gemsfdtd/lbm/cactubssn-style).
///
/// `out_k[i] = f_k(in[i-1], in[i], in[i+1])` over disjoint input and `outs`
/// output arrays: three loads and `outs` WAR-free stores per iteration, with
/// the value register redefined between stores (the paper's Figure-3 shape:
/// a small SB splits the iteration into several regions, checkpointing the
/// value once per region; a large SB checkpoints it once).
/// `extra_live` pins additional long-lived values across the loop to raise
/// register pressure (the store-aware-RA axis).
pub fn stencil(name: &str, n: i64, extra_live: usize, outs: usize) -> Program {
    let outs = outs.max(1);
    let mut b = FunctionBuilder::new(name);
    let inb = b.param();
    let outb = b.param();
    let live: Vec<Reg> = (0..extra_live).map(|_| b.fresh_reg()).collect();
    let i = b.fresh_reg();
    let c = b.fresh_reg();
    let t = b.fresh_reg();
    let (a0, a1, a2, s) = (b.fresh_reg(), b.fresh_reg(), b.fresh_reg(), b.fresh_reg());
    let q = b.fresh_reg();
    let d = b.fresh_reg();
    let body = b.create_block();
    let done = b.create_block();
    for (k, &r) in live.iter().enumerate() {
        b.mov(r, (k as i64 + 1) * 5);
    }
    b.mov(i, 1i64);
    b.jump(body);
    b.switch_to(body);
    b.add(q, i, 1_000_000i64); // derived guard, prunable checkpoint
    b.shl(t, i, 3i64);
    b.add(t, t, Operand::Reg(inb));
    b.load(a0, t, -8);
    b.load(a1, t, 0);
    b.load(a2, t, 8);
    b.add(s, a0, Operand::Reg(a1));
    b.add(s, s, Operand::Reg(a2));
    b.mul(s, s, 3i64);
    b.bin(BinOp::Sub, s, s, Operand::Reg(a1));
    // Touch the pinned values so they stay live through the loop.
    if let Some(&r0) = live.first() {
        b.add(s, s, Operand::Reg(r0));
    }
    b.shl(t, i, 3i64);
    b.add(t, t, Operand::Reg(outb));
    for k in 0..outs {
        b.add(s, s, (k as i64 + 1) * 7); // redefinition between stores
        b.store(s, t, (k as i64) * (n * 8));
    }
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, n - 1);
    b.cmp(CmpOp::Lt, d, i, Operand::Reg(q));
    b.bin(BinOp::And, c, c, Operand::Reg(d));
    b.branch(c, body, done);
    b.switch_to(done);
    let out = b.fresh_reg();
    b.mov(out, 0i64);
    for &r in &live {
        b.add(out, out, r);
    }
    b.add(out, out, Operand::Reg(s));
    b.ret(Some(Operand::Reg(out)));
    let words: Vec<i64> = (0..n).map(|k| (k * 17) % 103).collect();
    let out_base = DATA_BASE + n as u64 * 8;
    let mut seg = words;
    seg.extend(std::iter::repeat_n(0, n as usize * outs));
    Program::with_params(
        b.finish().expect("template is well-formed"),
        DataSegment::with_words(DATA_BASE, seg),
        vec![DATA_BASE as i64, out_base as i64],
    )
}

/// In-place gap stencil (milc/fotonik3d/ocean-style).
///
/// Loads `a[i-1]` and `a[i+1]`, stores `a[i]` — an address *between* the
/// region's loads that was never itself loaded. The ideal CLQ proves the
/// store WAR-free (exact address match); the compact range-based CLQ sees it
/// inside `[min, max]` and conservatively quarantines it. This is the
/// precision gap of the paper's Figures 14/15.
pub fn gap_stencil(name: &str, n: i64, alu: usize) -> Program {
    let mut b = FunctionBuilder::new(name);
    let base = b.param();
    let i = b.fresh_reg();
    let c = b.fresh_reg();
    let t = b.fresh_reg();
    let (a0, a1, a2) = (b.fresh_reg(), b.fresh_reg(), b.fresh_reg());
    let (s1, s2) = (b.fresh_reg(), b.fresh_reg());
    let body = b.create_block();
    let done = b.create_block();
    b.mov(i, 1i64);
    b.jump(body);
    b.switch_to(body);
    b.shl(t, i, 3i64);
    b.add(t, t, Operand::Reg(base));
    b.load(a0, t, -8);
    b.load(a1, t, 8);
    b.load(a2, t, 24);
    b.add(s1, a0, Operand::Reg(a1));
    b.add(s2, a1, Operand::Reg(a2));
    for k in 0..alu {
        match k % 2 {
            0 => b.add(s1, s1, 5i64),
            _ => b.bin(BinOp::Shr, s2, s2, 1i64),
        }
    }
    // Two independent stores strictly between the loaded addresses: exact
    // matching proves both WAR-free; range checking sees both inside
    // [a[i-1], a[i+3]] and quarantines them, pressuring the 4-entry SB.
    b.store(s1, t, 0);
    b.store(s2, t, 16);
    b.add(i, i, 2i64);
    b.cmp(CmpOp::Lt, c, i, n - 4);
    b.branch(c, body, done);
    b.switch_to(done);
    b.ret(Some(Operand::Reg(s1)));
    let words: Vec<i64> = (0..n).map(|k| (k * 11) % 59).collect();
    Program::with_params(
        b.finish().expect("template is well-formed"),
        DataSegment::with_words(DATA_BASE, words),
        vec![DATA_BASE as i64],
    )
}

/// Read-modify-write table kernel (hmmer/x264/xz-style).
///
/// Increments pseudo-randomly indexed table cells: every store address was
/// just loaded, so *no* store is WAR-free — the worst case for fast release
/// and the separator between the ideal and compact CLQ designs.
pub fn rmw_table(name: &str, trip: i64, table: usize) -> Program {
    let mut b = FunctionBuilder::new(name);
    let base = b.param();
    let i = b.fresh_reg();
    let h = b.fresh_reg();
    let t = b.fresh_reg();
    let v = b.fresh_reg();
    let c = b.fresh_reg();
    let body = b.create_block();
    let done = b.create_block();
    b.mov(i, 0i64);
    b.jump(body);
    b.switch_to(body);
    // h = (i * 2654435761) mod table  (Knuth multiplicative hash).
    b.mul(h, i, 2654435761i64);
    b.bin(BinOp::Shr, h, h, 16i64);
    b.bin(BinOp::Rem, h, h, table as i64);
    b.shl(t, h, 3i64);
    b.add(t, t, Operand::Reg(base));
    b.load(v, t, 0);
    b.add(v, v, 1i64);
    b.store(v, t, 0);
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, trip);
    b.branch(c, body, done);
    b.switch_to(done);
    b.ret(Some(Operand::Reg(v)));
    Program::with_params(
        b.finish().expect("template is well-formed"),
        DataSegment::zeroed(DATA_BASE, table),
        vec![DATA_BASE as i64],
    )
}

/// Histogram + scatter kernel (radix/bzip2-style).
///
/// Pass 1 histograms key digits (read-modify-write counts); pass 2 scatters
/// elements to a fresh output region through a second pointer IV (LIVM and
/// WAR-free both apply to pass 2).
pub fn sort_pass(name: &str, n: usize, buckets: i64) -> Program {
    let mut b = FunctionBuilder::new(name);
    let keys = b.param();
    let hist = b.param();
    let out = b.param();
    let i = b.fresh_reg();
    let k = b.fresh_reg();
    let d = b.fresh_reg();
    let t = b.fresh_reg();
    let v = b.fresh_reg();
    let c = b.fresh_reg();
    let p = b.fresh_reg();
    let l1 = b.create_block();
    let mid = b.create_block();
    let l2 = b.create_block();
    let done = b.create_block();
    b.mov(i, 0i64);
    b.jump(l1);
    b.switch_to(l1);
    b.shl(t, i, 3i64);
    b.add(t, t, Operand::Reg(keys));
    b.load(k, t, 0);
    b.bin(BinOp::And, d, k, buckets - 1);
    b.shl(t, d, 3i64);
    b.add(t, t, Operand::Reg(hist));
    b.load(v, t, 0);
    b.add(v, v, 1i64);
    b.store(v, t, 0);
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, n as i64);
    b.branch(c, l1, mid);
    b.switch_to(mid);
    b.mov(i, 0i64);
    b.mov(p, 0i64); // second basic IV over the output
    b.jump(l2);
    b.switch_to(l2);
    b.shl(t, i, 3i64);
    b.add(t, t, Operand::Reg(keys));
    b.load(k, t, 0);
    b.add(t, p, Operand::Reg(out));
    b.store(k, t, 0);
    b.add(p, p, 8i64);
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, n as i64);
    b.branch(c, l2, done);
    b.switch_to(done);
    b.ret(Some(Operand::Reg(v)));
    let keys_v: Vec<i64> = (0..n as i64).map(|x| (x * 37 + 11) % 251).collect();
    let hist_base = DATA_BASE + n as u64 * 8;
    let out_base = hist_base + buckets as u64 * 8;
    let mut seg = keys_v;
    seg.extend(std::iter::repeat_n(0, buckets as usize + n));
    Program::with_params(
        b.finish().expect("template is well-formed"),
        DataSegment::with_words(DATA_BASE, seg),
        vec![DATA_BASE as i64, hist_base as i64, out_base as i64],
    )
}

/// Branch-heavy kernel (gcc/gobmk/perlbench-style).
///
/// Data-dependent two-way branches select different updates; taken-branch
/// redirects and short regions dominate. A store on one path only.
pub fn branchy(name: &str, trip: i64) -> Program {
    let mut b = FunctionBuilder::new(name);
    let base = b.param();
    let i = b.fresh_reg();
    let v = b.fresh_reg();
    let x = b.fresh_reg();
    let y = b.fresh_reg();
    let t = b.fresh_reg();
    let c = b.fresh_reg();
    let head = b.create_block();
    let odd = b.create_block();
    let even = b.create_block();
    let latch = b.create_block();
    let done = b.create_block();
    b.mov(i, 0i64);
    b.mov(x, 0i64);
    b.mov(y, 0i64);
    b.jump(head);
    b.switch_to(head);
    b.bin(BinOp::Rem, t, i, 64i64);
    b.shl(t, t, 3i64);
    b.add(t, t, Operand::Reg(base));
    b.load(v, t, 0);
    b.bin(BinOp::And, c, v, 1i64);
    b.branch(c, odd, even);
    b.switch_to(odd);
    b.add(x, x, Operand::Reg(v));
    b.store(x, base, 512 * 8);
    b.jump(latch);
    b.switch_to(even);
    b.xor(y, y, Operand::Reg(v));
    b.jump(latch);
    b.switch_to(latch);
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, trip);
    b.branch(c, head, done);
    b.switch_to(done);
    b.add(x, x, Operand::Reg(y));
    b.ret(Some(Operand::Reg(x)));
    let words: Vec<i64> = (0..513).map(|k| (k * 7 + 3) % 29).collect();
    Program::with_params(
        b.finish().expect("template is well-formed"),
        DataSegment::with_words(DATA_BASE, words),
        vec![DATA_BASE as i64],
    )
}

/// Triangular-solve kernel (cholesky/lu/soplex-style).
///
/// Nested loops: the inner loop accumulates a dot product (boundary-free),
/// the outer loop stores one result per row. Mixed LICM + WAR-free shape.
pub fn matrix(name: &str, n: i64) -> Program {
    let mut b = FunctionBuilder::new(name);
    let a = b.param();
    let out = b.param();
    let i = b.fresh_reg();
    let j = b.fresh_reg();
    let s = b.fresh_reg();
    let t = b.fresh_reg();
    let v = b.fresh_reg();
    let c = b.fresh_reg();
    let outer = b.create_block();
    let inner = b.create_block();
    let after = b.create_block();
    let done = b.create_block();
    b.mov(i, 1i64);
    b.jump(outer);
    b.switch_to(outer);
    b.mov(j, 0i64);
    b.mov(s, 0i64);
    b.jump(inner);
    b.switch_to(inner);
    b.shl(t, j, 3i64);
    b.add(t, t, Operand::Reg(a));
    b.load(v, t, 0);
    b.mul(v, v, 3i64);
    b.add(s, s, Operand::Reg(v));
    b.add(j, j, 1i64);
    b.cmp(CmpOp::Lt, c, j, i);
    b.branch(c, inner, after);
    b.switch_to(after);
    b.shl(t, i, 3i64);
    b.add(t, t, Operand::Reg(out));
    b.store(s, t, 0);
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, n);
    b.branch(c, outer, done);
    b.switch_to(done);
    b.ret(Some(Operand::Reg(s)));
    let words: Vec<i64> = (0..n).map(|k| (k % 7) - 3).collect();
    let out_base = DATA_BASE + n as u64 * 8;
    let mut seg = words;
    seg.extend(std::iter::repeat_n(0, n as usize));
    Program::with_params(
        b.finish().expect("template is well-formed"),
        DataSegment::with_words(DATA_BASE, seg),
        vec![DATA_BASE as i64, out_base as i64],
    )
}

/// Butterfly kernel (fft-style).
///
/// Pairs `(a[i], a[i+half])` are combined and written back in place over
/// several passes: each store address was loaded in the same region (WAR),
/// so fast release is mostly defeated despite the streaming access pattern.
pub fn butterfly(name: &str, n: usize, passes: i64) -> Program {
    let half = (n / 2).max(1) as i64;
    let mut b = FunctionBuilder::new(name);
    let base = b.param();
    let pass = b.fresh_reg();
    let i = b.fresh_reg();
    let t = b.fresh_reg();
    let lo = b.fresh_reg();
    let hi = b.fresh_reg();
    let su = b.fresh_reg();
    let df = b.fresh_reg();
    let c = b.fresh_reg();
    let pouter = b.create_block();
    let body = b.create_block();
    let between = b.create_block();
    let done = b.create_block();
    b.mov(pass, 0i64);
    b.mov(su, 0i64);
    b.jump(pouter);
    b.switch_to(pouter);
    b.mov(i, 0i64);
    b.jump(body);
    b.switch_to(body);
    b.shl(t, i, 3i64);
    b.add(t, t, Operand::Reg(base));
    b.load(lo, t, 0);
    b.load(hi, t, half * 8);
    b.add(su, lo, Operand::Reg(hi));
    b.bin(BinOp::Sub, df, lo, Operand::Reg(hi));
    b.store(su, t, 0);
    b.store(df, t, half * 8);
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, half);
    b.branch(c, body, between);
    b.switch_to(between);
    b.add(pass, pass, 1i64);
    b.cmp(CmpOp::Lt, c, pass, passes);
    b.branch(c, pouter, done);
    b.switch_to(done);
    b.ret(Some(Operand::Reg(su)));
    let words: Vec<i64> = (0..n as i64).map(|k| k % 17 - 8).collect();
    Program::with_params(
        b.finish().expect("template is well-formed"),
        DataSegment::with_words(DATA_BASE, words),
        vec![DATA_BASE as i64],
    )
}

/// High-register-pressure kernel (gemsfdtd/lbm RA-trick targets).
///
/// A hot loop updates `hot` write-intensive accumulators while `cold`
/// read-only coefficients stay live across it. With more live values than
/// registers, a read/write-blind allocator spills the *written* ones —
/// exactly what store-aware allocation avoids.
pub fn high_pressure(name: &str, trip: i64, hot: usize, cold: usize) -> Program {
    let mut b = FunctionBuilder::new(name);
    let base = b.param();
    let cold_regs: Vec<Reg> = (0..cold).map(|_| b.fresh_reg()).collect();
    let hot_regs: Vec<Reg> = (0..hot).map(|_| b.fresh_reg()).collect();
    let i = b.fresh_reg();
    let c = b.fresh_reg();
    let t = b.fresh_reg();
    let v = b.fresh_reg();
    let body = b.create_block();
    let done = b.create_block();
    for (k, &r) in cold_regs.iter().enumerate() {
        b.mov(r, (k as i64 * 11) % 23 + 1);
    }
    for &r in &hot_regs {
        b.mov(r, 0i64);
    }
    b.mov(i, 0i64);
    b.jump(body);
    b.switch_to(body);
    b.bin(BinOp::And, t, i, 63i64);
    b.shl(t, t, 3i64);
    b.add(t, t, Operand::Reg(base));
    b.load(v, t, 0);
    for (k, &h) in hot_regs.iter().enumerate() {
        let coeff = cold_regs[k % cold_regs.len().max(1)];
        let tmp = v;
        b.mul(tmp, v, Operand::Reg(coeff));
        b.add(h, h, Operand::Reg(tmp));
    }
    // One streaming store per iteration keeps the SB in play.
    b.bin(BinOp::And, t, i, 127i64);
    b.shl(t, t, 3i64);
    b.add(t, t, Operand::Reg(base));
    b.store(hot_regs[0], t, 64 * 8);
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, trip);
    b.branch(c, body, done);
    b.switch_to(done);
    let out = b.fresh_reg();
    b.mov(out, 0i64);
    for &h in &hot_regs {
        b.add(out, out, h);
    }
    for &r in &cold_regs {
        b.add(out, out, r);
    }
    b.ret(Some(Operand::Reg(out)));
    let words: Vec<i64> = (0..192).map(|k| (k * 5) % 19 + 1).collect();
    Program::with_params(
        b.finish().expect("template is well-formed"),
        DataSegment::with_words(DATA_BASE, words),
        vec![DATA_BASE as i64],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::interp;

    fn runs(p: &Program) -> i64 {
        let out = interp::run(p, &interp::InterpConfig::default()).expect("terminates");
        out.ret.expect("returns a value")
    }

    #[test]
    fn streaming_terminates_and_stores() {
        let p = streaming("s", 50, 2, 4);
        let out = interp::run(&p, &interp::InterpConfig::default()).unwrap();
        assert_eq!(out.dyn_stores, 100);
    }

    #[test]
    fn reduction_is_storeless_in_loop() {
        let p = reduction("r", 64, 3, 32);
        let out = interp::run(&p, &interp::InterpConfig::default()).unwrap();
        assert_eq!(out.dyn_stores, 8); // one per epoch
        assert!(out.dyn_loads >= 64);
    }

    #[test]
    fn pointer_chase_visits_ring() {
        let p = pointer_chase("p", 64, 200, 7);
        let v = runs(&p);
        let q = pointer_chase("p", 64, 200, 7);
        assert_eq!(runs(&q), v, "deterministic");
    }

    #[test]
    fn stencil_writes_disjoint_output() {
        let p = stencil("st", 64, 4, 2);
        let out = interp::run(&p, &interp::InterpConfig::default()).unwrap();
        assert_eq!(out.dyn_stores, 124);
    }

    #[test]
    fn rmw_counts_sum_to_trip() {
        let p = rmw_table("h", 100, 16);
        let out = interp::run(&p, &interp::InterpConfig::default()).unwrap();
        let total: i64 = out
            .memory
            .iter()
            .filter(|(a, _)| **a < DATA_BASE + 16 * 8)
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn sort_pass_histogram_is_complete() {
        let p = sort_pass("sp", 64, 8);
        let out = interp::run(&p, &interp::InterpConfig::default()).unwrap();
        let hist_base = DATA_BASE + 64 * 8;
        let total: i64 = (0..8)
            .map(|k| out.memory.get(&(hist_base + k * 8)).copied().unwrap_or(0))
            .sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn branchy_and_matrix_terminate() {
        let _ = runs(&branchy("b", 100));
        let _ = runs(&matrix("m", 20));
    }

    #[test]
    fn high_pressure_spills_under_allocation() {
        let p = high_pressure("hp", 50, 8, 24);
        let golden = runs(&p);
        // Compiling with the real pipeline must preserve the value.
        let out =
            turnpike_compiler::compile(&p, &turnpike_compiler::CompilerConfig::baseline()).unwrap();
        let m = turnpike_isa::interp::run(&out.program, &Default::default()).unwrap();
        assert_eq!(m.ret, Some(golden));
    }
}
