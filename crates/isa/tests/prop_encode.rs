//! Property tests: every encodable machine instruction round-trips through
//! the binary encoding.

use proptest::prelude::*;
use turnpike_isa::{
    decode_program, encode_program, BinOp, CmpOp, MOperand, MachAddr, MachInst, PhysReg, RegionId,
};

fn reg() -> impl Strategy<Value = PhysReg> {
    (0u8..32).prop_map(|i| PhysReg::new(i).expect("in range"))
}

fn moperand() -> impl Strategy<Value = MOperand> {
    prop_oneof![
        reg().prop_map(MOperand::Reg),
        (-1_000_000i64..1_000_000).prop_map(MOperand::Imm),
    ]
}

fn small_imm() -> impl Strategy<Value = MOperand> {
    prop_oneof![
        reg().prop_map(MOperand::Reg),
        (-128i64..128).prop_map(MOperand::Imm),
    ]
}

fn addr() -> impl Strategy<Value = MachAddr> {
    prop_oneof![
        (reg(), -10_000i64..10_000).prop_map(|(r, o)| MachAddr::RegOffset(r, o)),
        (0u64..0x7fff_fff8).prop_map(|a| MachAddr::Abs(a & !7)),
    ]
}

fn binop() -> impl Strategy<Value = BinOp> {
    prop::sample::select(BinOp::ALL.to_vec())
}

fn cmpop() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(CmpOp::ALL.to_vec())
}

fn inst() -> impl Strategy<Value = MachInst> {
    prop_oneof![
        (binop(), reg(), reg(), moperand()).prop_map(|(op, dst, lhs, rhs)| MachInst::Bin {
            op,
            dst,
            lhs,
            rhs
        }),
        (cmpop(), reg(), reg(), moperand()).prop_map(|(op, dst, lhs, rhs)| MachInst::Cmp {
            op,
            dst,
            lhs,
            rhs
        }),
        (reg(), moperand()).prop_map(|(dst, src)| MachInst::Mov { dst, src }),
        (reg(), addr()).prop_map(|(dst, addr)| MachInst::Load { dst, addr }),
        (reg(), reg()).prop_map(|(dst, s)| MachInst::Load {
            dst,
            addr: MachAddr::CkptSlot(s)
        }),
        (small_imm(), addr()).prop_map(|(src, addr)| MachInst::Store { src, addr }),
        reg().prop_map(|r| MachInst::Ckpt { reg: r }),
        (0u32..10_000).prop_map(|id| MachInst::RegionBoundary { id: RegionId(id) }),
        (0u32..100_000).prop_map(|target| MachInst::Jump { target }),
        (reg(), 0u32..100_000).prop_map(|(cond, target)| MachInst::BranchNz { cond, target }),
        prop_oneof![Just(None), moperand().prop_map(Some),]
            .prop_map(|value| MachInst::Ret { value }),
        Just(MachInst::Nop),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trips(insts in prop::collection::vec(inst(), 0..80)) {
        let bytes = encode_program(&insts).expect("all generated forms encode");
        prop_assert_eq!(bytes.len(), insts.len() * 8);
        let back = decode_program(&bytes).expect("decodes");
        prop_assert_eq!(back, insts);
    }

    /// Decoding never panics on arbitrary byte soup (errors are fine).
    #[test]
    fn decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_program(&bytes);
    }
}
