//! Ergonomic function construction.

use crate::block::{BasicBlock, BlockId, Terminator};
use crate::function::Function;
use crate::inst::{Addr, BinOp, CmpOp, Inst};
use crate::reg::{Operand, Reg};
use crate::verify::{verify_function, VerifyError};

/// Incremental builder for a [`Function`].
///
/// Blocks created with [`create_block`](Self::create_block) start without a
/// terminator; emitting a `jump`/`branch`/`ret` seals the current block.
/// [`finish`](Self::finish) runs the verifier so malformed functions are
/// rejected at construction time.
///
/// See the crate-level docs for a complete example.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    blocks: Vec<Option<BasicBlock>>,
    pending: Vec<Vec<Inst>>,
    current: BlockId,
    next_reg: u32,
    params: Vec<Reg>,
}

impl FunctionBuilder {
    /// Start building a function; an entry block is created and selected.
    pub fn new(name: &str) -> Self {
        FunctionBuilder {
            name: name.to_string(),
            blocks: vec![None],
            pending: vec![Vec::new()],
            current: BlockId(0),
            next_reg: 0,
            params: Vec::new(),
        }
    }

    /// Allocate a fresh virtual register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Declare a register as a program input (live-in at entry).
    pub fn param(&mut self) -> Reg {
        let r = self.fresh_reg();
        self.params.push(r);
        r
    }

    /// Create a new, empty, unterminated block.
    pub fn create_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(None);
        self.pending.push(Vec::new());
        id
    }

    /// Select the block that subsequent instructions are appended to.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(
            self.blocks[b.index()].is_none(),
            "block {b} is already terminated"
        );
        self.current = b;
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Append a raw instruction.
    pub fn inst(&mut self, i: Inst) {
        self.pending[self.current.index()].push(i);
    }

    /// `dst = lhs op rhs`.
    pub fn bin(&mut self, op: BinOp, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.inst(Inst::Bin {
            op,
            dst,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
    }

    /// `dst = lhs + rhs`.
    pub fn add(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(BinOp::Add, dst, lhs, rhs);
    }

    /// `dst = lhs - rhs`.
    pub fn sub(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(BinOp::Sub, dst, lhs, rhs);
    }

    /// `dst = lhs * rhs`.
    pub fn mul(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(BinOp::Mul, dst, lhs, rhs);
    }

    /// `dst = lhs ^ rhs`.
    pub fn xor(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(BinOp::Xor, dst, lhs, rhs);
    }

    /// `dst = lhs << rhs`.
    pub fn shl(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(BinOp::Shl, dst, lhs, rhs);
    }

    /// `dst = (lhs op rhs) ? 1 : 0`.
    pub fn cmp(&mut self, op: CmpOp, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.inst(Inst::Cmp {
            op,
            dst,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
    }

    /// `dst = (lhs < rhs) ? 1 : 0`.
    pub fn cmp_lt(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.cmp(CmpOp::Lt, dst, lhs, rhs);
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.inst(Inst::Mov {
            dst,
            src: src.into(),
        });
    }

    /// `dst = memory[base + offset]`.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64) {
        self.inst(Inst::Load {
            dst,
            addr: Addr::reg_offset(base, offset),
        });
    }

    /// `dst = memory[abs]`.
    pub fn load_abs(&mut self, dst: Reg, abs: i64) {
        self.inst(Inst::Load {
            dst,
            addr: Addr::abs(abs),
        });
    }

    /// `memory[base + offset] = src`.
    pub fn store(&mut self, src: impl Into<Operand>, base: Reg, offset: i64) {
        self.inst(Inst::Store {
            src: src.into(),
            addr: Addr::reg_offset(base, offset),
        });
    }

    /// `memory[abs] = src`.
    pub fn store_abs(&mut self, src: impl Into<Operand>, abs: i64) {
        self.inst(Inst::Store {
            src: src.into(),
            addr: Addr::abs(abs),
        });
    }

    /// Terminate the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.seal(Terminator::Jump(target));
    }

    /// Terminate the current block with a conditional branch.
    pub fn branch(&mut self, cond: Reg, then_bb: BlockId, else_bb: BlockId) {
        self.seal(Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Terminate the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.seal(Terminator::Ret { value });
    }

    fn seal(&mut self, term: Terminator) {
        let idx = self.current.index();
        assert!(
            self.blocks[idx].is_none(),
            "block {} terminated twice",
            self.current
        );
        let insts = std::mem::take(&mut self.pending[idx]);
        self.blocks[idx] = Some(BasicBlock { insts, term });
    }

    /// Finish and verify the function.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] if any block is unterminated, a branch
    /// target is out of range, or a register index is out of range.
    pub fn finish(self) -> Result<Function, VerifyError> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, b) in self.blocks.into_iter().enumerate() {
            match b {
                Some(b) => blocks.push(b),
                None => return Err(VerifyError::UnterminatedBlock(BlockId(i as u32))),
            }
        }
        let f = Function {
            name: self.name,
            blocks,
            entry: BlockId(0),
            num_regs: self.next_reg,
            params: self.params,
        };
        verify_function(&f)?;
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_loop() {
        let mut b = FunctionBuilder::new("f");
        let i = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(i, 0i64);
        b.jump(body);
        b.switch_to(body);
        b.add(i, i, 1i64);
        let c = b.fresh_reg();
        b.cmp_lt(c, i, 4i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(i)));
        let f = b.finish().unwrap();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.num_regs, 2);
    }

    #[test]
    fn unterminated_block_is_rejected() {
        let mut b = FunctionBuilder::new("g");
        let dangling = b.create_block();
        b.ret(None);
        let _ = dangling;
        let err = b.finish().unwrap_err();
        assert!(matches!(err, VerifyError::UnterminatedBlock(_)));
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_termination_panics() {
        let mut b = FunctionBuilder::new("h");
        b.ret(None);
        b.ret(None);
    }

    #[test]
    fn params_are_recorded() {
        let mut b = FunctionBuilder::new("p");
        let p0 = b.param();
        let p1 = b.param();
        b.ret(Some(Operand::Reg(p0)));
        let f = b.finish().unwrap();
        assert_eq!(f.params, vec![p0, p1]);
    }

    #[test]
    fn store_load_helpers() {
        let mut b = FunctionBuilder::new("m");
        let base = b.param();
        let v = b.fresh_reg();
        b.store(7i64, base, 8);
        b.load(v, base, 8);
        b.store_abs(v, 0x2000);
        b.load_abs(v, 0x2000);
        b.ret(None);
        let f = b.finish().unwrap();
        assert_eq!(f.store_count(), 2);
    }
}
