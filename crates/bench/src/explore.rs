//! The design-space explorer's execution driver.
//!
//! `turnpike_explore` owns the pure domain (grid enumeration, pricing,
//! epsilon-dominance filtering); this module owns *execution*: every grid
//! point becomes ordinary [`JobRequest`]s — fault-free runs for the
//! overhead objective, campaign shards for the coverage objective — and
//! those jobs flow through the exact same path as everything else in the
//! repo: the [`EngineExecutor`] (direct mode) or a `turnpike-serve` worker
//! fleet (`--workers`), both backed by the memoizing engine and the
//! content-addressed artifact store. One consequence is `--resume` for
//! free: a re-run re-issues the same jobs, and every job whose artifact is
//! already stored is a store hit instead of a simulation.
//!
//! The search is staged:
//!
//! 1. **Screen** — every canonical point is evaluated at smoke scale
//!    (cheap runs for overhead, a small fixed-size campaign for coverage)
//!    and the set is pruned with staged epsilon dominance
//!    ([`staged_eps_prune`]).
//! 2. **Promote** — survivors are re-evaluated at the requested scale over
//!    the full kernel list, with the campaign cells extended in
//!    [`STOP_CHUNK`]-run shard rounds until the Wilson 95% CI on the SDC
//!    rate is narrower than the target (or the run cap is reached) — the
//!    same client-side sequential stopping the telemetry harness uses.
//! 3. **Frontier** — an exact Pareto pass over the promoted objectives
//!    flags the frontier. The pruning stages use *epsilon* dominance
//!    (strictly stronger than plain dominance, so no exact-Pareto point
//!    is ever screened out — the explore crate's property test); the
//!    final pass uses plain dominance so ties on a saturated axis (many
//!    points reach SDC 0) don't inflate the frontier.
//!
//! Determinism: batches are issued in a deterministic order (BTreeMap on
//! the request's wire line, or explicit survivor order), results land by
//! index, every payload is rendered by the shared renderers, and the
//! stopping rule reads only merged campaign counts — so the same grid and
//! seed produce a byte-identical frontier at any thread or worker count.

use std::collections::BTreeMap;

use turnpike_explore::{
    area_unit, clq_name, enumerate, exact_pareto_mask, staged_eps_prune, DesignPoint, Objectives,
    DEFAULT_EPSILON,
};
use turnpike_metrics::RateEstimator;
use turnpike_model::CostModel;
use turnpike_resilience::{geomean, par_map, CacheGeom, ExploreAxes, EXPLORE_AXES, STOP_CHUNK};
use turnpike_serve::{Client, JobKind, JobRequest, Json, Outcome, StoreStatus};
use turnpike_workloads::Scale;

use crate::service::{CampaignTotals, EngineExecutor};

/// Chunk size of the screening stage's staged pruner. Any value gives the
/// same survivor set (chunked-then-final filtering is equivalent to the
/// one-shot filter — see the pruner's property test); the constant only
/// shapes intermediate work.
const SCREEN_PRUNE_CHUNK: usize = 64;

/// How a batch of explore jobs executes.
pub enum JobRunner {
    /// In-process: jobs fan out over `threads` via [`par_map`], each
    /// executing on the shared (serial-engine) executor. Campaign cells
    /// are whole jobs here, so batch-level parallelism replaces
    /// campaign-internal parallelism.
    Direct {
        /// The executor (attach a store for `--resume`).
        exec: EngineExecutor,
        /// Batch-level thread budget.
        threads: usize,
    },
    /// Dispatch to a `turnpike-serve` worker fleet, round-robin by job
    /// index. Each worker gets one connection per batch and executes its
    /// share sequentially; results land by index, so the assignment (and
    /// the output) is independent of worker timing.
    Fleet {
        /// Worker addresses.
        workers: Vec<String>,
    },
}

impl JobRunner {
    /// Execute one batch, returning `(payload, store_hit)` per request in
    /// input order.
    fn execute(&self, reqs: &[JobRequest]) -> Result<Vec<(String, bool)>, String> {
        match self {
            JobRunner::Direct { exec, threads } => {
                let outs = par_map(reqs, *threads, |_, req| {
                    exec.execute_direct(req)
                        .map(|o| (o.result, o.store == StoreStatus::Hit))
                });
                outs.into_iter().collect()
            }
            JobRunner::Fleet { workers } => {
                let w = workers.len();
                if w == 0 {
                    return Err("no workers configured".to_string());
                }
                let ids: Vec<usize> = (0..w).collect();
                let shares = par_map(&ids, w, |_, &wi| -> Vec<(usize, Result<_, String>)> {
                    let mut client = match Client::connect(workers[wi].as_str()) {
                        Ok(c) => c,
                        Err(e) => {
                            return (wi..reqs.len())
                                .step_by(w)
                                .map(|i| (i, Err(format!("connect {}: {e}", workers[wi]))))
                                .collect()
                        }
                    };
                    (wi..reqs.len())
                        .step_by(w)
                        .map(|i| (i, submit_retrying(&mut client, &reqs[i])))
                        .collect()
                });
                let mut out: Vec<Option<(String, bool)>> = vec![None; reqs.len()];
                for (i, r) in shares.into_iter().flatten() {
                    out[i] = Some(r?);
                }
                Ok(out
                    .into_iter()
                    .map(|o| o.expect("every index assigned"))
                    .collect())
            }
        }
    }

    /// The in-process executor, if this is a direct runner (tests peek at
    /// its engine counters).
    pub fn executor(&self) -> Option<&EngineExecutor> {
        match self {
            JobRunner::Direct { exec, .. } => Some(exec),
            JobRunner::Fleet { .. } => None,
        }
    }
}

/// Submit one job, absorbing transient `overloaded` rejections with the
/// server's suggested backoff (bounded, so a wedged server still errors
/// out instead of hanging the sweep).
fn submit_retrying(client: &mut Client, req: &JobRequest) -> Result<(String, bool), String> {
    for _ in 0..100 {
        match client.submit(req).map_err(|e| e.to_string())? {
            Outcome::Done { store, result, .. } => return Ok((result, store == "hit")),
            Outcome::Overloaded { retry_after_ms } => {
                std::thread::sleep(std::time::Duration::from_millis(
                    retry_after_ms.clamp(1, 500),
                ));
            }
            Outcome::ShuttingDown => return Err("worker is shutting down".to_string()),
            Outcome::Error { message, .. } => return Err(message),
        }
    }
    Err("worker overloaded beyond retry budget".to_string())
}

/// Everything that parameterizes one exploration. The default grids live
/// in `resilience::preset` ([`EXPLORE_AXES`]); tests swap in tiny axes.
pub struct ExploreConfig {
    /// The declarative grid.
    pub axes: ExploreAxes,
    /// Scale of the promote stage (screening always runs at smoke scale).
    pub scale: Scale,
    /// Kernels for the screening stage's overhead objective.
    pub screen_kernels: Vec<String>,
    /// Kernels for the promoted overhead objective (geomean).
    pub kernels: Vec<String>,
    /// The kernel carrying the coverage (fault-campaign) objective.
    pub campaign_kernel: String,
    /// Campaign RNG seed (part of the frontier's identity).
    pub seed: u64,
    /// Dominance epsilon (see `turnpike_explore::pareto`).
    pub epsilon: f64,
    /// Campaign runs per point in the screening stage.
    pub screen_runs: u64,
    /// Promote stage: stop a point's campaign once the Wilson 95% CI
    /// half-width on its SDC rate drops to this.
    pub ci_half_width: f64,
    /// Promote stage: hard cap on campaign runs per point.
    pub ci_cap: u64,
}

impl ExploreConfig {
    /// Smoke-scale exploration: the CI configuration. Small fixed
    /// screening campaigns, a loose CI target, and a low cap keep the
    /// whole sweep minutes-scale while still exercising every stage.
    pub fn smoke() -> ExploreConfig {
        ExploreConfig {
            axes: EXPLORE_AXES,
            scale: Scale::Smoke,
            screen_kernels: vec!["bwaves".into(), "mcf".into()],
            kernels: vec!["bwaves".into(), "hmmer".into(), "mcf".into(), "gcc".into()],
            campaign_kernel: "bwaves".into(),
            seed: 0xF00D,
            epsilon: DEFAULT_EPSILON,
            screen_runs: 8,
            ci_half_width: 0.15,
            ci_cap: 32,
        }
    }

    /// The promote-stage scale's CLI name (`"smoke"`/`"full"`).
    pub fn scale_label(&self) -> &'static str {
        scale_name(self.scale)
    }

    /// Full-scale exploration: same grid, full-scale promote stage with a
    /// tight CI target.
    pub fn full() -> ExploreConfig {
        ExploreConfig {
            scale: Scale::Full,
            screen_runs: 16,
            ci_half_width: 0.05,
            ci_cap: 96,
            ..ExploreConfig::smoke()
        }
    }
}

/// One promoted point's final evaluation.
#[derive(Debug, Clone)]
pub struct Promoted {
    /// Final objectives (promote-scale overhead, area, SDC rate).
    pub objectives: Objectives,
    /// SDC count over the point's campaign runs.
    pub sdc: u64,
    /// Campaign runs executed (the sequential-stopping total).
    pub runs: u64,
    /// On the final Pareto frontier?
    pub frontier: bool,
}

/// One canonical grid point's evaluation across the stages.
#[derive(Debug, Clone)]
pub struct PointEval {
    /// The design point.
    pub point: DesignPoint,
    /// Added-hardware area (µm²) from the cost model.
    pub area_um2: f64,
    /// Added-hardware access energy (pJ) from the cost model.
    pub energy_pj: f64,
    /// Screening-stage objectives (smoke overhead, area, smoke SDC rate).
    pub screen: Objectives,
    /// Promote-stage results; `None` for screened-out points.
    pub promoted: Option<Promoted>,
}

/// Stage-by-stage accounting, reported in the `"explore"` block: the
/// pruning evidence (canonical < raw, promoted < canonical) and the job
/// traffic (store hits are what `--resume` skips).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreCounts {
    /// Raw cartesian-product size of the grid.
    pub raw: usize,
    /// Canonical points after collapsing no-effect axis values.
    pub canonical: usize,
    /// Points promoted past the screening prune.
    pub promoted: usize,
    /// Points on the final frontier.
    pub frontier: usize,
    /// Jobs issued (all stages, after batch-level dedup).
    pub jobs: usize,
    /// Jobs served from the artifact store.
    pub store_hits: usize,
    /// Promote-stage campaign runs executed across all points.
    pub campaign_runs: u64,
}

/// The exploration's complete result.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Per-point evaluations, in canonical enumeration order.
    pub points: Vec<PointEval>,
    /// Stage accounting.
    pub counts: ExploreCounts,
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Full => "full",
    }
}

/// The job evaluating `point` on `kernel` (run or campaign kind).
fn point_job(kind: JobKind, point: &DesignPoint, kernel: &str, scale: Scale) -> JobRequest {
    let mut req = JobRequest::new(kind);
    req.kernel = kernel.to_string();
    req.scheme = point.scheme.cli_name().to_string();
    req.scale = scale_name(scale).to_string();
    req.sb = point.sb_size;
    req.wcdl = point.wcdl;
    if let Some(clq) = point.clq {
        req.clq = clq_name(clq);
    }
    if let Some(colors) = point.colors {
        req.colors = u64::from(colors);
    }
    req.geom = point.geom.name.to_string();
    req
}

/// The unprotected-baseline run normalizing `point`'s overhead: same SB
/// size and cache geometry, baseline scheme. WCDL/CLQ/colors stay at
/// defaults (the baseline core has none of that hardware), so all points
/// sharing `(sb, geom)` share one baseline job.
fn baseline_job(sb: u32, geom: &CacheGeom, kernel: &str, scale: Scale) -> JobRequest {
    let mut req = JobRequest::new(JobKind::Run);
    req.kernel = kernel.to_string();
    req.scheme = "baseline".to_string();
    req.scale = scale_name(scale).to_string();
    req.sb = sb;
    req.geom = geom.name.to_string();
    req
}

/// A dedup'd job batch: requests keyed (and later executed) in wire-line
/// order, so execution order is a pure function of the request set.
#[derive(Default)]
struct Batch {
    reqs: BTreeMap<String, JobRequest>,
}

impl Batch {
    fn add(&mut self, req: JobRequest) {
        self.reqs.insert(req.to_line(), req);
    }

    /// Execute the batch; returns payload + store-hit keyed by wire line.
    fn execute(
        self,
        runner: &JobRunner,
        counts: &mut ExploreCounts,
    ) -> Result<BTreeMap<String, (String, bool)>, String> {
        let (lines, reqs): (Vec<String>, Vec<JobRequest>) = self.reqs.into_iter().unzip();
        counts.jobs += reqs.len();
        let outs = runner.execute(&reqs)?;
        counts.store_hits += outs.iter().filter(|(_, hit)| *hit).count();
        Ok(lines.into_iter().zip(outs).collect())
    }
}

/// Cycle count of a rendered run payload.
fn cycles_of(payload: &str) -> Result<u64, String> {
    Json::parse(payload)
        .map_err(|e| e.to_string())?
        .get("stats")
        .and_then(|s| s.get("cycles"))
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("run payload without stats.cycles: {payload}"))
}

/// Geomean overhead of `point` over `kernels`, from a batch's payloads.
fn overhead_of(
    point: &DesignPoint,
    kernels: &[String],
    scale: Scale,
    payloads: &BTreeMap<String, (String, bool)>,
) -> Result<f64, String> {
    let mut ratios = Vec::with_capacity(kernels.len());
    for kernel in kernels {
        let run = point_job(JobKind::Run, point, kernel, scale).to_line();
        let base = baseline_job(point.sb_size, &point.geom, kernel, scale).to_line();
        let run_cycles = cycles_of(&payloads[&run].0)?;
        let base_cycles = cycles_of(&payloads[&base].0)?;
        ratios.push(run_cycles as f64 / base_cycles as f64);
    }
    Ok(geomean(&ratios))
}

/// Run the staged exploration. `log` receives one line per stage event
/// (grid size, pruning counts, campaign rounds, store traffic) — the
/// driver never truncates silently.
///
/// # Errors
///
/// The first job failure (invalid request, simulation error, unreachable
/// worker) aborts the sweep with a human-readable message.
pub fn run_explore(
    runner: &JobRunner,
    cfg: &ExploreConfig,
    log: &mut dyn FnMut(String),
) -> Result<ExploreReport, String> {
    let grid = enumerate(&cfg.axes);
    let mut counts = ExploreCounts {
        raw: grid.raw,
        canonical: grid.points.len(),
        ..ExploreCounts::default()
    };
    log(format!(
        "grid: {} raw combinations -> {} canonical points ({} no-effect combinations collapsed)",
        counts.raw,
        counts.canonical,
        counts.raw - counts.canonical
    ));
    let model = CostModel::calibrated();
    let unit = area_unit();

    // --- Stage 1: screen every canonical point at smoke scale. ---
    let mut batch = Batch::default();
    for point in &grid.points {
        for kernel in &cfg.screen_kernels {
            batch.add(point_job(JobKind::Run, point, kernel, Scale::Smoke));
            batch.add(baseline_job(
                point.sb_size,
                &point.geom,
                kernel,
                Scale::Smoke,
            ));
        }
        let mut campaign = point_job(JobKind::Campaign, point, &cfg.campaign_kernel, Scale::Smoke);
        campaign.runs = cfg.screen_runs;
        campaign.seed = cfg.seed;
        batch.add(campaign);
    }
    let before = counts.store_hits;
    let payloads = batch.execute(runner, &mut counts)?;
    log(format!(
        "screen: {} jobs ({} from store)",
        payloads.len(),
        counts.store_hits - before
    ));

    let mut evals: Vec<PointEval> = Vec::with_capacity(grid.points.len());
    for point in &grid.points {
        let price = point.price(&model);
        let mut campaign = point_job(JobKind::Campaign, point, &cfg.campaign_kernel, Scale::Smoke);
        campaign.runs = cfg.screen_runs;
        campaign.seed = cfg.seed;
        let totals = CampaignTotals::from_payload(&payloads[&campaign.to_line()].0)
            .ok_or_else(|| "unparsable campaign payload".to_string())?;
        evals.push(PointEval {
            point: *point,
            area_um2: price.area_um2,
            energy_pj: price.energy_pj,
            screen: Objectives {
                overhead: overhead_of(point, &cfg.screen_kernels, Scale::Smoke, &payloads)?,
                area: price.area_um2 / unit,
                sdc: totals.sdc as f64 / totals.runs.max(1) as f64,
            },
            promoted: None,
        });
    }

    // --- Stage 2: epsilon-dominance prune, then promote the survivors. ---
    let screen_objs: Vec<Objectives> = evals.iter().map(|e| e.screen).collect();
    let survivors = staged_eps_prune(&screen_objs, SCREEN_PRUNE_CHUNK, cfg.epsilon);
    counts.promoted = survivors.len();
    log(format!(
        "screen prune: {} of {} points dominated (eps={}), promoting {} to {} scale",
        counts.canonical - counts.promoted,
        counts.canonical,
        cfg.epsilon,
        counts.promoted,
        scale_name(cfg.scale)
    ));

    // Promote-stage overhead runs (full kernel list, requested scale).
    let mut batch = Batch::default();
    for &i in &survivors {
        let point = &evals[i].point;
        for kernel in &cfg.kernels {
            batch.add(point_job(JobKind::Run, point, kernel, cfg.scale));
            batch.add(baseline_job(point.sb_size, &point.geom, kernel, cfg.scale));
        }
    }
    let before = counts.store_hits;
    let payloads = batch.execute(runner, &mut counts)?;
    log(format!(
        "promote runs: {} jobs ({} from store)",
        payloads.len(),
        counts.store_hits - before
    ));

    // Promote-stage campaigns: STOP_CHUNK-run shard rounds with Wilson
    // CI-width sequential stopping, merged client-side exactly like the
    // distributed coordinator merges a fleet's shards.
    let mut totals: BTreeMap<usize, CampaignTotals> = BTreeMap::new();
    let mut active: Vec<usize> = survivors.clone();
    let chunk = STOP_CHUNK as u64;
    let mut round = 0u64;
    while !active.is_empty() {
        let reqs: Vec<JobRequest> = active
            .iter()
            .map(|&i| {
                let mut req = point_job(
                    JobKind::Campaign,
                    &evals[i].point,
                    &cfg.campaign_kernel,
                    cfg.scale,
                );
                req.runs = chunk.min(cfg.ci_cap.saturating_sub(round * chunk)).max(1);
                req.run_offset = round * chunk;
                req.seed = cfg.seed;
                req
            })
            .collect();
        let shards = runner.execute(&reqs)?;
        counts.jobs += reqs.len();
        counts.store_hits += shards.iter().filter(|(_, hit)| *hit).count();
        let mut stopped = 0usize;
        let mut next_active = Vec::with_capacity(active.len());
        for (&i, (payload, _)) in active.iter().zip(&shards) {
            let shard = CampaignTotals::from_payload(payload)
                .ok_or_else(|| "unparsable campaign shard payload".to_string())?;
            let t = totals.entry(i).or_default();
            t.absorb(&shard);
            let half_width = RateEstimator::from_counts(t.sdc, t.runs).half_width();
            if half_width <= cfg.ci_half_width || t.runs >= cfg.ci_cap {
                stopped += 1;
            } else {
                next_active.push(i);
            }
        }
        log(format!(
            "campaign round {}: {} cells x {} runs, {} reached their CI target",
            round + 1,
            active.len(),
            chunk.min(cfg.ci_cap.saturating_sub(round * chunk)),
            stopped
        ));
        active = next_active;
        round += 1;
    }

    // --- Stage 3: final objectives and the frontier. ---
    let mut promoted_objs = Vec::with_capacity(survivors.len());
    for &i in &survivors {
        let t = totals[&i];
        counts.campaign_runs += t.runs;
        let objectives = Objectives {
            overhead: overhead_of(&evals[i].point, &cfg.kernels, cfg.scale, &payloads)?,
            area: evals[i].area_um2 / unit,
            sdc: t.sdc as f64 / t.runs.max(1) as f64,
        };
        promoted_objs.push(objectives);
        evals[i].promoted = Some(Promoted {
            objectives,
            sdc: t.sdc,
            runs: t.runs,
            frontier: false,
        });
    }
    let mask = exact_pareto_mask(&promoted_objs);
    for (&i, keep) in survivors.iter().zip(mask) {
        if let Some(p) = &mut evals[i].promoted {
            p.frontier = keep;
        }
    }
    counts.frontier = evals
        .iter()
        .filter(|e| e.promoted.as_ref().is_some_and(|p| p.frontier))
        .count();
    log(format!(
        "frontier: {} of {} promoted points survive the final exact Pareto pass \
         ({} campaign runs total, {} jobs, {} store hits)",
        counts.frontier, counts.promoted, counts.campaign_runs, counts.jobs, counts.store_hits
    ));
    Ok(ExploreReport {
        points: evals,
        counts,
    })
}

/// Render the frontier artifact: a self-describing JSON document carrying
/// every *promoted* point (objectives, price, campaign evidence, frontier
/// flag) plus the search's identity (scale, seed, epsilon, grid counts).
/// Rendering is fully deterministic — points in canonical enumeration
/// order, floats through the shared `json_number`, no timestamps — so the
/// artifact is byte-identical across thread and worker counts and
/// golden-diffable in CI.
pub fn frontier_json(cfg: &ExploreConfig, report: &ExploreReport) -> String {
    use crate::table::{json_number, json_string};
    let c = report.counts;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"turnpike-explore-frontier-v1\",\n");
    out.push_str(&format!(
        "  \"scale\": {},\n",
        json_string(scale_name(cfg.scale))
    ));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"epsilon\": {},\n", json_number(cfg.epsilon)));
    out.push_str(&format!(
        "  \"area_unit_um2\": {},\n",
        json_number(area_unit())
    ));
    out.push_str(&format!(
        "  \"grid\": {{\"raw\": {}, \"canonical\": {}, \"promoted\": {}, \"frontier\": {}}},\n",
        c.raw, c.canonical, c.promoted, c.frontier
    ));
    out.push_str("  \"objectives\": [\"overhead\", \"area\", \"sdc\"],\n");
    out.push_str("  \"points\": [\n");
    let promoted: Vec<&PointEval> = report
        .points
        .iter()
        .filter(|e| e.promoted.is_some())
        .collect();
    for (n, eval) in promoted.iter().enumerate() {
        let p = eval.promoted.as_ref().expect("filtered to promoted");
        let point = &eval.point;
        out.push_str("    {");
        out.push_str(&format!("\"id\": {}, ", json_string(&point.id())));
        out.push_str(&format!(
            "\"scheme\": {}, ",
            json_string(point.scheme.cli_name())
        ));
        out.push_str(&format!("\"wcdl\": {}, ", point.wcdl));
        out.push_str(&format!("\"sb\": {}, ", point.sb_size));
        out.push_str(&format!(
            "\"clq\": {}, ",
            point
                .clq
                .map_or_else(|| "null".to_string(), |c| json_string(&clq_name(c)))
        ));
        out.push_str(&format!(
            "\"colors\": {}, ",
            point
                .colors
                .map_or_else(|| "null".to_string(), |c| c.to_string())
        ));
        out.push_str(&format!("\"geom\": {}, ", json_string(point.geom.name)));
        out.push_str(&format!("\"area_um2\": {}, ", json_number(eval.area_um2)));
        out.push_str(&format!("\"energy_pj\": {}, ", json_number(eval.energy_pj)));
        out.push_str(&format!(
            "\"overhead\": {}, ",
            json_number(p.objectives.overhead)
        ));
        out.push_str(&format!(
            "\"sdc_rate\": {}, ",
            json_number(p.objectives.sdc)
        ));
        out.push_str(&format!("\"sdc\": {}, ", p.sdc));
        out.push_str(&format!("\"runs\": {}, ", p.runs));
        out.push_str(&format!("\"frontier\": {}", p.frontier));
        out.push_str(if n + 1 < promoted.len() {
            "},\n"
        } else {
            "}\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// The frontier as a printable figure: one row per frontier point (in
/// canonical order), columns for all reported dimensions. This is what
/// `reproduce explore` prints to stdout.
pub fn frontier_table(report: &ExploreReport) -> crate::table::Table {
    let mut t = crate::table::Table::new(
        "explore",
        "Design-space exploration: Pareto frontier over (overhead, area, SDC rate)",
        &["overhead", "area_sb4", "energy_pj", "sdc_rate", "runs"],
    );
    for eval in &report.points {
        if let Some(p) = eval.promoted.as_ref().filter(|p| p.frontier) {
            t.push(
                eval.point.id(),
                vec![
                    p.objectives.overhead,
                    p.objectives.area,
                    eval.energy_pj,
                    p.objectives.sdc,
                    p.runs as f64,
                ],
            );
        }
    }
    t
}
