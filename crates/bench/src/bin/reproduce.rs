//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce <target> [--smoke] [--json]
//!
//! targets: fig4 fig14 fig15 fig18 fig19 fig20 fig21 fig22 fig23
//!          fig24 fig25 fig26 table1 ablation clq colors summary all
//! ```
//!
//! `--smoke` runs the reduced-size kernels (fast; used by CI); the default
//! is full evaluation scale. `--json` prints machine-readable output.

use std::process::ExitCode;
use turnpike_bench::{
    ablation, clq_designs, colors, fig14, fig15, fig18, fig19, fig20, fig21, fig22, fig23, fig24,
    fig25, fig26, fig4, summary, table1, Table,
};
use turnpike_workloads::Scale;

fn usage() -> ExitCode {
    eprintln!(
        "usage: reproduce <target> [--smoke] [--json]\n\
         targets: fig4 fig14 fig15 fig18 fig19 fig20 fig21 fig22 fig23 \
         fig24 fig25 fig26 table1 ablation clq colors summary all"
    );
    ExitCode::from(2)
}

fn generate(target: &str, scale: Scale) -> Option<Vec<Table>> {
    let one = |t: Table| Some(vec![t]);
    match target {
        "fig4" => one(fig4(scale)),
        "fig14" => one(fig14(scale)),
        "fig15" => one(fig15(scale)),
        "fig18" => one(fig18()),
        "fig19" => one(fig19(scale)),
        "fig20" => one(fig20(scale)),
        "fig21" => one(fig21(scale)),
        "fig22" => one(fig22(scale)),
        "fig23" => one(fig23(scale)),
        "fig24" => one(fig24(scale)),
        "fig25" => one(fig25(scale)),
        "fig26" => one(fig26(scale)),
        "table1" => one(table1()),
        "ablation" => one(ablation(scale)),
        "colors" => one(colors(scale)),
        "clq" => one(clq_designs(scale)),
        "summary" => one(summary(scale)),
        "all" => Some(vec![
            ablation(scale),
            fig4(scale),
            fig14(scale),
            fig15(scale),
            fig18(),
            fig19(scale),
            fig20(scale),
            fig21(scale),
            fig22(scale),
            fig23(scale),
            fig24(scale),
            fig25(scale),
            fig26(scale),
            table1(),
        ]),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target: Option<String> = None;
    let mut scale = Scale::Full;
    let mut json = false;
    for a in &args {
        match a.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--json" => json = true,
            t if target.is_none() && !t.starts_with('-') => target = Some(t.to_string()),
            _ => return usage(),
        }
    }
    let Some(target) = target else {
        return usage();
    };
    let Some(tables) = generate(&target, scale) else {
        return usage();
    };
    for t in &tables {
        if json {
            println!("{}", t.to_json());
        } else {
            println!("{t}");
        }
    }
    ExitCode::SUCCESS
}
