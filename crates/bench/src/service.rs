//! The production [`Executor`] behind `turnpike-serve`: jobs run through
//! the memoizing [`Engine`] and results persist in the content-addressed
//! artifact [`Store`].
//!
//! The serve crate deliberately knows nothing about kernels, compilers, or
//! figures (that would be a dependency cycle: the `reproduce` binary lives
//! here and needs the server). This module closes the loop: it resolves a
//! wire-level [`JobRequest`] against the workload catalog, executes it
//! with the same engine the figure generators use, and renders the payload
//! with one shared set of renderers — which is why a served result is
//! byte-identical to the direct-CLI (`submit --direct`) rendering of the
//! same job, warm or cold store.
//!
//! Store keys embed the kernel identity and the *full* `Debug` rendering
//! of the derived `CompilerConfig`/`SimConfig` (plus campaign parameters),
//! so any knob that affects the output changes the key. Results are
//! deterministic at any thread count, so thread budget is deliberately not
//! key material.

use std::sync::atomic::{AtomicU64, Ordering};

use turnpike_explore::parse_clq;
use turnpike_resilience::{
    cache_geom, fault_campaign_shard_hooked, CacheGeom, CampaignConfig, CampaignHook,
    CampaignProgress, CampaignReport, RunError, RunSpec, Scheme,
};
use turnpike_serve::{
    ExecOutput, Executor, JobCtl, JobKind, JobRequest, Json, Lookup, ProgressStats, Store,
    StoreStatus,
};
use turnpike_sim::ClqKind;
use turnpike_workloads::{Kernel, Scale};

use crate::engine::Engine;
use crate::figures::target_by_name;
use crate::obs::find_kernel;
use crate::table::json_string;

/// [`Executor`] wiring jobs to the evaluation [`Engine`] and an optional
/// persistent artifact [`Store`].
pub struct EngineExecutor {
    engine: Engine,
    store: Option<Store>,
    /// LRU byte cap for the store; collected at attach time and then every
    /// `GC_EVERY_PUTS` puts.
    store_cap: Option<u64>,
    puts: AtomicU64,
}

/// How many store puts between [`Store::gc`] passes when a cap is set.
/// Collection walks the whole store, so amortize it; the cap is a resource
/// budget, not an invariant, and brief overshoot between passes is fine.
const GC_EVERY_PUTS: u64 = 32;

/// The summable campaign counters — exactly the fields the campaign
/// payload renders. Shard reports merge by plain field-wise addition
/// (the `CampaignReport::absorb` property), so a coordinator can sum the
/// totals parsed from shard payloads and re-render the merged payload
/// byte-identically to a single-process run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignTotals {
    /// Runs executed.
    pub runs: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Recoveries.
    pub recoveries: u64,
    /// All detections.
    pub detections: u64,
    /// Detections via parity.
    pub parity_detections: u64,
    /// Detections via the sensor sweep.
    pub sensor_detections: u64,
    /// Strikes landing after architectural completion.
    pub post_completion: u64,
    /// Watchdog-detected hangs.
    pub hangs: u64,
}

impl CampaignTotals {
    /// Totals of one (shard or whole) campaign report.
    pub fn from_report(r: &CampaignReport) -> CampaignTotals {
        CampaignTotals {
            runs: r.runs as u64,
            sdc: r.sdc as u64,
            recoveries: r.recoveries,
            detections: r.detections,
            parity_detections: r.parity_detections,
            sensor_detections: r.sensor_detections,
            post_completion: r.post_completion as u64,
            hangs: r.hangs as u64,
        }
    }

    /// Parse the totals back out of a rendered campaign payload (the
    /// coordinator's input: one payload per shard).
    pub fn from_payload(payload: &str) -> Option<CampaignTotals> {
        let v = Json::parse(payload).ok()?;
        let f = |k: &str| v.get(k).and_then(Json::as_u64);
        Some(CampaignTotals {
            runs: f("runs")?,
            sdc: f("sdc")?,
            recoveries: f("recoveries")?,
            detections: f("detections")?,
            parity_detections: f("parity_detections")?,
            sensor_detections: f("sensor_detections")?,
            post_completion: f("post_completion")?,
            hangs: f("hangs")?,
        })
    }

    /// Field-wise sum — merging shard totals in any order gives the
    /// unsharded campaign's totals (every field is a plain count).
    pub fn absorb(&mut self, o: &CampaignTotals) {
        self.runs += o.runs;
        self.sdc += o.sdc;
        self.recoveries += o.recoveries;
        self.detections += o.detections;
        self.parity_detections += o.parity_detections;
        self.sensor_detections += o.sensor_detections;
        self.post_completion += o.post_completion;
        self.hangs += o.hangs;
    }
}

/// Render the campaign payload from a request and its totals. The ONE
/// renderer for campaign results — the executor (single process or shard)
/// and the distributed coordinator both call it, which is what makes a
/// merged fleet report byte-identical to the single-process payload.
/// `scale` is the validated scale label (`"smoke"`/`"full"`).
pub fn campaign_payload(req: &JobRequest, scale: &str, t: &CampaignTotals) -> String {
    format!(
        "{{\"kind\":\"campaign\",\"kernel\":{},\"scheme\":{},\"scale\":{},\"sb\":{},\"wcdl\":{},\
         \"runs\":{},\"seed\":{},\"strikes\":{},\"sdc\":{},\"sdc_free\":{},\
         \"recoveries\":{},\"detections\":{},\"parity_detections\":{},\
         \"sensor_detections\":{},\"post_completion\":{},\"hangs\":{}}}",
        json_string(&req.kernel),
        json_string(&req.scheme),
        json_string(scale),
        req.sb,
        req.wcdl,
        t.runs,
        req.seed,
        req.strikes,
        t.sdc,
        t.sdc == 0,
        t.recoveries,
        t.detections,
        t.parity_detections,
        t.sensor_detections,
        t.post_completion,
        t.hangs
    )
}

/// The store-key material (the `cc=…|sc=…` Debug renderings) for every
/// *uniform* scheme at representative knob settings, one line per
/// configuration.
///
/// Pinned byte-for-byte against `crates/bench/golden/store_keys.txt`: a warm
/// artifact store written by an older build must keep hitting for uniform
/// schemes, and any drift in these renderings silently invalidates every
/// cached uniform-scheme artifact. Regenerate (only when a key change is
/// intended) with:
///
/// ```text
/// cargo run -p turnpike-bench --example store_keys > crates/bench/golden/store_keys.txt
/// ```
pub fn uniform_store_key_material() -> String {
    let uniform = [
        "baseline",
        "turnstile",
        "war-free",
        "fast-release",
        "fast-release-prune",
        "fast-release-prune-licm",
        "fast-release-prune-licm-sched",
        "fast-release-prune-licm-sched-ra",
        "turnpike",
    ];
    let mut out = String::new();
    for name in uniform {
        let scheme = Scheme::parse(name).expect("uniform scheme name");
        for (sb, wcdl) in [(4u32, 10u64), (8, 50)] {
            let spec = RunSpec::new(scheme).with_sb(sb).with_wcdl(wcdl);
            out.push_str(&format!(
                "{name}|sb={sb}|wcdl={wcdl}|cc={:?}|sc={:?}\n",
                spec.compiler_config(),
                spec.sim_config()
            ));
        }
    }
    out
}

/// Flatten a campaign's streaming-estimator snapshot into the wire-level
/// progress payload (rates and Wilson bounds expanded to plain floats).
fn stats_of(p: &CampaignProgress) -> ProgressStats {
    let (sdc_ci_lo, sdc_ci_hi) = p.sdc_rate.wilson_bounds();
    let (det_ci_lo, det_ci_hi) = p.detection_rate.wilson_bounds();
    ProgressStats {
        recovered: p.recovered as u64,
        post_completion: p.post_completion as u64,
        sdc: p.sdc as u64,
        hangs: p.hangs as u64,
        detections: p.detections,
        sdc_rate: p.sdc_rate.rate(),
        sdc_ci_lo,
        sdc_ci_hi,
        det_rate: p.detection_rate.rate(),
        det_ci_lo,
        det_ci_hi,
        strikes_per_sec: p.strikes_per_sec,
        ns_per_inst: p.ns_per_inst,
        eta_ms: p.eta_ms,
        elapsed_ms: p.elapsed_ms,
    }
}

/// A request resolved against the catalog: everything validated, nothing
/// executed yet.
struct Resolved {
    scheme: Scheme,
    scale: Scale,
    /// `None` only for figure jobs (which name a target, not a kernel).
    kernel: Option<Kernel>,
    /// Explorer overrides, parsed from the request's optional `clq` /
    /// `colors` / `geom` fields; `None` keeps each scheme default, so a
    /// pre-explorer request derives exactly the spec it always did.
    clq: Option<ClqKind>,
    colors: Option<u8>,
    geom: Option<CacheGeom>,
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Full => "full",
    }
}

impl EngineExecutor {
    /// An executor without persistence.
    pub fn new(engine: Engine) -> EngineExecutor {
        EngineExecutor {
            engine,
            store: None,
            store_cap: None,
            puts: AtomicU64::new(0),
        }
    }

    /// Attach a persistent artifact store shared with other processes.
    #[must_use]
    pub fn with_store(mut self, store: Store) -> EngineExecutor {
        self.store = Some(store);
        self
    }

    /// Cap the attached store at `max_bytes` of artifact data: collect
    /// (LRU) immediately and then every `GC_EVERY_PUTS` puts.
    #[must_use]
    pub fn with_store_cap(mut self, max_bytes: u64) -> EngineExecutor {
        self.store_cap = Some(max_bytes);
        self.collect_store();
        self
    }

    /// Run one GC pass if a cap is configured. Best-effort: a failed
    /// collection costs disk, not correctness.
    fn collect_store(&self) {
        let (Some(store), Some(cap)) = (&self.store, self.store_cap) else {
            return;
        };
        match store.gc(cap) {
            Ok(stats) if stats.evicted > 0 => eprintln!(
                "serve: store gc evicted {} of {} entries ({} -> {} bytes, cap {cap})",
                stats.evicted, stats.entries, stats.bytes_before, stats.bytes_after
            ),
            Ok(_) => {}
            Err(e) => eprintln!("serve: store gc failed: {e}"),
        }
    }

    /// The underlying engine (for metrics snapshots).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Execute a job outside any server — the CLI's `submit --direct`
    /// path. Same resolution, same renderers, same store as a served job.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the invalid field or failed stage.
    pub fn execute_direct(&self, req: &JobRequest) -> Result<ExecOutput, String> {
        self.execute(req, &JobCtl::detached())
    }

    fn resolve(&self, req: &JobRequest) -> Result<Resolved, String> {
        let scheme =
            Scheme::parse(&req.scheme).ok_or_else(|| format!("unknown scheme '{}'", req.scheme))?;
        let scale = match req.scale.as_str() {
            "smoke" => Scale::Smoke,
            "full" => Scale::Full,
            other => return Err(format!("unknown scale '{other}'")),
        };
        let kernel = if req.kind == JobKind::Figure {
            if target_by_name(&req.target).is_none() {
                return Err(format!("unknown figure target '{}'", req.target));
            }
            None
        } else {
            Some(
                find_kernel(&req.kernel, scale)
                    .ok_or_else(|| format!("unknown kernel '{}'", req.kernel))?,
            )
        };
        let clq = if req.clq.is_empty() {
            None
        } else {
            Some(parse_clq(&req.clq).ok_or_else(|| format!("unknown clq '{}'", req.clq))?)
        };
        let colors = if req.colors == 0 {
            None
        } else {
            // The protocol already capped it at 255.
            Some(req.colors as u8)
        };
        let geom = if req.geom.is_empty() {
            None
        } else {
            Some(
                cache_geom(&req.geom)
                    .ok_or_else(|| format!("unknown cache geometry '{}'", req.geom))?,
            )
        };
        Ok(Resolved {
            scheme,
            scale,
            kernel,
            clq,
            colors,
            geom,
        })
    }

    fn spec(req: &JobRequest, r: &Resolved) -> RunSpec {
        let mut spec = RunSpec::new(r.scheme).with_sb(req.sb).with_wcdl(req.wcdl);
        if let Some(clq) = r.clq {
            spec = spec.with_clq(clq);
        }
        if let Some(colors) = r.colors {
            spec = spec.with_colors(colors);
        }
        if let Some(geom) = r.geom {
            spec = spec.with_geom(geom);
        }
        spec
    }

    /// Canonical store key: version tag, job kind, kernel/target identity,
    /// and the full derived configs. Single line (the store requires it).
    fn store_key(req: &JobRequest, r: &Resolved) -> String {
        let spec = Self::spec(req, r);
        match req.kind {
            JobKind::Figure => format!("job-v1|figure|target={}|scale={:?}", req.target, r.scale),
            JobKind::Compile => format!(
                "job-v1|compile|kernel={:?}|cc={:?}",
                r.kernel.as_ref().expect("non-figure").id(),
                spec.compiler_config()
            ),
            JobKind::Run => format!(
                "job-v1|run|kernel={:?}|cc={:?}|sc={:?}",
                r.kernel.as_ref().expect("non-figure").id(),
                spec.compiler_config(),
                spec.sim_config()
            ),
            JobKind::Campaign => {
                // `|offset=N` appears only for shard jobs so every key an
                // unsharded build ever wrote stays valid; without it, a
                // shard and a whole campaign with equal run counts would
                // alias in the cache and serve each other's results.
                let offset = if req.run_offset == 0 {
                    String::new()
                } else {
                    format!("|offset={}", req.run_offset)
                };
                format!(
                    "job-v1|campaign|kernel={:?}|cc={:?}|sc={:?}|runs={}|seed={}|strikes={}{offset}",
                    r.kernel.as_ref().expect("non-figure").id(),
                    spec.compiler_config(),
                    spec.sim_config(),
                    req.runs,
                    req.seed,
                    req.strikes
                )
            }
        }
    }

    fn render(&self, req: &JobRequest, r: &Resolved, ctl: &JobCtl) -> Result<String, String> {
        if ctl.is_canceled() {
            return Err("canceled before execution".to_string());
        }
        let spec = Self::spec(req, r);
        let head = |kind: &str| {
            format!(
                "{{\"kind\":{},\"kernel\":{},\"scheme\":{},\"scale\":{},\"sb\":{},\"wcdl\":{}",
                json_string(kind),
                json_string(&req.kernel),
                json_string(&req.scheme),
                json_string(scale_name(r.scale)),
                req.sb,
                req.wcdl
            )
        };
        match req.kind {
            JobKind::Compile => {
                let kernel = r.kernel.as_ref().expect("non-figure");
                let out = self.engine.compile(kernel, &spec.compiler_config());
                let s = &out.stats;
                Ok(format!(
                    "{},\"ckpts_inserted\":{},\"ckpts_pruned\":{},\"ckpts_licm_removed\":{},\
                     \"spill_stores\":{},\"spill_loads\":{},\"spilled_vregs\":{},\
                     \"ivs_merged\":{},\"boundaries\":{},\"split_iterations\":{},\
                     \"final_insts\":{},\"baseline_insts\":{}}}",
                    head("compile"),
                    s.ckpts_inserted,
                    s.ckpts_pruned,
                    s.ckpts_licm_removed,
                    s.spill_stores,
                    s.spill_loads,
                    s.spilled_vregs,
                    s.ivs_merged,
                    s.boundaries,
                    s.split_iterations,
                    s.final_insts,
                    s.baseline_insts
                ))
            }
            JobKind::Run => {
                let kernel = r.kernel.as_ref().expect("non-figure");
                let result = self.engine.run(kernel, &spec);
                Ok(format!(
                    "{},\"stats\":{}}}",
                    head("run"),
                    result.outcome.stats.to_json()
                ))
            }
            JobKind::Campaign => {
                let kernel = r.kernel.as_ref().expect("non-figure");
                let config = CampaignConfig {
                    runs: req.runs as usize,
                    seed: req.seed,
                    strikes_per_run: req.strikes as usize,
                    ..Default::default()
                };
                let on_run = |done: usize, total: usize| ctl.progress(done as u64, total as u64);
                let on_progress = |p: &CampaignProgress| {
                    ctl.progress_stats(p.done as u64, p.total as u64, stats_of(p))
                };
                let hook = CampaignHook {
                    cancel: Some(ctl.cancel_flag()),
                    on_run: Some(&on_run),
                    on_progress: Some(&on_progress),
                    progress_every: 0,
                };
                // Shard-aware execution: runs cover the global index range
                // [run_offset, run_offset + runs), so a fleet of shard
                // jobs partitions the exact run set a single process would
                // execute (offset 0 = the whole campaign, unchanged).
                let (report, _records, _fork) = fault_campaign_shard_hooked(
                    &kernel.program,
                    &spec,
                    &config,
                    self.engine.threads(),
                    hook,
                    req.run_offset as usize,
                )
                .map_err(|e| match e {
                    RunError::Canceled => "canceled mid-campaign".to_string(),
                    other => other.to_string(),
                })?;
                Ok(campaign_payload(
                    req,
                    scale_name(r.scale),
                    &CampaignTotals::from_report(&report),
                ))
            }
            JobKind::Figure => {
                let target = target_by_name(&req.target).expect("validated in resolve");
                let table = (target.generate)(&self.engine.figure_scope(), r.scale);
                Ok(format!(
                    "{{\"kind\":\"figure\",\"target\":{},\"scale\":{},\"table\":{}}}",
                    json_string(&req.target),
                    json_string(scale_name(r.scale)),
                    table.to_compact_json()
                ))
            }
        }
    }
}

impl Executor for EngineExecutor {
    fn execute(&self, req: &JobRequest, ctl: &JobCtl) -> Result<ExecOutput, String> {
        let resolved = self.resolve(req)?;
        let mut quarantined = 0;
        let key = Self::store_key(req, &resolved);
        if let Some(store) = &self.store {
            match store.get(&key) {
                Lookup::Hit(payload) => {
                    return Ok(ExecOutput {
                        result: payload,
                        store: StoreStatus::Hit,
                        quarantined: 0,
                    })
                }
                Lookup::Miss => {}
                Lookup::Quarantined => quarantined = 1,
            }
        }
        let payload = self.render(req, &resolved, ctl)?;
        let store = match &self.store {
            Some(store) => {
                // A failed put degrades to "not cached", never to a failed
                // job; the payload in hand is still correct.
                if let Err(e) = store.put(&key, &payload) {
                    eprintln!("serve: artifact store put failed: {e}");
                }
                if self.store_cap.is_some()
                    && self.puts.fetch_add(1, Ordering::Relaxed) % GC_EVERY_PUTS
                        == GC_EVERY_PUTS - 1
                {
                    self.collect_store();
                }
                StoreStatus::Miss
            }
            None => StoreStatus::Off,
        };
        Ok(ExecOutput {
            result: payload,
            store,
            quarantined,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_req() -> JobRequest {
        JobRequest::new(JobKind::Run)
    }

    #[test]
    fn unknown_names_are_rejected_with_field_errors() {
        let exec = EngineExecutor::new(Engine::serial());
        let mut req = run_req();
        req.kernel = "not-a-kernel".into();
        assert!(exec.execute_direct(&req).unwrap_err().contains("kernel"));
        let mut req = run_req();
        req.scheme = "not-a-scheme".into();
        assert!(exec.execute_direct(&req).unwrap_err().contains("scheme"));
        let mut req = JobRequest::new(JobKind::Figure);
        req.target = "fig999".into();
        assert!(exec.execute_direct(&req).unwrap_err().contains("target"));
    }

    #[test]
    fn run_payload_is_deterministic_and_store_off_without_a_store() {
        let exec = EngineExecutor::new(Engine::serial());
        let a = exec.execute_direct(&run_req()).unwrap();
        let b = exec.execute_direct(&run_req()).unwrap();
        assert_eq!(a.result, b.result);
        assert_eq!(a.store, StoreStatus::Off);
        assert!(a.result.starts_with("{\"kind\":\"run\""), "{}", a.result);
        assert!(a.result.contains("\"stats\":{\"cycles\":"), "{}", a.result);
    }

    #[test]
    fn uniform_store_keys_match_golden() {
        // A warm artifact store written by an older build must keep hitting
        // for every uniform scheme: the config Debug renderings are store-key
        // material and may never drift for uniform configs.
        assert_eq!(
            uniform_store_key_material(),
            include_str!("../golden/store_keys.txt"),
            "uniform store-key material drifted; this invalidates warm caches"
        );
    }

    #[test]
    fn shard_payloads_merge_to_the_direct_campaign_payload() {
        // The coordinator's whole correctness claim: executing a campaign
        // as offset shards and re-rendering the summed totals must
        // reproduce the single-process payload byte for byte.
        let exec = EngineExecutor::new(Engine::serial());
        let mut whole = JobRequest::new(JobKind::Campaign);
        whole.runs = 24;
        whole.strikes = 2;
        whole.seed = 7;
        let direct = exec.execute_direct(&whole).unwrap().result;

        let mut merged = CampaignTotals::default();
        for (offset, runs) in [(0u64, 9u64), (9, 9), (18, 6)] {
            let mut shard = whole.clone();
            shard.run_offset = offset;
            shard.runs = runs;
            let payload = exec.execute_direct(&shard).unwrap().result;
            merged.absorb(&CampaignTotals::from_payload(&payload).expect("parsable shard"));
        }
        assert_eq!(campaign_payload(&whole, "smoke", &merged), direct);
    }

    #[test]
    fn campaign_store_keys_distinguish_shards_but_not_offset_zero() {
        let exec = EngineExecutor::new(Engine::serial());
        let whole = JobRequest::new(JobKind::Campaign);
        let r = exec.resolve(&whole).unwrap();
        let k_whole = EngineExecutor::store_key(&whole, &r);
        assert!(
            !k_whole.contains("offset"),
            "offset 0 must not perturb pre-shard store keys: {k_whole}"
        );
        let mut shard = whole.clone();
        shard.run_offset = 8;
        let k_shard = EngineExecutor::store_key(&shard, &exec.resolve(&shard).unwrap());
        assert_ne!(k_whole, k_shard);
        assert!(k_shard.ends_with("|offset=8"), "{k_shard}");
    }

    #[test]
    fn store_keys_separate_every_knob() {
        let exec = EngineExecutor::new(Engine::serial());
        let base = exec.resolve(&run_req()).unwrap();
        let k0 = EngineExecutor::store_key(&run_req(), &base);
        let mut wcdl = run_req();
        wcdl.wcdl = 50;
        let mut sb = run_req();
        sb.sb = 40;
        let mut scheme = run_req();
        scheme.scheme = "turnstile".into();
        for changed in [wcdl, sb, scheme] {
            let r = exec.resolve(&changed).unwrap();
            assert_ne!(k0, EngineExecutor::store_key(&changed, &r), "{changed:?}");
        }
        // Campaign keys also cover runs/seed/strikes.
        let c0 = JobRequest::new(JobKind::Campaign);
        let rc = exec.resolve(&c0).unwrap();
        let ck0 = EngineExecutor::store_key(&c0, &rc);
        let mut seed = c0.clone();
        seed.seed = 1;
        assert_ne!(ck0, EngineExecutor::store_key(&seed, &rc));
    }

    /// The explorer's override fields flow into the derived configs (and
    /// therefore the store keys) without touching default requests: an
    /// empty override resolves to exactly the spec an older build derived,
    /// so every pre-explorer store key stays valid.
    #[test]
    fn explorer_overrides_flow_into_spec_and_store_keys() {
        let exec = EngineExecutor::new(Engine::serial());
        let base = run_req();
        let k0 = EngineExecutor::store_key(&base, &exec.resolve(&base).unwrap());

        let mut clq = run_req();
        clq.clq = "cam-4".into();
        let r = exec.resolve(&clq).unwrap();
        assert_eq!(
            EngineExecutor::spec(&clq, &r).sim_config().clq,
            turnpike_sim::ClqKind::Cam(4)
        );
        assert_ne!(k0, EngineExecutor::store_key(&clq, &r));

        let mut colors = run_req();
        colors.colors = 8;
        let r = exec.resolve(&colors).unwrap();
        assert_eq!(EngineExecutor::spec(&colors, &r).sim_config().colors, 8);
        assert_ne!(k0, EngineExecutor::store_key(&colors, &r));

        let mut geom = run_req();
        geom.geom = "slim".into();
        let r = exec.resolve(&geom).unwrap();
        assert_eq!(
            EngineExecutor::spec(&geom, &r).sim_config().l1_bytes,
            32 * 1024
        );
        assert_ne!(k0, EngineExecutor::store_key(&geom, &r));

        // Explicitly naming the defaults aliases the default key — the
        // explorer's canonical points and a plain request share artifacts.
        let mut a53 = run_req();
        a53.geom = "a53".into();
        assert_eq!(
            k0,
            EngineExecutor::store_key(&a53, &exec.resolve(&a53).unwrap())
        );

        // Bad names are resolve-time field errors, not panics.
        let mut bad = run_req();
        bad.clq = "compact-x".into();
        assert!(exec.execute_direct(&bad).unwrap_err().contains("clq"));
        let mut bad = run_req();
        bad.geom = "huge".into();
        assert!(exec.execute_direct(&bad).unwrap_err().contains("geometry"));
    }
}
