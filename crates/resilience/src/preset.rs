//! The single source of truth for evaluation presets.
//!
//! Everything that enumerates the paper's design points draws from here:
//!
//! * [`compiler_config_for`] / [`sim_config_for`] — the one
//!   scheme→(compiler, simulator) configuration mapping
//!   ([`Scheme::compiler_config`] and [`Scheme::sim_config`] delegate);
//! * [`LADDER`] — the Figure-21 optimization ladder, pairing each rung's
//!   [`Scheme`] with the column label the figure prints;
//! * [`ABLATION`] — the knock-one-out ablation sweep (full Turnpike minus
//!   one technique), with [`ablation_configs`] materializing each variant;
//! * [`COLOR_POOLS`] / [`COLOR_WCDLS`] — the color-pool sizing sweep grid.
//!
//! Keeping the tables here means the bench harness, the scheme enum, and
//! any future sweep agree by construction instead of by parallel lists.

use crate::scheme::Scheme;
use turnpike_compiler::{CompilerConfig, ProtectionPolicy};
use turnpike_sim::{ClqKind, SimConfig};

/// Vulnerability threshold of the [`Scheme::Adaptive`] rung: regions
/// scoring below this (see `turnpike_compiler::vulnerability::score`) run
/// unprotected and the compiler sheds the checkpoints that only fed their
/// (never-taken) recoveries. Chosen so the smoke-scale evaluation kernels
/// keep their hot store-carrying loop bodies fully protected while
/// low-pressure control/glue regions drop their checkpoint traffic.
pub const ADAPTIVE_THRESHOLD: u32 = 6;

/// Compiler configuration for a scheme on an `sb_size`-entry store buffer.
pub fn compiler_config_for(scheme: Scheme, sb_size: u32) -> CompilerConfig {
    let mut c = CompilerConfig::turnstile(sb_size);
    match scheme {
        Scheme::Baseline => c = CompilerConfig::baseline(),
        Scheme::Turnstile | Scheme::WarFree | Scheme::FastRelease => {}
        Scheme::FastReleasePrune => {
            c.prune = true;
        }
        Scheme::FastReleasePruneLicm => {
            c.prune = true;
            c.licm = true;
        }
        Scheme::FastReleasePruneLicmSched => {
            c.prune = true;
            c.licm = true;
            c.sched = true;
        }
        Scheme::FastReleasePruneLicmSchedRa => {
            c.prune = true;
            c.licm = true;
            c.sched = true;
            c.store_aware_ra = true;
        }
        Scheme::Turnpike => c = CompilerConfig::turnpike(sb_size),
        Scheme::Adaptive => {
            c = CompilerConfig::turnpike(sb_size);
            c.policy = ProtectionPolicy::Adaptive {
                threshold: ADAPTIVE_THRESHOLD,
            };
        }
    }
    c.sb_size = sb_size;
    c
}

/// Simulator configuration for a scheme.
pub fn sim_config_for(scheme: Scheme, sb_size: u32, wcdl: u64) -> SimConfig {
    match scheme {
        Scheme::Baseline => SimConfig {
            sb_size,
            ..SimConfig::baseline()
        },
        Scheme::Turnstile => SimConfig::turnstile(sb_size, wcdl),
        Scheme::WarFree => SimConfig {
            war_free: true,
            clq: ClqKind::Compact(2),
            ..SimConfig::turnstile(sb_size, wcdl)
        },
        _ => SimConfig::turnpike(sb_size, wcdl),
    }
}

/// One rung of the Figure-21 optimization ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderRung {
    /// The design point.
    pub scheme: Scheme,
    /// The column label Figure 21 prints for this rung.
    pub column: &'static str,
}

/// The Figure-21 ladder in presentation order (baseline excluded), each
/// rung adding one compiler or hardware technique on top of the previous;
/// the final rung layers per-region adaptive protection on full Turnpike.
/// [`Scheme::LADDER`] and the fig21 column headers both derive from this.
pub const LADDER: [LadderRung; 9] = [
    LadderRung {
        scheme: Scheme::Turnstile,
        column: "Turnstile",
    },
    LadderRung {
        scheme: Scheme::WarFree,
        column: "WAR-free",
    },
    LadderRung {
        scheme: Scheme::FastRelease,
        column: "FastRel",
    },
    LadderRung {
        scheme: Scheme::FastReleasePrune,
        column: "+Prune",
    },
    LadderRung {
        scheme: Scheme::FastReleasePruneLicm,
        column: "+LICM",
    },
    LadderRung {
        scheme: Scheme::FastReleasePruneLicmSched,
        column: "+Sched",
    },
    LadderRung {
        scheme: Scheme::FastReleasePruneLicmSchedRa,
        column: "+RA",
    },
    LadderRung {
        scheme: Scheme::Turnpike,
        column: "Turnpike",
    },
    LadderRung {
        scheme: Scheme::Adaptive,
        column: "Adaptive",
    },
];

/// The ladder's schemes alone, in rung order (the backing array of
/// [`Scheme::LADDER`]).
pub const fn ladder_schemes() -> [Scheme; 9] {
    let mut out = [Scheme::Turnstile; 9];
    let mut i = 0;
    while i < LADDER.len() {
        out[i] = LADDER[i].scheme;
        i += 1;
    }
    out
}

/// One technique to knock out of full Turnpike for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AblationKnob {
    /// Full Turnpike, nothing removed (the reference row).
    None,
    /// Disable loop induction variable merging.
    Livm,
    /// Disable optimal checkpoint pruning.
    Prune,
    /// Disable checkpoint sinking (LICM).
    Licm,
    /// Disable checkpoint-aware instruction scheduling.
    Sched,
    /// Disable store-aware register allocation.
    Ra,
    /// Disable WAR-free fast release (and the CLQ backing it).
    WarFree,
    /// Disable hardware checkpoint coloring.
    Coloring,
}

/// The ablation sweep: full Turnpike minus one technique at a time, with
/// the row label the ablation table prints.
pub const ABLATION: [(&str, AblationKnob); 8] = [
    ("Turnpike (full)", AblationKnob::None),
    ("- LIVM", AblationKnob::Livm),
    ("- Pruning", AblationKnob::Prune),
    ("- LICM", AblationKnob::Licm),
    ("- Inst Sched", AblationKnob::Sched),
    ("- Store-aware RA", AblationKnob::Ra),
    ("- WAR-free release", AblationKnob::WarFree),
    ("- HW coloring", AblationKnob::Coloring),
];

/// Configurations for one ablation variant: full Turnpike with the given
/// technique removed.
pub fn ablation_configs(
    knob: AblationKnob,
    sb_size: u32,
    wcdl: u64,
) -> (CompilerConfig, SimConfig) {
    let mut cc = compiler_config_for(Scheme::Turnpike, sb_size);
    let mut sc = sim_config_for(Scheme::Turnpike, sb_size, wcdl);
    match knob {
        AblationKnob::None => {}
        AblationKnob::Livm => cc.livm = false,
        AblationKnob::Prune => cc.prune = false,
        AblationKnob::Licm => cc.licm = false,
        AblationKnob::Sched => cc.sched = false,
        AblationKnob::Ra => cc.store_aware_ra = false,
        AblationKnob::WarFree => {
            sc.war_free = false;
            sc.clq = ClqKind::Off;
        }
        AblationKnob::Coloring => sc.coloring = false,
    }
    (cc, sc)
}

/// Color-pool sizes swept by the checkpoint-coloring extension experiment.
pub const COLOR_POOLS: [u8; 4] = [1, 2, 4, 8];

/// Detection latencies swept by the color-pool experiment.
pub const COLOR_WCDLS: [u64; 3] = [10, 30, 50];

/// One named first/second-level cache geometry for the explorer's cache
/// axis. Applied to a [`SimConfig`] via `RunSpec::with_geom`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeom {
    /// Short CLI/wire name ("a53", "slim", ...).
    pub name: &'static str,
    /// L1 data cache capacity in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: u32,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: u32,
}

/// The cache geometries the explorer sweeps. `"a53"` is the paper's
/// Cortex-A53-like default (the values baked into `SimConfig::baseline`);
/// `"slim"` halves both levels to probe sensitivity of the frontier to a
/// leaner memory system.
pub const CACHE_GEOMS: [CacheGeom; 2] = [
    CacheGeom {
        name: "a53",
        l1_bytes: 64 * 1024,
        l1_ways: 2,
        l2_bytes: 128 * 1024,
        l2_ways: 16,
    },
    CacheGeom {
        name: "slim",
        l1_bytes: 32 * 1024,
        l1_ways: 2,
        l2_bytes: 64 * 1024,
        l2_ways: 8,
    },
];

/// Look up a [`CACHE_GEOMS`] entry by its wire name.
pub fn cache_geom(name: &str) -> Option<CacheGeom> {
    CACHE_GEOMS.iter().copied().find(|g| g.name == name)
}

/// The declarative cross-layer explorer grid: one axis list per swept
/// knob. The color and WCDL axes are *the same arrays* the color-pool
/// sweep uses ([`COLOR_POOLS`], [`COLOR_WCDLS`]) — there is exactly one
/// copy of each knob range in the workspace, so the sweeps cannot fall
/// out of sync. The explorer enumerates the cartesian product of these
/// axes in this field order (scheme outermost, geometry innermost).
#[derive(Debug, Clone, Copy)]
pub struct ExploreAxes {
    /// Protection schemes to sweep.
    pub schemes: &'static [Scheme],
    /// Worst-case detection latencies (shared with the color sweep).
    pub wcdls: &'static [u64],
    /// Store-buffer sizes.
    pub sb_sizes: &'static [u32],
    /// CLQ designs (kind + entries).
    pub clqs: &'static [ClqKind],
    /// Color-pool sizes (shared with the color sweep).
    pub colors: &'static [u8],
    /// Cache geometries.
    pub geoms: &'static [CacheGeom],
}

/// The default explorer grid: the paper's scheme endpoints (turnstile,
/// WAR-free turnstile, full turnpike, adaptive turnpike) crossed with the
/// shared WCDL/color grids, the Table-1 SB sizes plus a midpoint, three
/// CLQ designs, and both cache geometries.
pub const EXPLORE_AXES: ExploreAxes = ExploreAxes {
    schemes: &[
        Scheme::Turnstile,
        Scheme::WarFree,
        Scheme::Turnpike,
        Scheme::Adaptive,
    ],
    wcdls: &COLOR_WCDLS,
    sb_sizes: &[4, 8, 40],
    clqs: &[ClqKind::Compact(2), ClqKind::Compact(4), ClqKind::Cam(4)],
    colors: &COLOR_POOLS,
    geoms: &CACHE_GEOMS,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the ladder's rung order and column labels — every consumer
    /// (Scheme::LADDER, fig21) derives from this table, so this is the one
    /// place the presentation order is asserted.
    #[test]
    fn ladder_order_and_columns_are_pinned() {
        let columns: Vec<&str> = LADDER.iter().map(|r| r.column).collect();
        assert_eq!(
            columns,
            vec![
                "Turnstile",
                "WAR-free",
                "FastRel",
                "+Prune",
                "+LICM",
                "+Sched",
                "+RA",
                "Turnpike",
                "Adaptive"
            ]
        );
        assert_eq!(ladder_schemes(), Scheme::LADDER);
        assert_eq!(LADDER[0].scheme, Scheme::Turnstile);
        assert_eq!(LADDER[7].scheme, Scheme::Turnpike);
        assert_eq!(LADDER[8].scheme, Scheme::Adaptive);
    }

    #[test]
    fn adaptive_rung_derives_from_turnpike() {
        let cc = compiler_config_for(Scheme::Adaptive, 4);
        let mut tp = compiler_config_for(Scheme::Turnpike, 4);
        assert_eq!(
            cc.policy,
            ProtectionPolicy::Adaptive {
                threshold: ADAPTIVE_THRESHOLD
            }
        );
        tp.policy = cc.policy;
        assert_eq!(cc, tp, "adaptive differs from turnpike only in policy");
        assert_eq!(
            sim_config_for(Scheme::Adaptive, 4, 10),
            sim_config_for(Scheme::Turnpike, 4, 10),
            "adaptive runs on unmodified turnpike hardware"
        );
    }

    #[test]
    fn scheme_methods_delegate_here() {
        for s in Scheme::LADDER.iter().chain([&Scheme::Baseline]) {
            assert_eq!(s.compiler_config(4), compiler_config_for(*s, 4));
            assert_eq!(s.sim_config(4, 10), sim_config_for(*s, 4, 10));
        }
    }

    #[test]
    fn ablation_knobs_each_remove_one_thing() {
        let (full_cc, full_sc) = ablation_configs(AblationKnob::None, 4, 10);
        assert!(full_cc.livm && full_cc.prune && full_cc.licm);
        assert!(full_sc.war_free && full_sc.coloring);
        let (cc, _) = ablation_configs(AblationKnob::Livm, 4, 10);
        assert!(!cc.livm && cc.prune);
        let (_, sc) = ablation_configs(AblationKnob::WarFree, 4, 10);
        assert!(!sc.war_free);
        assert_eq!(sc.clq, ClqKind::Off);
        let (_, sc) = ablation_configs(AblationKnob::Coloring, 4, 10);
        assert!(!sc.coloring);
        assert_eq!(ABLATION.len(), 8);
        assert_eq!(ABLATION[0].1, AblationKnob::None);
    }

    #[test]
    fn sweep_grids_are_pinned() {
        assert_eq!(COLOR_POOLS, [1, 2, 4, 8]);
        assert_eq!(COLOR_WCDLS, [10, 30, 50]);
    }

    /// The explorer axes must *alias* the color-sweep grids (same statics,
    /// not equal copies) and keep their pinned contents: the whole point of
    /// the declarative definition is that there is one copy of each knob
    /// range in the workspace.
    #[test]
    fn explore_axes_share_the_sweep_grids_and_are_pinned() {
        assert!(std::ptr::eq(
            EXPLORE_AXES.wcdls.as_ptr(),
            COLOR_WCDLS.as_ptr()
        ));
        assert!(std::ptr::eq(
            EXPLORE_AXES.colors.as_ptr(),
            COLOR_POOLS.as_ptr()
        ));
        assert_eq!(
            EXPLORE_AXES.schemes,
            [
                Scheme::Turnstile,
                Scheme::WarFree,
                Scheme::Turnpike,
                Scheme::Adaptive
            ]
        );
        assert_eq!(EXPLORE_AXES.sb_sizes, [4, 8, 40]);
        assert_eq!(
            EXPLORE_AXES.clqs,
            [ClqKind::Compact(2), ClqKind::Compact(4), ClqKind::Cam(4)]
        );
        assert_eq!(EXPLORE_AXES.geoms, CACHE_GEOMS);
    }

    /// The default geometry must match the values baked into
    /// `SimConfig::baseline` — "a53" means "leave the caches alone".
    #[test]
    fn a53_geometry_matches_the_simulator_default() {
        let base = SimConfig::baseline();
        let a53 = cache_geom("a53").unwrap();
        assert_eq!(a53.l1_bytes, base.l1_bytes);
        assert_eq!(a53.l1_ways, base.l1_ways);
        assert_eq!(a53.l2_bytes, base.l2_bytes);
        assert_eq!(a53.l2_ways, base.l2_ways);
        assert!(cache_geom("slim").is_some());
        assert!(cache_geom("nope").is_none());
    }
}
