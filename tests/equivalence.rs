//! Cross-crate equivalence: for every kernel in the catalog and every
//! scheme, compiling and simulating must reproduce the IR interpreter's
//! architectural result exactly (return value and data memory).

use std::collections::BTreeMap;
use turnpike::compiler::SPILL_BASE;
use turnpike::ir::interp;
use turnpike::resilience::{run_kernel, RunSpec, Scheme};
use turnpike::workloads::{all_kernels, Scale};

/// Golden (ret, memory) with spill slots masked out (they are an artifact
/// of register allocation, not program semantics).
fn data_only(mem: &BTreeMap<u64, i64>) -> BTreeMap<u64, i64> {
    mem.iter()
        .filter(|(a, _)| **a < SPILL_BASE)
        .map(|(a, v)| (*a, *v))
        .collect()
}

fn check_scheme(scheme: Scheme) {
    for k in all_kernels(Scale::Smoke) {
        let golden =
            interp::golden(&k.program).unwrap_or_else(|e| panic!("{}: interp: {e}", k.name));
        let run = run_kernel(&k.program, &RunSpec::new(scheme))
            .unwrap_or_else(|e| panic!("{}/{:?}: {e}", k.name, scheme));
        assert_eq!(run.outcome.ret, golden.0, "{} ret under {scheme:?}", k.name);
        assert_eq!(
            data_only(&run.outcome.memory),
            data_only(&golden.1),
            "{} memory under {scheme:?}",
            k.name
        );
    }
}

#[test]
fn baseline_matches_interpreter_on_all_kernels() {
    check_scheme(Scheme::Baseline);
}

#[test]
fn turnstile_matches_interpreter_on_all_kernels() {
    check_scheme(Scheme::Turnstile);
}

#[test]
fn turnpike_matches_interpreter_on_all_kernels() {
    check_scheme(Scheme::Turnpike);
}

#[test]
fn middle_ladder_rungs_match_interpreter() {
    check_scheme(Scheme::FastRelease);
    check_scheme(Scheme::FastReleasePruneLicm);
}

#[test]
fn all_schemes_agree_with_each_other_on_a_sample() {
    let kernels = all_kernels(Scale::Smoke);
    for k in kernels.iter().step_by(7) {
        let mut results = Vec::new();
        for s in Scheme::LADDER {
            let run = run_kernel(&k.program, &RunSpec::new(s))
                .unwrap_or_else(|e| panic!("{}/{s:?}: {e}", k.name));
            results.push((s, run.outcome.ret, data_only(&run.outcome.memory)));
        }
        for w in results.windows(2) {
            assert_eq!(w[0].1, w[1].1, "{}: {:?} vs {:?}", k.name, w[0].0, w[1].0);
            assert_eq!(w[0].2, w[1].2, "{}: {:?} vs {:?}", k.name, w[0].0, w[1].0);
        }
    }
}

#[test]
fn machine_encoding_round_trips_compiled_kernels() {
    for k in all_kernels(Scale::Smoke).iter().step_by(5) {
        let cc = Scheme::Turnpike.compiler_config(4);
        let out = turnpike::compiler::compile(&k.program, &cc)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        let bytes = turnpike::isa::encode_program(&out.program.insts)
            .unwrap_or_else(|e| panic!("{}: encode: {e}", k.name));
        let back = turnpike::isa::decode_program(&bytes)
            .unwrap_or_else(|e| panic!("{}: decode: {e}", k.name));
        assert_eq!(back, out.program.insts, "{}", k.name);
    }
}

#[test]
fn compiled_kernels_validate_structurally() {
    for k in all_kernels(Scale::Smoke) {
        for scheme in [Scheme::Baseline, Scheme::Turnstile, Scheme::Turnpike] {
            let cc = scheme.compiler_config(4);
            let out = turnpike::compiler::compile(&k.program, &cc)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            out.program
                .validate()
                .unwrap_or_else(|e| panic!("{}/{scheme:?}: {e}", k.name));
        }
    }
}
