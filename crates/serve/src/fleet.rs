//! Open-loop load generation against a multi-worker fleet.
//!
//! The closed-loop generator in [`crate::client::loadgen`] measures a
//! server under *self-limiting* load: each client submits its next job
//! only after the previous one finishes, so latency spikes throttle the
//! offered rate and hide themselves. Tail percentiles under a fixed
//! offered rate need **open-loop** arrivals — jobs launch on a schedule
//! computed before the run starts, whether or not earlier jobs completed
//! (the coordinated-omission lesson).
//!
//! [`loadgen_fleet`] precomputes a deterministic, seeded arrival schedule
//! ([`Arrival::Poisson`] or [`Arrival::Bursty`]), assigns jobs round-robin
//! across the fleet's worker addresses, and launches one submission thread
//! per job at its scheduled instant. Latency is measured from the
//! *scheduled* arrival, not the actual send, so queueing delay inside the
//! generator counts against the server — which is what a p99.9 claim is
//! supposed to mean. Per-worker utilization comes from the `busy_us` /
//! `uptime_us` deltas in each server's `stats` snapshot.

use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use turnpike_metrics::Histogram;

use crate::client::{Backoff, Client, Outcome};
use crate::json::Json;
use crate::proto::JobRequest;

/// Open-loop arrival process for [`loadgen_fleet`]. Both are seeded and
/// fully deterministic: the same config always produces the same schedule.
#[derive(Debug, Clone, Copy)]
pub enum Arrival {
    /// Memoryless arrivals at `rate_per_s`: exponential inter-arrival
    /// gaps via inverse-CDF sampling. The steady-state model.
    Poisson {
        /// Mean offered rate, jobs per second.
        rate_per_s: f64,
    },
    /// `burst` jobs back-to-back, then `idle_ms` of silence, repeated.
    /// The worst-case model: every burst slams the admission queue at
    /// once, probing rejection + retry behavior.
    Bursty {
        /// Jobs per burst.
        burst: usize,
        /// Quiet gap between bursts, milliseconds.
        idle_ms: u64,
    },
}

impl Arrival {
    /// Offsets from the run's start for `jobs` arrivals, nondecreasing.
    fn schedule(self, jobs: usize, seed: u64) -> Vec<Duration> {
        let mut out = Vec::with_capacity(jobs);
        match self {
            Arrival::Poisson { rate_per_s } => {
                let rate = rate_per_s.max(1e-9);
                let mut rng = seed;
                let mut t = 0.0f64;
                for _ in 0..jobs {
                    // Inverse CDF: gap = -ln(U)/λ with U in (0, 1].
                    let u = (splitmix(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
                    t += -(1.0 - u).max(f64::MIN_POSITIVE).ln() / rate;
                    out.push(Duration::from_secs_f64(t));
                }
            }
            Arrival::Bursty { burst, idle_ms } => {
                let burst = burst.max(1);
                for i in 0..jobs {
                    out.push(Duration::from_millis((i / burst) as u64 * idle_ms));
                }
            }
        }
        out
    }

    /// Tag for the report block.
    pub fn name(self) -> &'static str {
        match self {
            Arrival::Poisson { .. } => "poisson",
            Arrival::Bursty { .. } => "bursty",
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parameters for one open-loop fleet run.
#[derive(Debug, Clone)]
pub struct FleetLoadgenConfig {
    /// Total jobs to offer across the fleet.
    pub jobs: usize,
    /// Arrival process.
    pub arrival: Arrival,
    /// Schedule (and backoff jitter) seed.
    pub seed: u64,
    /// Template request; each arrival gets a unique `tag`.
    pub request: JobRequest,
    /// Give up on a job after this many `overloaded` retries.
    pub max_retries: usize,
}

/// One worker's share of a fleet run, from its `stats` deltas.
#[derive(Debug, Clone)]
pub struct WorkerLoad {
    /// The worker's address.
    pub addr: SocketAddr,
    /// Jobs this generator completed against this worker.
    pub completed: u64,
    /// Worker-pool busy time accrued during the run, microseconds.
    pub busy_us: u64,
    /// Server uptime elapsed during the run, microseconds.
    pub uptime_us: u64,
    /// The server's worker-thread count.
    pub workers: u64,
}

impl WorkerLoad {
    /// Fraction of the worker pool's capacity spent executing jobs during
    /// the run: `busy / (uptime × workers)`, clamped to `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let capacity = self.uptime_us.saturating_mul(self.workers.max(1));
        if capacity == 0 {
            return 0.0;
        }
        (self.busy_us as f64 / capacity as f64).clamp(0.0, 1.0)
    }
}

/// What an open-loop fleet run observed.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Jobs offered.
    pub jobs: usize,
    /// Jobs that reached `done`.
    pub completed: usize,
    /// Jobs that terminated in `error`/`shutting_down` or exhausted
    /// retries.
    pub errors: usize,
    /// `overloaded` rejections observed across all jobs.
    pub overloaded: u64,
    /// Schedule-to-done latency, microseconds (includes generator-side
    /// launch delay — coordinated omission is counted, not hidden).
    pub latency: Histogram,
    /// Wall-clock of the whole run, microseconds.
    pub wall_us: u64,
    /// Per-worker load, in `addrs` order.
    pub workers: Vec<WorkerLoad>,
}

impl FleetReport {
    /// Completed jobs per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.completed as f64 * 1.0e6 / self.wall_us as f64
    }

    /// Single-line JSON rendering with fixed key order.
    pub fn to_json(&self) -> String {
        let mut workers = String::from("[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                workers.push(',');
            }
            workers.push_str(&format!(
                "{{\"addr\":\"{}\",\"completed\":{},\"busy_us\":{},\"uptime_us\":{},\
                 \"workers\":{},\"utilization\":{:.4}}}",
                w.addr,
                w.completed,
                w.busy_us,
                w.uptime_us,
                w.workers,
                w.utilization(),
            ));
        }
        workers.push(']');
        format!(
            "{{\"jobs\":{},\"completed\":{},\"errors\":{},\"overloaded\":{},\"wall_us\":{},\
             \"throughput_jobs_per_s\":{:.3},\"latency_p50_us\":{},\"latency_p99_us\":{},\
             \"latency_p999_us\":{},\"latency_max_us\":{},\"per_worker\":{}}}",
            self.jobs,
            self.completed,
            self.errors,
            self.overloaded,
            self.wall_us,
            self.throughput(),
            self.latency.quantile(0.50).round() as u64,
            self.latency.quantile(0.99).round() as u64,
            self.latency.quantile(0.999).round() as u64,
            self.latency.max(),
            workers,
        )
    }
}

/// Read `(busy_us, uptime_us, workers)` from one server's stats snapshot.
fn load_sample(addr: SocketAddr) -> std::io::Result<(u64, u64, u64)> {
    let body = Client::connect(addr)?.stats()?;
    let v = Json::parse(&body).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad stats: {e}"))
    })?;
    let field = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
    Ok((field("busy_us"), field("uptime_us"), field("workers")))
}

struct FleetTally {
    completed: usize,
    errors: usize,
    overloaded: u64,
    per_worker_completed: Vec<u64>,
    latency: Histogram,
}

/// Offer `cfg.jobs` jobs to the fleet at `addrs` on the precomputed
/// open-loop schedule, round-robin across workers, and report tail latency
/// plus per-worker utilization.
///
/// # Errors
///
/// Propagates failures to sample any worker's stats (before or after the
/// run); per-job connection and submission failures are tallied as errors,
/// not raised.
///
/// # Panics
///
/// Panics if `addrs` is empty.
pub fn loadgen_fleet(
    addrs: &[SocketAddr],
    cfg: &FleetLoadgenConfig,
) -> std::io::Result<FleetReport> {
    assert!(!addrs.is_empty(), "need at least one worker address");
    let schedule = cfg.arrival.schedule(cfg.jobs, cfg.seed);
    let before: Vec<(u64, u64, u64)> = addrs
        .iter()
        .map(|&a| load_sample(a))
        .collect::<std::io::Result<_>>()?;

    let tally = Mutex::new(FleetTally {
        completed: 0,
        errors: 0,
        overloaded: 0,
        per_worker_completed: vec![0; addrs.len()],
        latency: Histogram::new(),
    });
    let started = Instant::now();
    std::thread::scope(|scope| {
        for (i, &offset) in schedule.iter().enumerate() {
            let tally = &tally;
            let worker_idx = i % addrs.len();
            let addr = addrs[worker_idx];
            let mut req = cfg.request.clone();
            req.tag = format!("fleet-{i}");
            let seed = cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            scope.spawn(move || {
                // Open loop: hold until the scheduled instant regardless of
                // what every other job is doing.
                let until = started + offset;
                let now = Instant::now();
                if until > now {
                    std::thread::sleep(until - now);
                }
                let mut backoff = Backoff::new(1, 1_000, seed);
                let outcome = (|| -> std::io::Result<bool> {
                    let mut client = Client::connect(addr)?;
                    let mut retries = 0usize;
                    loop {
                        match client.submit(&req)? {
                            Outcome::Done { .. } => return Ok(true),
                            Outcome::Overloaded { retry_after_ms } => {
                                tally.lock().unwrap().overloaded += 1;
                                retries += 1;
                                if retries > cfg.max_retries {
                                    return Ok(false);
                                }
                                std::thread::sleep(backoff.next_delay(retry_after_ms));
                            }
                            Outcome::ShuttingDown | Outcome::Error { .. } => return Ok(false),
                        }
                    }
                })();
                // Latency from the *scheduled* arrival: generator launch
                // delay counts against the tail, never hides in it.
                let us = started.elapsed().saturating_sub(offset).as_micros() as u64;
                let mut t = tally.lock().unwrap();
                match outcome {
                    Ok(true) => {
                        t.completed += 1;
                        t.per_worker_completed[worker_idx] += 1;
                        t.latency.record(us);
                    }
                    Ok(false) | Err(_) => t.errors += 1,
                }
            });
        }
    });
    let wall_us = started.elapsed().as_micros() as u64;

    let after: Vec<(u64, u64, u64)> = addrs
        .iter()
        .map(|&a| load_sample(a))
        .collect::<std::io::Result<_>>()?;
    let tally = tally.into_inner().unwrap();
    let workers = addrs
        .iter()
        .zip(before.iter().zip(&after))
        .enumerate()
        .map(
            |(i, (&addr, (&(b_busy, b_up, _), &(a_busy, a_up, n))))| WorkerLoad {
                addr,
                completed: tally.per_worker_completed[i],
                busy_us: a_busy.saturating_sub(b_busy),
                uptime_us: a_up.saturating_sub(b_up),
                workers: n,
            },
        )
        .collect();

    Ok(FleetReport {
        jobs: cfg.jobs,
        completed: tally.completed,
        errors: tally.errors,
        overloaded: tally.overloaded,
        latency: tally.latency,
        wall_us,
        workers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_schedule_is_deterministic_and_matches_the_rate() {
        let a = Arrival::Poisson { rate_per_s: 100.0 };
        let s1 = a.schedule(500, 9);
        let s2 = a.schedule(500, 9);
        assert_eq!(s1, s2, "same seed, same schedule");
        assert_ne!(s1, a.schedule(500, 10), "seed matters");
        assert!(s1.windows(2).all(|w| w[0] <= w[1]), "nondecreasing");
        // 500 arrivals at 100/s ≈ 5s of schedule; allow wide slack, the
        // point is the right order of magnitude, not a statistics test.
        let total = s1.last().unwrap().as_secs_f64();
        assert!((2.5..10.0).contains(&total), "total span {total}s");
    }

    #[test]
    fn bursty_schedule_groups_arrivals_and_spaces_bursts() {
        let a = Arrival::Bursty {
            burst: 4,
            idle_ms: 50,
        };
        let s = a.schedule(10, 0);
        assert_eq!(s[0..4], [Duration::ZERO; 4], "first burst is immediate");
        assert!(s[4..8].iter().all(|&d| d == Duration::from_millis(50)));
        assert!(s[8..10].iter().all(|&d| d == Duration::from_millis(100)));
    }

    #[test]
    fn utilization_is_busy_over_capacity() {
        let w = WorkerLoad {
            addr: "127.0.0.1:1".parse().unwrap(),
            completed: 10,
            busy_us: 500_000,
            uptime_us: 1_000_000,
            workers: 2,
        };
        assert!((w.utilization() - 0.25).abs() < 1e-9);
        let idle = WorkerLoad {
            uptime_us: 0,
            ..w.clone()
        };
        assert_eq!(idle.utilization(), 0.0, "no capacity, no utilization");
    }
}
