//! Memoizing, parallel evaluation engine.
//!
//! The paper's evaluation is a grid — 36 kernels × schemes × WCDL × SB/CLQ
//! sensitivity points — and most of that grid repeats work: every figure
//! re-normalizes against the same baseline run, and every sim point of a
//! WCDL sweep recompiles the identical (kernel, compiler config) pair. The
//! engine removes both redundancies and fans the remainder out:
//!
//! * a **compile cache** keyed by `(KernelId, CompilerConfig)` — each kernel
//!   compiles once per scheme across *all* figures;
//! * a **run cache** keyed by `(KernelId, CompilerConfig, SimConfig)` — the
//!   baseline cycle count (and any other repeated sim point) is simulated
//!   once and shared, so e.g. fig19/fig20/fig22/summary all reuse one
//!   baseline run per kernel;
//! * a **parallel executor** ([`Engine::per_kernel`]) that evaluates the
//!   kernels of a figure concurrently via [`par_map`], gathering results in
//!   input order so table output is byte-identical to the serial harness.
//!
//! Clones share caches ([`Engine::with_threads`]), which is how the
//! `reproduce all` driver splits its thread budget across figures while
//! still deduplicating compiles and baseline runs globally.
//!
//! Caching is sound because kernel programs are pure functions of their
//! [`KernelId`] (see `turnpike_workloads::catalog`) and both configuration
//! types are plain-data `Eq + Hash` keys covering every knob that affects
//! the output.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use turnpike_compiler::{compile, CompileOutput, CompilerConfig};
use turnpike_metrics::{Counter, Hist, MetricSet};
use turnpike_resilience::{par_map, run_compiled, RunResult, RunSpec, Scheme};
use turnpike_sim::SimConfig;
use turnpike_workloads::{Kernel, KernelId};

type CompileKey = (KernelId, CompilerConfig);
type RunKey = (KernelId, CompilerConfig, SimConfig);

#[derive(Default)]
struct Caches {
    compiles: Mutex<HashMap<CompileKey, Arc<CompileOutput>>>,
    runs: Mutex<HashMap<RunKey, Arc<RunResult>>>,
    /// Distinct compilations performed (cache insertions; every call when
    /// the cache is disabled). When concurrent threads race on one key the
    /// loser's work is discarded uncounted, so with caching on this equals
    /// the number of distinct `(kernel, config)` pairs ever compiled.
    compiles_done: AtomicUsize,
    /// Distinct simulations performed, same accounting as `compiles_done`.
    sims_done: AtomicUsize,
    /// Harness observability: `bench.*` cache hit/miss counters, stage
    /// wall-clock histograms (`bench.hist.*`), and the `sim.hist.*` latency
    /// histograms merged from every simulation actually executed.
    metrics: Mutex<MetricSet>,
}

/// Figure-scoped run-cache traffic. Each [`Engine::figure_scope`] clone gets
/// a fresh pair, so concurrent figures sharing one global cache can still
/// report exactly how much of *their* grid was served from it.
#[derive(Default)]
struct ScopeCounters {
    run_hits: AtomicUsize,
    run_misses: AtomicUsize,
}

/// Shared-cache grid executor. Cheap to clone; clones share caches and
/// counters, so figure generators can be handed per-figure thread budgets
/// while deduplicating work globally.
#[derive(Clone)]
pub struct Engine {
    caches: Arc<Caches>,
    scope: Arc<ScopeCounters>,
    threads: usize,
    cache: bool,
}

impl Engine {
    /// An engine with fresh caches using up to `threads` worker threads for
    /// [`Engine::per_kernel`] fan-out. `threads == 1` is exactly the serial
    /// harness (no thread overhead, same iteration order).
    pub fn new(threads: usize) -> Self {
        Engine {
            caches: Arc::new(Caches::default()),
            scope: Arc::new(ScopeCounters::default()),
            threads: threads.max(1),
            cache: true,
        }
    }

    /// A serial engine (memoization still on).
    pub fn serial() -> Self {
        Engine::new(1)
    }

    /// Same caches, different thread budget. Used by `reproduce all` to run
    /// figures concurrently with `total / figures` threads each.
    pub fn with_threads(&self, threads: usize) -> Self {
        Engine {
            caches: Arc::clone(&self.caches),
            scope: Arc::clone(&self.scope),
            threads: threads.max(1),
            cache: self.cache,
        }
    }

    /// Same caches and thread budget, fresh figure-scoped counters.
    /// `reproduce` wraps each figure's generator in one of these so
    /// `BENCH_reproduce.json` can report per-figure cache-hit status even
    /// when figures run concurrently against the shared caches.
    pub fn figure_scope(&self) -> Self {
        Engine {
            caches: Arc::clone(&self.caches),
            scope: Arc::new(ScopeCounters::default()),
            threads: self.threads,
            cache: self.cache,
        }
    }

    /// `(hits, misses)` of the run cache as seen by this figure scope (see
    /// [`Engine::figure_scope`]); counts simulation requests only, since
    /// sims dominate wall time. A fully-cached figure shows `misses == 0`
    /// with `hits > 0`.
    pub fn figure_cache_stats(&self) -> (usize, usize) {
        (
            self.scope.run_hits.load(Ordering::Relaxed),
            self.scope.run_misses.load(Ordering::Relaxed),
        )
    }

    /// Disable memoization (every call compiles and simulates from scratch).
    /// This is the seed harness's behavior, kept for perf comparisons.
    pub fn without_cache(mut self) -> Self {
        self.cache = false;
        self
    }

    /// Worker threads used by [`Engine::per_kernel`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether memoization is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache
    }

    /// Number of compilations performed so far (cache insertions; racing
    /// duplicate work is discarded uncounted — see the `Caches` field docs).
    pub fn compile_count(&self) -> usize {
        self.caches.compiles_done.load(Ordering::Relaxed)
    }

    /// Number of simulations performed so far.
    pub fn sim_count(&self) -> usize {
        self.caches.sims_done.load(Ordering::Relaxed)
    }

    /// Snapshot of the harness metrics registry: `bench.*` cache hit/miss
    /// counters, compile/sim wall-clock histograms, and the `sim.hist.*`
    /// latency histograms merged across every simulation the engine actually
    /// executed (cache hits contribute nothing twice). Shared across clones.
    pub fn metrics(&self) -> MetricSet {
        self.caches.metrics.lock().expect("bench metrics").clone()
    }

    /// Count one generated figure/table into the registry (reproduce's
    /// stage accounting).
    pub fn note_figure(&self) {
        self.caches
            .metrics
            .lock()
            .expect("bench metrics")
            .add(Counter::BenchFigures, 1);
    }

    /// Compile `kernel` under `cc`, memoized.
    ///
    /// # Panics
    ///
    /// Panics (with the kernel name) on compile errors — figure generators
    /// treat any failure on catalog kernels as a harness bug.
    pub fn compile(&self, kernel: &Kernel, cc: &CompilerConfig) -> Arc<CompileOutput> {
        let do_compile = || {
            let t0 = Instant::now();
            let out = Arc::new(
                compile(&kernel.program, cc)
                    .unwrap_or_else(|e| panic!("{}: compile: {e}", kernel.name)),
            );
            let us = t0.elapsed().as_micros() as u64;
            let mut m = self.caches.metrics.lock().expect("bench metrics");
            m.add(Counter::BenchCompileMisses, 1);
            m.record_hist(Hist::CompileMicros, us);
            drop(m);
            out
        };
        if !self.cache {
            self.caches.compiles_done.fetch_add(1, Ordering::Relaxed);
            return do_compile();
        }
        let key = (kernel.id(), cc.clone());
        if let Some(hit) = self
            .caches
            .compiles
            .lock()
            .expect("compile cache")
            .get(&key)
        {
            let hit = Arc::clone(hit);
            self.caches
                .metrics
                .lock()
                .expect("bench metrics")
                .add(Counter::BenchCompileHits, 1);
            return hit;
        }
        // Compile outside the lock so distinct keys compile concurrently;
        // first insertion wins and racing duplicates are dropped uncounted.
        let out = do_compile();
        match self
            .caches
            .compiles
            .lock()
            .expect("compile cache")
            .entry(key)
        {
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(v) => {
                self.caches.compiles_done.fetch_add(1, Ordering::Relaxed);
                Arc::clone(v.insert(out))
            }
        }
    }

    /// Compile and simulate under explicit configurations, memoized. This is
    /// the ablation/sensitivity entry point; [`Engine::run`] wraps it for
    /// [`RunSpec`]-shaped points.
    ///
    /// # Panics
    ///
    /// Panics (with the kernel name) on compile or simulation errors.
    pub fn run_configs(
        &self,
        kernel: &Kernel,
        cc: &CompilerConfig,
        sc: &SimConfig,
    ) -> Arc<RunResult> {
        // Every simulation the engine executes records latency histograms:
        // recording never changes the timing model, and keying the cache on
        // the flipped config keeps hit/miss behavior uniform.
        let mut sc = sc.clone();
        sc.histograms = true;
        let do_run = |compiled: &CompileOutput| {
            let t0 = Instant::now();
            let r = Arc::new(
                run_compiled(compiled, &sc).unwrap_or_else(|e| panic!("{}: {e}", kernel.name)),
            );
            let us = t0.elapsed().as_micros() as u64;
            let mut m = self.caches.metrics.lock().expect("bench metrics");
            m.add(Counter::BenchRunMisses, 1);
            m.record_hist(Hist::SimMicros, us);
            for k in [Hist::SbResidency, Hist::VerifyLatency] {
                if let Some(h) = r.metrics.hist(k) {
                    m.merge_hist(k, h);
                }
            }
            drop(m);
            r
        };
        if !self.cache {
            self.caches.sims_done.fetch_add(1, Ordering::Relaxed);
            self.scope.run_misses.fetch_add(1, Ordering::Relaxed);
            return do_run(&self.compile(kernel, cc));
        }
        let key = (kernel.id(), cc.clone(), sc.clone());
        if let Some(hit) = self.caches.runs.lock().expect("run cache").get(&key) {
            let hit = Arc::clone(hit);
            self.caches
                .metrics
                .lock()
                .expect("bench metrics")
                .add(Counter::BenchRunHits, 1);
            self.scope.run_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.scope.run_misses.fetch_add(1, Ordering::Relaxed);
        let result = do_run(&self.compile(kernel, cc));
        match self.caches.runs.lock().expect("run cache").entry(key) {
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(v) => {
                self.caches.sims_done.fetch_add(1, Ordering::Relaxed);
                Arc::clone(v.insert(result))
            }
        }
    }

    /// Run `kernel` under `spec`, memoized.
    ///
    /// # Panics
    ///
    /// Panics (with the kernel name) on compile or simulation errors.
    pub fn run(&self, kernel: &Kernel, spec: &RunSpec) -> Arc<RunResult> {
        self.run_configs(kernel, &spec.compiler_config(), &spec.sim_config())
    }

    /// Baseline cycle count for `kernel` at the given store-buffer size —
    /// the denominator of every normalized-time figure, simulated once per
    /// (kernel, SB) across the whole evaluation.
    ///
    /// # Panics
    ///
    /// Panics (with the kernel name) on compile or simulation errors.
    pub fn baseline_cycles(&self, kernel: &Kernel, sb_size: u32) -> f64 {
        self.run(kernel, &RunSpec::new(Scheme::Baseline).with_sb(sb_size))
            .metrics
            .counter(turnpike_metrics::Counter::Cycles) as f64
    }

    /// Normalized execution time of `spec` relative to the unprotected
    /// baseline on the same kernel.
    ///
    /// # Panics
    ///
    /// Panics (with the kernel name) on compile or simulation errors.
    pub fn normalized(&self, kernel: &Kernel, spec: &RunSpec) -> f64 {
        let cycles = self
            .run(kernel, spec)
            .metrics
            .counter(turnpike_metrics::Counter::Cycles) as f64;
        cycles / self.baseline_cycles(kernel, spec.sb_size)
    }

    /// Evaluate `f` over every kernel, in parallel up to the engine's thread
    /// budget, returning results in input order (so tables built from the
    /// output are byte-identical at any thread count).
    pub fn per_kernel<R, F>(&self, kernels: &[Kernel], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Kernel) -> R + Sync,
    {
        par_map(kernels, self.threads, |_, k| f(k))
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_workloads::{kernel_by_name, Scale, Suite};

    fn kernel() -> Kernel {
        kernel_by_name(Suite::Cpu2006, "bwaves", Scale::Smoke).expect("known kernel")
    }

    #[test]
    fn run_is_memoized() {
        let e = Engine::serial();
        let k = kernel();
        let spec = RunSpec::new(Scheme::Turnpike);
        let a = e.run(&k, &spec);
        let b = e.run(&k, &spec);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(e.compile_count(), 1);
        assert_eq!(e.sim_count(), 1);
    }

    #[test]
    fn distinct_sim_points_share_one_compile() {
        let e = Engine::serial();
        let k = kernel();
        for wcdl in [10, 30, 50] {
            e.run(&k, &RunSpec::new(Scheme::Turnpike).with_wcdl(wcdl));
        }
        assert_eq!(e.compile_count(), 1, "one compile per (kernel, config)");
        assert_eq!(e.sim_count(), 3, "one sim per WCDL point");
    }

    #[test]
    fn without_cache_repeats_work() {
        let e = Engine::serial().without_cache();
        let k = kernel();
        let spec = RunSpec::new(Scheme::Turnstile);
        let a = e.run(&k, &spec);
        let b = e.run(&k, &spec);
        assert_eq!(e.compile_count(), 2);
        assert_eq!(e.sim_count(), 2);
        assert_eq!(
            a.metrics.counter(turnpike_metrics::Counter::Cycles),
            b.metrics.counter(turnpike_metrics::Counter::Cycles)
        );
    }

    #[test]
    fn clones_share_caches() {
        let e = Engine::new(4);
        let k = kernel();
        e.run(&k, &RunSpec::new(Scheme::Baseline));
        let clone = e.with_threads(1);
        clone.run(&k, &RunSpec::new(Scheme::Baseline));
        assert_eq!(e.sim_count(), 1);
        assert_eq!(clone.sim_count(), 1);
    }

    #[test]
    fn registry_tracks_spans_and_cache_traffic() {
        let e = Engine::serial();
        let k = kernel();
        let spec = RunSpec::new(Scheme::Turnpike);
        e.run(&k, &spec);
        e.run(&k, &spec);
        e.note_figure();
        let m = e.metrics();
        assert_eq!(m.counter(Counter::BenchCompileMisses), 1);
        assert_eq!(m.counter(Counter::BenchRunMisses), 1);
        assert_eq!(m.counter(Counter::BenchRunHits), 1);
        assert_eq!(m.counter(Counter::BenchFigures), 1);
        // Stage wall-clock spans landed in the histograms...
        assert_eq!(m.hist(Hist::CompileMicros).unwrap().count(), 1);
        assert_eq!(m.hist(Hist::SimMicros).unwrap().count(), 1);
        // ...and the executed sim contributed its latency distributions
        // exactly once (the cache hit added nothing).
        let verify = m.hist(Hist::VerifyLatency).expect("regions verified");
        assert_eq!(
            verify.count(),
            e.run(&k, &spec)
                .metrics
                .hist(Hist::VerifyLatency)
                .unwrap()
                .count()
        );
        // Turnstile has no fast paths: every store quarantines, so its run
        // populates the SB-residency distribution too.
        e.run(&k, &RunSpec::new(Scheme::Turnstile));
        assert!(e.metrics().hist(Hist::SbResidency).unwrap().count() > 0);
    }

    #[test]
    fn parallel_normalized_matches_serial() {
        let ks: Vec<Kernel> = ["bwaves", "hmmer", "mcf", "gcc"]
            .iter()
            .map(|n| kernel_by_name(Suite::Cpu2006, n, Scale::Smoke).unwrap())
            .collect();
        let spec = RunSpec::new(Scheme::Turnpike);
        let serial = Engine::new(1);
        let par = Engine::new(4);
        let a = serial.per_kernel(&ks, |k| serial.normalized(k, &spec));
        let b = par.per_kernel(&ks, |k| par.normalized(k, &spec));
        assert_eq!(a, b);
    }
}
