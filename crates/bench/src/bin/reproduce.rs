//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce <target> [--smoke] [--json] [--threads N] [--no-cache]
//! reproduce trace <kernel> [--scheme S] [--smoke] [--format chrome|jsonl] [--out FILE]
//! reproduce --list
//!
//! targets: fig4 fig14 fig15 fig18 fig19 fig20 fig21 fig22 fig23
//!          fig24 fig25 fig26 table1 ablation clq colors summary all
//! ```
//!
//! `--list` prints every target with the paper figure/table it reproduces.
//! `--smoke` runs the reduced-size kernels (fast; used by CI); the default
//! is full evaluation scale. `--json` prints machine-readable output.
//! `--threads N` caps the evaluation engine's worker threads (default: all
//! hardware threads); stdout is byte-identical at any thread count.
//! `--no-cache` disables the engine's compile/run memoization (the seed
//! harness's behavior, kept for perf comparisons).
//!
//! `trace` exports one kernel's resilience-event timeline under a scheme
//! (default `turnpike`; see `Scheme::cli_name` for the ladder names) as
//! Chrome trace-event JSON — load it in ui.perfetto.dev — or as raw JSONL.
//! Resilient schemes get one deterministic datapath strike at 25% of the
//! fault-free cycle count, so the export always shows a full
//! strike→detection→recovery arc.
//!
//! Every generating invocation also writes `BENCH_reproduce.json` to the
//! current directory — target, scale, threads, cache flag, total plus
//! per-figure wall-clock milliseconds, and a histogram summary block
//! (p50/p99/max of SB residency, verification latency, detection latency,
//! recovery penalty, and compile/sim stage times) — so harness performance
//! is tracked over time. Timing goes there and to stderr, never to stdout.

use std::process::ExitCode;
use std::time::Instant;
use turnpike_bench::{
    ablation, clq_designs, colors, export_trace, fault_probe_metrics, fig14, fig15, fig18, fig19,
    fig20, fig21, fig22, fig23, fig24, fig25, fig26, fig4, find_kernel, hist_summary_json,
    json_string, summary, table1, Engine, Table, TraceFormat,
};
use turnpike_metrics::{Hist, MetricSet};
use turnpike_resilience::{par_map, RunSpec, Scheme};
use turnpike_workloads::Scale;

/// One reproducible figure/table: its CLI name, the paper artifact it
/// regenerates, and its generator. This registry is the single source for
/// dispatch, `--list`, the usage message, and what `all` expands to.
struct Target {
    name: &'static str,
    paper_ref: &'static str,
    generate: fn(&Engine, Scale) -> Table,
}

/// Every target, in `all` output order.
const TARGETS: [Target; 17] = [
    Target {
        name: "ablation",
        paper_ref: "§6 ablation: Turnpike minus one technique at a time",
        generate: ablation,
    },
    Target {
        name: "fig4",
        paper_ref: "Figure 4: checkpoint/instruction ratio, 40- vs 4-entry SB",
        generate: fig4,
    },
    Target {
        name: "fig14",
        paper_ref: "Figure 14: ideal vs compact CLQ runtime overhead",
        generate: fig14,
    },
    Target {
        name: "fig15",
        paper_ref: "Figure 15: stores detected WAR-free, ideal vs compact CLQ",
        generate: fig15,
    },
    Target {
        name: "fig18",
        paper_ref: "Figure 18: detection latency vs deployed acoustic sensors",
        generate: |_, _| fig18(),
    },
    Target {
        name: "fig19",
        paper_ref: "Figure 19: Turnpike normalized time across WCDL 10..50",
        generate: fig19,
    },
    Target {
        name: "fig20",
        paper_ref: "Figure 20: Turnstile normalized time across WCDL 10..50",
        generate: fig20,
    },
    Target {
        name: "fig21",
        paper_ref: "Figure 21: eight-configuration optimization ladder",
        generate: fig21,
    },
    Target {
        name: "fig22",
        paper_ref: "Figure 22: store-buffer size sensitivity at WCDL 10",
        generate: fig22,
    },
    Target {
        name: "fig23",
        paper_ref: "Figure 23: breakdown of all stores into release categories",
        generate: fig23,
    },
    Target {
        name: "fig24",
        paper_ref: "Figure 24: avg/max dynamic CLQ entries populated",
        generate: fig24,
    },
    Target {
        name: "fig25",
        paper_ref: "Figure 25: 2- vs 4-entry compact CLQ normalized time",
        generate: fig25,
    },
    Target {
        name: "fig26",
        paper_ref: "Figure 26: dynamic region size and code-size increase",
        generate: fig26,
    },
    Target {
        name: "table1",
        paper_ref: "Table 1: hardware cost comparison (area/energy, 22 nm)",
        generate: |_, _| table1(),
    },
    Target {
        name: "colors",
        paper_ref: "extension: checkpoint color-pool sizing sweep",
        generate: colors,
    },
    Target {
        name: "clq",
        paper_ref: "extension: three CLQ designs side by side (§4.3.1)",
        generate: clq_designs,
    },
    Target {
        name: "summary",
        paper_ref: "digest: headline geomeans of every scheme",
        generate: summary,
    },
];

fn target_by_name(name: &str) -> Option<&'static Target> {
    TARGETS.iter().find(|t| t.name == name)
}

/// The target list rendered from the registry, one aligned line per target.
fn target_listing() -> String {
    let width = TARGETS
        .iter()
        .map(|t| t.name.len())
        .max()
        .unwrap_or(0)
        .max("all".len());
    let mut out = String::new();
    for t in &TARGETS {
        out.push_str(&format!("  {:width$}  {}\n", t.name, t.paper_ref));
    }
    out.push_str(&format!(
        "  {:width$}  every target above, in that order\n",
        "all"
    ));
    out
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: reproduce <target> [--smoke] [--json] [--threads N] [--no-cache]\n\
         \x20      reproduce trace <kernel> [--scheme S] [--smoke] [--format chrome|jsonl] [--out FILE]\n\
         \x20      reproduce --list\n\
         targets:\n{}",
        target_listing()
    );
    ExitCode::from(2)
}

/// `reproduce trace <kernel> [--scheme S] [--smoke|--full] [--format F]
/// [--out FILE]` — export one kernel's resilience-event timeline.
fn trace_main(args: &[String]) -> ExitCode {
    let mut kernel: Option<String> = None;
    let mut scheme = Scheme::Turnpike;
    let mut scale = Scale::Full;
    let mut format = TraceFormat::Chrome;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--scheme" => {
                let Some(s) = it.next().and_then(|v| Scheme::parse(v)) else {
                    eprintln!(
                        "reproduce trace: --scheme takes one of: {}",
                        [Scheme::Baseline]
                            .iter()
                            .chain(Scheme::LADDER.iter())
                            .map(|s| s.cli_name())
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                    return ExitCode::from(2);
                };
                scheme = s;
            }
            "--format" => {
                let Some(f) = it.next().and_then(|v| TraceFormat::parse(v)) else {
                    eprintln!("reproduce trace: --format takes 'chrome' or 'jsonl'");
                    return ExitCode::from(2);
                };
                format = f;
            }
            "--out" => {
                let Some(f) = it.next() else {
                    return usage();
                };
                out = Some(f.clone());
            }
            k if kernel.is_none() && !k.starts_with('-') => kernel = Some(k.to_string()),
            _ => return usage(),
        }
    }
    let Some(name) = kernel else {
        return usage();
    };
    let Some(k) = find_kernel(&name, scale) else {
        eprintln!("reproduce trace: unknown kernel '{name}'");
        return ExitCode::from(2);
    };
    let text = match export_trace(&k, &RunSpec::new(scheme), format) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("reproduce trace: {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("reproduce trace: write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "# wrote {path} ({} bytes, {} scheme {}){}",
                text.len(),
                name,
                scheme.cli_name(),
                if format == TraceFormat::Chrome {
                    " — load it in ui.perfetto.dev"
                } else {
                    ""
                }
            );
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// One generated figure: its table, wall-clock, and the run-cache traffic
/// attributed to it (see [`Engine::figure_scope`]).
struct FigureRun {
    table: Table,
    wall_ms: u128,
    run_hits: usize,
    run_misses: usize,
}

fn generate_one(t: &Target, scale: Scale, engine: &Engine) -> FigureRun {
    let scoped = engine.figure_scope();
    let t0 = Instant::now();
    let table = (t.generate)(&scoped, scale);
    scoped.note_figure();
    let (run_hits, run_misses) = scoped.figure_cache_stats();
    FigureRun {
        table,
        wall_ms: t0.elapsed().as_millis(),
        run_hits,
        run_misses,
    }
}

/// Generate the requested tables with per-figure wall-clock. For `all`,
/// figures run concurrently (each with a slice of the thread budget) while
/// compiles and baseline runs dedup through the shared caches; results are
/// gathered in [`TARGETS`] order so output is deterministic.
fn generate(target: &str, scale: Scale, engine: &Engine) -> Option<Vec<FigureRun>> {
    if target != "all" {
        let t = target_by_name(target)?;
        return Some(vec![generate_one(t, scale, engine)]);
    }
    let outer = engine.threads().min(TARGETS.len());
    let inner = (engine.threads() / outer.max(1)).max(1);
    let per_figure = engine.with_threads(inner);
    Some(par_map(&TARGETS, outer, |_, t| {
        generate_one(t, scale, &per_figure)
    }))
}

/// Machine-readable perf record (hand-rolled JSON; see `table.rs`).
fn bench_json(
    target: &str,
    scale: Scale,
    threads: usize,
    cache: bool,
    wall_ms: u128,
    figures: &[FigureRun],
    registry: &MetricSet,
) -> String {
    use turnpike_metrics::Counter;
    let scale_name = match scale {
        Scale::Smoke => "smoke",
        Scale::Full => "full",
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"target\": {},\n", json_string(target)));
    out.push_str(&format!("  \"scale\": {},\n", json_string(scale_name)));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"cache\": {cache},\n"));
    out.push_str(&format!("  \"wall_ms\": {wall_ms},\n"));
    out.push_str(&format!(
        "  \"compile_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
        registry.counter(Counter::BenchCompileHits),
        registry.counter(Counter::BenchCompileMisses)
    ));
    out.push_str(&format!(
        "  \"run_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
        registry.counter(Counter::BenchRunHits),
        registry.counter(Counter::BenchRunMisses)
    ));
    out.push_str(&format!(
        "  \"fork\": {{\"hits\": {}, \"misses\": {}, \"prefix_cycles_saved\": {}}},\n",
        registry.counter(Counter::CampaignForkHits),
        registry.counter(Counter::CampaignForkMisses),
        registry.counter(Counter::CampaignForkCyclesSaved)
    ));
    out.push_str(&format!(
        "  \"histograms\": {},\n",
        hist_summary_json(registry, "  ")
    ));
    out.push_str("  \"figures\": [");
    for (i, f) in figures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // `cached` distinguishes a figure served from the run cache from one
        // that simulated: `wall_ms: 0` alone can't (static tables are also
        // instant). Hit/miss counts make partially-cached figures visible.
        out.push_str(&format!(
            "\n    {{\"id\": {}, \"wall_ms\": {}, \"cached\": {}, \
             \"run_cache\": {{\"hits\": {}, \"misses\": {}}}}}",
            json_string(&f.table.id),
            f.wall_ms,
            f.run_misses == 0 && f.run_hits > 0,
            f.run_hits,
            f.run_misses
        ));
    }
    if !figures.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        return trace_main(&args[1..]);
    }
    let mut target: Option<String> = None;
    let mut scale = Scale::Full;
    let mut json = false;
    let mut cache = true;
    let mut threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                print!("{}", target_listing());
                return ExitCode::SUCCESS;
            }
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--json" => json = true,
            "--no-cache" => cache = false,
            "--threads" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage();
                };
                if n == 0 {
                    return usage();
                }
                threads = n;
            }
            t if target.is_none() && !t.starts_with('-') => target = Some(t.to_string()),
            _ => return usage(),
        }
    }
    let Some(target) = target else {
        return usage();
    };
    if target != "all" && target_by_name(&target).is_none() {
        eprintln!("reproduce: unknown target '{target}'; known targets:");
        eprint!("{}", target_listing());
        return ExitCode::from(2);
    }
    let mut engine = Engine::new(threads);
    if !cache {
        engine = engine.without_cache();
    }
    // Run header on stderr (stdout is golden-diffed): the effective thread
    // count matters because --threads defaults to the machine's available
    // parallelism, so two hosts run the same command differently. Output is
    // byte-identical at any thread count; `--threads 1` additionally makes
    // the execution schedule itself deterministic.
    eprintln!(
        "# reproduce {target}: {threads} threads, {} scale, cache {}",
        match scale {
            Scale::Smoke => "smoke",
            Scale::Full => "full",
        },
        if cache { "on" } else { "off" },
    );
    let t0 = Instant::now();
    let Some(tables) = generate(&target, scale, &engine) else {
        return usage();
    };
    let wall_ms = t0.elapsed().as_millis();
    for f in &tables {
        if json {
            println!("{}", f.table.to_json());
        } else {
            println!("{}", f.table);
        }
    }
    for f in &tables {
        eprintln!("# {}: {} ms", f.table.id, f.wall_ms);
    }
    eprintln!(
        "# total: {wall_ms} ms ({} threads, cache {}, {} compiles, {} sims)",
        threads,
        if cache { "on" } else { "off" },
        engine.compile_count(),
        engine.sim_count()
    );
    // The figure grid is fault-free, so the detection-latency and
    // recovery-penalty histograms need a small seeded strike campaign.
    let mut registry = engine.metrics();
    match fault_probe_metrics(threads) {
        Ok((probe, fork)) => {
            for key in [Hist::DetectLatency, Hist::RecoveryPenalty] {
                if let Some(h) = probe.hist(key) {
                    registry.merge_hist(key, h);
                }
            }
            // Fork accounting feeds the bench registry only — campaign
            // reports stay bit-identical with or without snapshots.
            registry.merge(&fork.to_metrics());
        }
        Err(e) => eprintln!("# warning: fault probe failed: {e}"),
    }
    let record = bench_json(&target, scale, threads, cache, wall_ms, &tables, &registry);
    if let Err(e) = std::fs::write("BENCH_reproduce.json", record) {
        eprintln!("# warning: could not write BENCH_reproduce.json: {e}");
    }
    ExitCode::SUCCESS
}
