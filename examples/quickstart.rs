//! Quickstart: build a small program, compile it with full Turnpike, run it
//! on the simulated in-order core, and compare against Turnstile.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use turnpike::compiler::{compile, CompilerConfig};
use turnpike::ir::{DataSegment, FunctionBuilder, Operand, Program};
use turnpike::sim::{Core, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny kernel: write squares into an array, then sum them back.
    let mut b = FunctionBuilder::new("squares");
    let base = b.param();
    let (i, t, v, acc, c) = (
        b.fresh_reg(),
        b.fresh_reg(),
        b.fresh_reg(),
        b.fresh_reg(),
        b.fresh_reg(),
    );
    let wloop = b.create_block();
    let mid = b.create_block();
    let rloop = b.create_block();
    let done = b.create_block();
    b.mov(i, 0i64);
    b.jump(wloop);
    b.switch_to(wloop);
    b.mul(v, i, Operand::Reg(i));
    b.shl(t, i, 3i64);
    b.add(t, t, Operand::Reg(base));
    b.store(v, t, 0);
    b.add(i, i, 1i64);
    b.cmp_lt(c, i, 64i64);
    b.branch(c, wloop, mid);
    b.switch_to(mid);
    b.mov(i, 0i64);
    b.mov(acc, 0i64);
    b.jump(rloop);
    b.switch_to(rloop);
    b.shl(t, i, 3i64);
    b.add(t, t, Operand::Reg(base));
    b.load(v, t, 0);
    b.add(acc, acc, Operand::Reg(v));
    b.add(i, i, 1i64);
    b.cmp_lt(c, i, 64i64);
    b.branch(c, rloop, done);
    b.switch_to(done);
    b.ret(Some(Operand::Reg(acc)));
    let program = Program::with_params(
        b.finish()?,
        DataSegment::zeroed(0x1_0000, 64),
        vec![0x1_0000],
    );

    // Golden semantics from the reference interpreter.
    let golden = turnpike::ir::interp::golden(&program)?;
    println!("golden result: {:?}", golden.0);

    // Compile + simulate three ways.
    for (label, cc, sc) in [
        (
            "baseline ",
            CompilerConfig::baseline(),
            SimConfig::baseline(),
        ),
        (
            "turnstile",
            CompilerConfig::turnstile(4),
            SimConfig::turnstile(4, 10),
        ),
        (
            "turnpike ",
            CompilerConfig::turnpike(4),
            SimConfig::turnpike(4, 10),
        ),
    ] {
        let compiled = compile(&program, &cc)?;
        let out = Core::new(&compiled.program, sc).run()?;
        println!(
            "{label}: ret={:?} cycles={:>6} ipc={:.2} ckpts={} bypass={:.0}%",
            out.ret,
            out.stats.cycles,
            out.stats.ipc(),
            out.stats.ckpts,
            out.stats.bypass_ratio() * 100.0
        );
        assert_eq!(out.ret, golden.0, "{label} must match the golden run");
    }
    Ok(())
}
