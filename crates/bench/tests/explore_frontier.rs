//! End-to-end guarantees of the design-space explorer, on a tiny grid so
//! the whole suite stays seconds-scale:
//!
//! - the frontier artifact is byte-identical at any thread count;
//! - dispatching the same exploration through a `turnpike-serve` worker
//!   fleet produces the identical bytes;
//! - a resumed exploration (fresh process state, same artifact store)
//!   serves every job from the store and simulates nothing.

use std::sync::Arc;

use turnpike_bench::explore::{frontier_json, run_explore, ExploreConfig, JobRunner};
use turnpike_bench::{Engine, EngineExecutor};
use turnpike_resilience::{CacheGeom, ExploreAxes, Scheme};
use turnpike_serve::{Client, Server, ServerConfig, Store};
use turnpike_sim::ClqKind;
use turnpike_workloads::Scale;

/// One geometry, two color pools: turnstile collapses to 1 canonical
/// point, turnpike keeps both colors — 3 points, every stage exercised.
static TINY_GEOMS: [CacheGeom; 1] = [CacheGeom {
    name: "a53",
    l1_bytes: 64 * 1024,
    l1_ways: 2,
    l2_bytes: 128 * 1024,
    l2_ways: 16,
}];
static TINY_AXES: ExploreAxes = ExploreAxes {
    schemes: &[Scheme::Turnstile, Scheme::Turnpike],
    wcdls: &[10],
    sb_sizes: &[4],
    clqs: &[ClqKind::Compact(2)],
    colors: &[2, 4],
    geoms: &TINY_GEOMS,
};

fn tiny_config() -> ExploreConfig {
    ExploreConfig {
        axes: TINY_AXES,
        scale: Scale::Smoke,
        screen_kernels: vec!["bwaves".into()],
        kernels: vec!["bwaves".into(), "mcf".into()],
        campaign_kernel: "bwaves".into(),
        seed: 7,
        screen_runs: 4,
        ci_half_width: 0.2,
        ci_cap: 8,
        ..ExploreConfig::smoke()
    }
}

fn direct_runner(threads: usize) -> JobRunner {
    JobRunner::Direct {
        exec: EngineExecutor::new(Engine::serial()),
        threads,
    }
}

fn explore_artifact(runner: &JobRunner) -> String {
    let cfg = tiny_config();
    let report = run_explore(runner, &cfg, &mut |_| {}).expect("tiny exploration");
    frontier_json(&cfg, &report)
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("turnpike-explore-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn frontier_is_byte_identical_across_thread_counts() {
    let one = explore_artifact(&direct_runner(1));
    let two = explore_artifact(&direct_runner(2));
    let four = explore_artifact(&direct_runner(4));
    assert_eq!(one, two, "1 vs 2 threads");
    assert_eq!(one, four, "1 vs 4 threads");
    // Sanity: the artifact actually carries the tiny grid's shape.
    assert!(one.contains("\"canonical\": 3"), "{one}");
    assert!(one.contains("turnpike|wcdl=10|sb=4|clq=compact-2|colors=4|geom=a53"));
}

#[test]
fn fleet_execution_matches_direct_byte_for_byte() {
    let direct = explore_artifact(&direct_runner(2));
    // Two in-process workers, one engine thread each — the explorer's
    // round-robin sharding and by-index result placement must make worker
    // timing invisible.
    let servers: Vec<Server> = (0..2)
        .map(|_| {
            let config = ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            };
            Server::start(config, Arc::new(EngineExecutor::new(Engine::serial()))).unwrap()
        })
        .collect();
    let runner = JobRunner::Fleet {
        workers: servers.iter().map(|s| s.addr().to_string()).collect(),
    };
    let served = explore_artifact(&runner);
    assert_eq!(served, direct, "fleet vs direct artifact bytes");
    for server in servers {
        let mut c = Client::connect(server.addr()).unwrap();
        c.shutdown().unwrap();
        server.join();
    }
}

#[test]
fn resumed_exploration_serves_every_job_from_the_store() {
    let root = scratch("resume");

    // Cold sweep: computes everything, persists every payload.
    let cold = JobRunner::Direct {
        exec: EngineExecutor::new(Engine::serial()).with_store(Store::open(&root)),
        threads: 2,
    };
    let cfg = tiny_config();
    let cold_report = run_explore(&cold, &cfg, &mut |_| {}).unwrap();
    // Even a cold sweep hits the store where stages overlap (the promote
    // stage re-issues the screen stage's smoke runs for kernels in both
    // lists) — but it must compute everything it hasn't already stored.
    assert!(
        cold_report.counts.store_hits < cold_report.counts.jobs,
        "cold sweep must compute: {:?}",
        cold_report.counts
    );
    let cold_artifact = frontier_json(&cfg, &cold_report);

    // Resumed sweep: a brand-new executor (fresh engine, fresh caches —
    // a new process in all but pid) sharing only the store directory.
    let warm = JobRunner::Direct {
        exec: EngineExecutor::new(Engine::serial()).with_store(Store::open(&root)),
        threads: 2,
    };
    let warm_report = run_explore(&warm, &cfg, &mut |_| {}).unwrap();
    assert_eq!(
        warm_report.counts.store_hits, warm_report.counts.jobs,
        "every resumed job must be a store hit"
    );
    let exec = warm.executor().expect("direct runner");
    assert_eq!(exec.engine().sim_count(), 0, "resume must not simulate");
    assert_eq!(exec.engine().compile_count(), 0, "resume must not compile");
    assert_eq!(
        frontier_json(&cfg, &warm_report),
        cold_artifact,
        "resumed artifact bytes"
    );

    std::fs::remove_dir_all(&root).unwrap();
}
