//! Loop induction variable merging (LIVM, paper §4.1.2).
//!
//! Strength-reduced code (as produced by `-O3` compilers and by our workload
//! generator) keeps a separate *basic* induction variable for each array
//! address expression, e.g. `p = p + 8` next to `i = i + 1`. Each extra basic
//! IV is loop-carried, hence live-out of every per-iteration region, hence
//! checkpointed every iteration. LIVM rewrites such an IV as an *induced*
//! function of another basic IV (`p = base + 8*i`), eliminating the
//! loop-carried dependence and therefore the per-iteration checkpoint.
//!
//! This implementation targets single-block self-loops (the shape our hot
//! kernels take, and the shape of the paper's Figure 8): two basic IVs
//! `r1 += k1`, `r2 += k2` with constant preheader initializations `C1`, `C2`
//! and `k1 | k2` are merged by rewriting every use of `r2` as
//! `m*r1 + (C2 - m*C1)` adjusted for increment position, then deleting `r2`'s
//! increment (DCE sweeps the dead initialization).

use std::collections::HashMap;
use turnpike_ir::{BasicBlock, BinOp, BlockId, Cfg, Function, Inst, Liveness, Operand, Reg};

/// A detected basic induction variable in a self-loop block.
#[derive(Debug, Clone, Copy)]
struct BasicIv {
    reg: Reg,
    step: i64,
    /// Index of the increment instruction within the block.
    inc_idx: usize,
    /// Constant initial value found in the preheader.
    init: i64,
}

/// Run LIVM over every self-loop block. Returns the number of merged IVs.
pub fn livm(f: &mut Function) -> u32 {
    let mut merged = 0;
    loop {
        let cfg = Cfg::compute(f);
        let live = Liveness::compute(f, &cfg);
        let mut did = false;
        for b in 0..f.blocks.len() {
            let id = BlockId(b as u32);
            if !cfg.succs(id).contains(&id) {
                continue; // not a self-loop
            }
            if let Some(n) = try_merge_in_block(f, &cfg, &live, id) {
                merged += n;
                did = true;
                break; // analyses are stale; restart
            }
        }
        if !did {
            break;
        }
    }
    merged
}

fn try_merge_in_block(f: &mut Function, cfg: &Cfg, live: &Liveness, b: BlockId) -> Option<u32> {
    // Unique out-of-loop predecessor (preheader) and unique exit successor.
    let preds: Vec<BlockId> = cfg.preds(b).iter().copied().filter(|&p| p != b).collect();
    let succs: Vec<BlockId> = cfg.succs(b).iter().copied().filter(|&s| s != b).collect();
    if preds.len() != 1 || succs.len() != 1 {
        return None;
    }
    let (preheader, exit) = (preds[0], succs[0]);

    let ivs = find_basic_ivs(f, preheader, b);
    if ivs.len() < 2 {
        return None;
    }

    // Pick a keeper (the IV with the smallest |step| that divides others) and
    // merge every other IV expressible in terms of it.
    let mut done = 0;
    for keep in &ivs {
        if keep.step == 0 {
            continue;
        }
        for victim in &ivs {
            if victim.reg == keep.reg || victim.step == 0 {
                continue;
            }
            if victim.step % keep.step != 0 {
                continue;
            }
            // The victim must not escape the loop.
            if live.live_in(exit).contains(victim.reg) {
                continue;
            }
            // The victim must not be read by the loop terminator.
            if f.block(b).term.uses().contains(&victim.reg) {
                continue;
            }
            if merge(f, b, *keep, *victim) {
                done += 1;
                // Indices are now stale; caller restarts.
                return Some(done);
            }
        }
    }
    None
}

/// Find basic IVs: registers with exactly one in-block def of the form
/// `r = add r, #k`, initialized by a constant `mov` in the preheader.
fn find_basic_ivs(f: &Function, preheader: BlockId, b: BlockId) -> Vec<BasicIv> {
    let blk = f.block(b);
    let mut candidates: HashMap<Reg, (i64, usize)> = HashMap::new();
    let mut def_counts: HashMap<Reg, u32> = HashMap::new();
    for (i, inst) in blk.insts.iter().enumerate() {
        if let Some(d) = inst.def() {
            *def_counts.entry(d).or_insert(0) += 1;
        }
        if let Inst::Bin {
            op: BinOp::Add,
            dst,
            lhs: Operand::Reg(l),
            rhs: Operand::Imm(k),
        } = *inst
        {
            if dst == l {
                candidates.insert(dst, (k, i));
            }
        }
    }
    let mut out = Vec::new();
    for (reg, (step, inc_idx)) in candidates {
        if def_counts.get(&reg) != Some(&1) {
            continue;
        }
        if let Some(init) = const_init(f.block(preheader), reg) {
            out.push(BasicIv {
                reg,
                step,
                inc_idx,
                init,
            });
        }
    }
    out.sort_by_key(|iv| iv.reg);
    out
}

/// The constant initial value of `r` at the end of `pre`, if its last def
/// there is `mov r, #c`.
fn const_init(pre: &BasicBlock, r: Reg) -> Option<i64> {
    for inst in pre.insts.iter().rev() {
        if inst.def() == Some(r) {
            return match *inst {
                Inst::Mov {
                    src: Operand::Imm(c),
                    ..
                } => Some(c),
                _ => None,
            };
        }
    }
    None
}

/// Rewrite uses of `victim` in block `b` as affine functions of `keep`, then
/// delete the victim's increment. Returns `false` if a use cannot be
/// rewritten (in which case nothing is changed).
fn merge(f: &mut Function, b: BlockId, keep: BasicIv, victim: BasicIv) -> bool {
    let m = victim.step / keep.step;
    let blk = f.block(b).clone();

    // Verify every use of the victim (other than its increment) is
    // rewritable: it must appear as a plain operand or address base.
    // (All our instruction forms qualify, so this always holds; kept for
    // clarity and future instruction kinds.)

    let mut new_insts: Vec<Inst> = Vec::with_capacity(blk.insts.len() + 4);
    let mut passed_keep_inc = false;
    let mut passed_victim_inc = false;
    // Cache of materialized replacements per (passed_keep, passed_victim).
    let mut cache: HashMap<(bool, bool), Reg> = HashMap::new();
    let mut num_regs = f.num_regs;

    for (i, inst) in blk.insts.iter().enumerate() {
        if i == victim.inc_idx {
            passed_victim_inc = true;
            continue; // delete the increment
        }
        let mut inst = *inst;
        if inst.uses().into_iter().any(|u| u == victim.reg) {
            let key = (passed_keep_inc, passed_victim_inc);
            let repl = match cache.get(&key) {
                Some(&r) => r,
                None => {
                    // victim_now = m*keep_now + K, with
                    // K = (C2 + d2) - m*(C1 + d1) where d* are the increments
                    // already applied this iteration.
                    let d1 = if passed_keep_inc { keep.step } else { 0 };
                    let d2 = if passed_victim_inc { victim.step } else { 0 };
                    let k = (victim.init + d2) - m * (keep.init + d1);
                    let scaled = if m == 1 {
                        keep.reg
                    } else {
                        let t = Reg(num_regs);
                        num_regs += 1;
                        let op = if m > 0 && (m as u64).is_power_of_two() {
                            Inst::Bin {
                                op: BinOp::Shl,
                                dst: t,
                                lhs: Operand::Reg(keep.reg),
                                rhs: Operand::Imm(m.trailing_zeros() as i64),
                            }
                        } else {
                            Inst::Bin {
                                op: BinOp::Mul,
                                dst: t,
                                lhs: Operand::Reg(keep.reg),
                                rhs: Operand::Imm(m),
                            }
                        };
                        new_insts.push(op);
                        t
                    };
                    let final_reg = if k == 0 {
                        scaled
                    } else {
                        let t2 = Reg(num_regs);
                        num_regs += 1;
                        new_insts.push(Inst::Bin {
                            op: BinOp::Add,
                            dst: t2,
                            lhs: Operand::Reg(scaled),
                            rhs: Operand::Imm(k),
                        });
                        t2
                    };
                    cache.insert(key, final_reg);
                    final_reg
                }
            };
            substitute(&mut inst, victim.reg, repl);
        }
        if i == keep.inc_idx {
            passed_keep_inc = true;
            cache.clear(); // offsets change after the keeper's increment
        }
        // A write to the replacement cache's source invalidates nothing else:
        // keep.reg has a single def (its increment), handled above.
        new_insts.push(inst);
    }

    f.num_regs = num_regs;
    f.block_mut(b).insts = new_insts;
    true
}

/// Replace reads of `from` with `to` in one instruction.
fn substitute(inst: &mut Inst, from: Reg, to: Reg) {
    let fix_op = |o: &mut Operand| {
        if *o == Operand::Reg(from) {
            *o = Operand::Reg(to);
        }
    };
    let fix_addr = |a: &mut turnpike_ir::Addr| {
        if a.base == Some(from) {
            a.base = Some(to);
        }
    };
    match inst {
        Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
            fix_op(lhs);
            fix_op(rhs);
        }
        Inst::Mov { src, .. } => fix_op(src),
        Inst::Load { addr, .. } => fix_addr(addr),
        Inst::Store { src, addr } => {
            fix_op(src);
            fix_addr(addr);
        }
        Inst::Ckpt { reg } => {
            if *reg == from {
                *reg = to;
            }
        }
        Inst::RegionBoundary { .. } | Inst::Nop => {}
    }
}

/// Induction-variable merging (plus the DCE cleanup that makes its wins
/// real) as a pipeline [`crate::pass::Pass`].
pub struct LivmPass;

impl crate::pass::Pass for LivmPass {
    fn name(&self) -> &'static str {
        "livm+dce"
    }

    fn run(
        &self,
        prog: &mut turnpike_ir::Program,
        cx: &mut crate::pass::PassCx<'_>,
    ) -> Result<(), crate::pipeline::CompileError> {
        let merged = livm(&mut prog.func);
        cx.metrics
            .add(turnpike_metrics::Counter::IvsMerged, u64::from(merged));
        crate::dce::dce(&mut prog.func);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dce::dce;
    use turnpike_ir::{interp, DataSegment, FunctionBuilder, Program};

    /// The paper's Figure 8 shape: i counts 0..100, p walks an array.
    fn fig8_program() -> Program {
        let mut b = FunctionBuilder::new("fig8");
        let i = b.fresh_reg();
        let p = b.fresh_reg();
        let c = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(i, 0i64);
        b.mov(p, 0x1000i64);
        b.jump(body);
        b.switch_to(body);
        b.store(i, p, 0); // A[i] = i
        b.add(p, p, 8i64);
        b.add(i, i, 1i64);
        b.cmp_lt(c, i, 100i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(i)));
        Program::new(b.finish().unwrap(), DataSegment::zeroed(0x1000, 100))
    }

    #[test]
    fn merges_fig8_and_preserves_semantics() {
        let mut p = fig8_program();
        let golden = interp::golden(&p).unwrap();
        let n = livm(&mut p.func);
        assert_eq!(n, 1);
        dce(&mut p.func);
        turnpike_ir::verify_function(&p.func).unwrap();
        let after = interp::golden(&p).unwrap();
        assert_eq!(golden, after);
        // The pointer IV's increment is gone: no `add p, p, 8` remains.
        let has_ptr_inc = p.func.blocks[1].insts.iter().any(|i| {
            matches!(
                i,
                Inst::Bin {
                    op: BinOp::Add,
                    rhs: Operand::Imm(8),
                    ..
                }
            )
        });
        assert!(!has_ptr_inc);
    }

    #[test]
    fn victim_live_after_loop_blocks_merge() {
        let mut b = FunctionBuilder::new("esc");
        let i = b.fresh_reg();
        let p = b.fresh_reg();
        let c = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(i, 0i64);
        b.mov(p, 0x1000i64);
        b.jump(body);
        b.switch_to(body);
        b.store(i, p, 0);
        b.add(p, p, 8i64);
        b.add(i, i, 1i64);
        b.cmp_lt(c, i, 10i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(p))); // p escapes
        let mut f = b.finish().unwrap();
        assert_eq!(livm(&mut f), 0);
    }

    #[test]
    fn non_divisible_steps_block_merge() {
        let mut b = FunctionBuilder::new("nd");
        let i = b.fresh_reg();
        let j = b.fresh_reg();
        let c = b.fresh_reg();
        let s = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(i, 0i64);
        b.mov(j, 0i64);
        b.jump(body);
        b.switch_to(body);
        b.add(s, i, Operand::Reg(j));
        b.store_abs(s, 0x1000);
        b.add(i, i, 2i64);
        b.add(j, j, 3i64);
        b.cmp_lt(c, i, 10i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(s)));
        let mut f = b.finish().unwrap();
        // 2 does not divide 3 and 3 does not divide 2: no merge.
        assert_eq!(livm(&mut f), 0);
    }

    #[test]
    fn use_after_increment_gets_adjusted_offset() {
        // Use p AFTER p's and i's increments; merged expression must add the
        // step adjustment. Differential check against the interpreter.
        let mut b = FunctionBuilder::new("adj");
        let i = b.fresh_reg();
        let p = b.fresh_reg();
        let c = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(i, 0i64);
        b.mov(p, 0x1000i64);
        b.jump(body);
        b.switch_to(body);
        b.add(i, i, 1i64);
        b.add(p, p, 8i64);
        b.store(i, p, -8); // uses p after increment
        b.cmp_lt(c, i, 50i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(i)));
        let mut prog = Program::new(b.finish().unwrap(), DataSegment::zeroed(0x1000, 50));
        let golden = interp::golden(&prog).unwrap();
        assert_eq!(livm(&mut prog.func), 1);
        dce(&mut prog.func);
        assert_eq!(interp::golden(&prog).unwrap(), golden);
    }
}
