//! Natural loop detection.
//!
//! The region partitioner places boundaries at loop headers (as Turnstile
//! does), LICM sinking must know whether a checkpoint sits inside a loop, and
//! LIVM needs the set of basic induction variables per loop — all of which
//! start from the natural loops computed here.

use crate::block::BlockId;
use crate::cfg::Cfg;
use crate::dom::DomTree;

/// A natural loop: a header plus the set of blocks in its body.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Loop header (target of the back edge(s)).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: Vec<BlockId>,
    /// Blocks inside the loop with a successor outside (exiting blocks).
    pub exiting: Vec<BlockId>,
    /// Nesting depth: 1 for outermost loops.
    pub depth: u32,
}

impl Loop {
    /// Whether `b` belongs to the loop body.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// All natural loops of a function, with per-block depth information.
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Vec<Loop>,
    depth: Vec<u32>,
    header_of: Vec<bool>,
}

impl LoopForest {
    /// Detect natural loops via back edges (`tail -> header` where `header`
    /// dominates `tail`), merging loops that share a header.
    pub fn compute(cfg: &Cfg, dom: &DomTree) -> Self {
        let n = cfg.num_blocks();
        // Collect back edges grouped by header.
        let mut tails_by_header: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    tails_by_header[s.index()].push(b);
                }
            }
        }
        let mut loops = Vec::new();
        for (h, tails) in tails_by_header.iter().enumerate() {
            if tails.is_empty() {
                continue;
            }
            let header = BlockId(h as u32);
            // Body = header + all blocks that reach a tail without passing
            // through the header (standard natural-loop body collection).
            let mut in_body = vec![false; n];
            in_body[h] = true;
            let mut stack: Vec<BlockId> = Vec::new();
            for &t in tails {
                if !in_body[t.index()] {
                    in_body[t.index()] = true;
                    stack.push(t);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if !in_body[p.index()] {
                        in_body[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            let body: Vec<BlockId> = (0..n)
                .filter(|&i| in_body[i])
                .map(|i| BlockId(i as u32))
                .collect();
            let exiting: Vec<BlockId> = body
                .iter()
                .copied()
                .filter(|&b| cfg.succs(b).iter().any(|s| !in_body[s.index()]))
                .collect();
            loops.push(Loop {
                header,
                body,
                exiting,
                depth: 0,
            });
        }
        // Depth: number of loops containing each block.
        let mut depth = vec![0u32; n];
        for l in &loops {
            for &b in &l.body {
                depth[b.index()] += 1;
            }
        }
        for l in &mut loops {
            l.depth = depth[l.header.index()];
        }
        let mut header_of = vec![false; n];
        for l in &loops {
            header_of[l.header.index()] = true;
        }
        LoopForest {
            loops,
            depth,
            header_of,
        }
    }

    /// All loops (unordered).
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Loop nesting depth of a block (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// Whether `b` is the header of some loop.
    pub fn is_header(&self, b: BlockId) -> bool {
        self.header_of[b.index()]
    }

    /// The innermost loop containing `b`, if any (smallest body).
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .min_by_key(|l| l.body.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BasicBlock, Terminator};
    use crate::function::Function;
    use crate::reg::Reg;

    /// bb0 -> bb1(hdr outer) -> bb2(hdr inner) -> bb2 (self loop),
    /// bb2 -> bb3 -> bb1 (outer backedge), bb1 -> bb4 exit.
    fn nested() -> Function {
        let mut f = Function::empty("n");
        f.num_regs = 1;
        f.blocks = vec![
            BasicBlock::new(Terminator::Jump(BlockId(1))),
            BasicBlock::new(Terminator::Branch {
                cond: Reg(0),
                then_bb: BlockId(2),
                else_bb: BlockId(4),
            }),
            BasicBlock::new(Terminator::Branch {
                cond: Reg(0),
                then_bb: BlockId(2),
                else_bb: BlockId(3),
            }),
            BasicBlock::new(Terminator::Jump(BlockId(1))),
            BasicBlock::new(Terminator::Ret { value: None }),
        ];
        f
    }

    #[test]
    fn finds_nested_loops_and_depths() {
        let f = nested();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let lf = LoopForest::compute(&cfg, &dom);
        assert_eq!(lf.loops().len(), 2);
        assert!(lf.is_header(BlockId(1)));
        assert!(lf.is_header(BlockId(2)));
        assert!(!lf.is_header(BlockId(3)));
        assert_eq!(lf.depth(BlockId(0)), 0);
        assert_eq!(lf.depth(BlockId(1)), 1);
        assert_eq!(lf.depth(BlockId(2)), 2);
        assert_eq!(lf.depth(BlockId(3)), 1);
        assert_eq!(lf.depth(BlockId(4)), 0);
    }

    #[test]
    fn loop_bodies_and_exits() {
        let f = nested();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let lf = LoopForest::compute(&cfg, &dom);
        let outer = lf.loops().iter().find(|l| l.header == BlockId(1)).unwrap();
        assert!(outer.contains(BlockId(2)));
        assert!(outer.contains(BlockId(3)));
        assert!(!outer.contains(BlockId(4)));
        assert!(outer.exiting.contains(&BlockId(1)));
        let inner = lf.loops().iter().find(|l| l.header == BlockId(2)).unwrap();
        assert_eq!(inner.body, vec![BlockId(2)]);
        assert_eq!(inner.depth, 2);
        assert_eq!(
            lf.innermost_containing(BlockId(2)).unwrap().header,
            BlockId(2)
        );
        assert_eq!(
            lf.innermost_containing(BlockId(3)).unwrap().header,
            BlockId(1)
        );
        assert!(lf.innermost_containing(BlockId(4)).is_none());
    }

    #[test]
    fn straight_line_has_no_loops() {
        let f = Function::empty("s");
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let lf = LoopForest::compute(&cfg, &dom);
        assert!(lf.loops().is_empty());
        assert_eq!(lf.depth(BlockId(0)), 0);
    }
}
