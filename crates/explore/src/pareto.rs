//! Epsilon-dominance Pareto filtering over the explorer's three
//! objectives.
//!
//! All three objectives are *minimized*: runtime overhead (normalized
//! execution time), hardware area (in units of the paper's 4-entry
//! store-buffer CAM, see [`area_unit`]), and SDC rate (1 − detection
//! coverage). Energy is reported alongside area in the frontier artifact
//! but is not a dominance axis — under the calibrated cost model every
//! priced structure's area and energy are monotone in the same knobs, so
//! a fourth axis would never change the frontier, only dilute the
//! dominance relation.
//!
//! The staged search prunes with *epsilon* dominance: `q` eps-dominates
//! `p` iff `q_i + eps ≤ p_i` on **every** axis. With `eps > 0` this is
//! strictly stronger than plain dominance, which gives the pruner its
//! soundness guarantee: any point epsilon-pruning drops is plainly
//! dominated, so the pruned set is always a superset of the exact Pareto
//! set ([`exact_pareto_mask`] is kept as the oracle and the property test
//! below holds the pruner to it). The explicit epsilon also means float
//! noise below `eps` can never flip a dominance decision between two runs
//! of the search.

/// Default pruning epsilon. Objectives are normalized to O(1) ranges
/// (overhead ≈ 1–3, area in SB4 units ≈ 1–6, SDC rate ∈ [0, 1]), so 1e-3
/// is far above float noise and far below any difference worth keeping.
pub const DEFAULT_EPSILON: f64 = 1e-3;

/// The area normalization unit: the paper's 4-entry store-buffer CAM
/// (Table 1's first row). Dividing every point's area by this puts the
/// cost axis on the same O(1) scale as the other two objectives.
pub fn area_unit() -> f64 {
    turnpike_model::CostModel::calibrated().cam(4).area_um2
}

/// One point's objective vector; every axis is minimized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Geomean runtime overhead (normalized execution time).
    pub overhead: f64,
    /// Added-hardware area in [`area_unit`]s.
    pub area: f64,
    /// SDC rate (1 − coverage), in [0, 1].
    pub sdc: f64,
}

impl Objectives {
    fn as_array(self) -> [f64; 3] {
        [self.overhead, self.area, self.sdc]
    }

    /// `self` epsilon-dominates `p`: at least `eps` better on every axis.
    pub fn eps_dominates(self, p: Objectives, eps: f64) -> bool {
        self.as_array()
            .iter()
            .zip(p.as_array())
            .all(|(&q, pv)| q + eps <= pv)
    }

    /// Plain Pareto dominance: no worse anywhere, strictly better
    /// somewhere.
    pub fn dominates(self, p: Objectives) -> bool {
        let q = self.as_array();
        let pv = p.as_array();
        q.iter().zip(pv).all(|(&a, b)| a <= b) && q.iter().zip(pv).any(|(&a, b)| a < b)
    }
}

/// Keep-mask under epsilon-dominance: `mask[i]` is false iff some other
/// point eps-dominates point `i`.
///
/// # Panics
///
/// `eps` must be strictly positive: at `eps = 0` a point would "dominate"
/// its own duplicates (and itself), emptying plateaus of tied points.
pub fn eps_pareto_mask(points: &[Objectives], eps: f64) -> Vec<bool> {
    assert!(eps > 0.0, "epsilon must be > 0");
    points
        .iter()
        .map(|&p| !points.iter().any(|&q| q.eps_dominates(p, eps)))
        .collect()
}

/// Keep-mask under exact brute-force Pareto filtering (the oracle the
/// property test holds the epsilon pruner to).
pub fn exact_pareto_mask(points: &[Objectives]) -> Vec<bool> {
    points
        .iter()
        .map(|&p| !points.iter().any(|&q| q.dominates(p)))
        .collect()
}

/// Staged epsilon pruning, the shape the explorer's screening stage uses:
/// filter fixed-size chunks independently (the explorer evaluates and
/// prunes in batches), then run a final filter over the union of
/// survivors. Returns the indices (into `points`) that survive, in input
/// order.
///
/// Soundness: a point dropped inside a chunk was eps-dominated by a point
/// *in that chunk*, hence plainly dominated globally; the final pass only
/// drops eps-dominated points likewise. So the survivors are always a
/// superset of the exact Pareto set of the full input.
pub fn staged_eps_prune(points: &[Objectives], chunk: usize, eps: f64) -> Vec<usize> {
    assert!(chunk > 0, "chunk size must be >= 1");
    let mut survivors: Vec<usize> = Vec::new();
    for (c, window) in points.chunks(chunk).enumerate() {
        let mask = eps_pareto_mask(window, eps);
        survivors.extend(
            mask.iter()
                .enumerate()
                .filter(|(_, &keep)| keep)
                .map(|(i, _)| c * chunk + i),
        );
    }
    let pool: Vec<Objectives> = survivors.iter().map(|&i| points[i]).collect();
    let mask = eps_pareto_mask(&pool, eps);
    survivors
        .into_iter()
        .zip(mask)
        .filter(|&(_, keep)| keep)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn o(overhead: f64, area: f64, sdc: f64) -> Objectives {
        Objectives {
            overhead,
            area,
            sdc,
        }
    }

    #[test]
    fn dominance_basics() {
        let cheap_slow = o(2.0, 1.0, 0.0);
        let fast_pricey = o(1.1, 5.0, 0.0);
        let bad = o(2.5, 5.5, 0.5);
        assert!(!cheap_slow.dominates(fast_pricey));
        assert!(!fast_pricey.dominates(cheap_slow));
        assert!(cheap_slow.dominates(bad) && fast_pricey.dominates(bad));
        assert!(cheap_slow.eps_dominates(bad, 0.1));
        // A tie on one axis still plainly dominates, but never
        // eps-dominates — epsilon demands real margin everywhere.
        let tied = o(2.0, 1.0, 0.4);
        assert!(cheap_slow.dominates(tied));
        assert!(!cheap_slow.eps_dominates(tied, 0.1));
        // No self-domination.
        assert!(!bad.dominates(bad));
        assert!(!bad.eps_dominates(bad, 0.1));
    }

    #[test]
    fn duplicate_points_all_survive() {
        let pts = vec![o(1.0, 1.0, 0.0); 3];
        assert_eq!(eps_pareto_mask(&pts, 0.01), vec![true; 3]);
        assert_eq!(exact_pareto_mask(&pts), vec![true; 3]);
        assert_eq!(staged_eps_prune(&pts, 2, 0.01), vec![0, 1, 2]);
    }

    #[test]
    fn sub_epsilon_noise_cannot_flip_dominance() {
        let a = o(1.0, 1.0, 0.1);
        let noisy = o(1.0 + 5e-4, 1.0 + 5e-4, 0.1 + 5e-4);
        // Plain dominance would drop `noisy`; the epsilon filter keeps
        // both, so measurement jitter below eps never changes the output.
        assert!(a.dominates(noisy));
        assert_eq!(
            eps_pareto_mask(&[a, noisy], DEFAULT_EPSILON),
            vec![true, true]
        );
    }

    #[test]
    #[should_panic(expected = "epsilon must be > 0")]
    fn zero_epsilon_is_rejected() {
        let _ = eps_pareto_mask(&[o(1.0, 1.0, 0.0)], 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The satellite property: on random point sets, staged
        /// epsilon-dominance pruning never drops a point that brute-force
        /// Pareto filtering keeps — for any chunking and any positive
        /// epsilon. Coordinates are drawn from a coarse integer lattice so
        /// ties and duplicates (the adversarial cases) occur constantly.
        #[test]
        fn staged_pruning_keeps_every_exact_pareto_point(
            raw in prop::collection::vec((0u32..8, 0u32..8, 0u32..8), 0..40),
            chunk in 1usize..12,
            eps_mil in 1u32..500,
        ) {
            let points: Vec<Objectives> = raw
                .iter()
                .map(|&(a, b, c)| o(f64::from(a) * 0.25, f64::from(b) * 0.25, f64::from(c) * 0.125))
                .collect();
            let eps = f64::from(eps_mil) * 1e-3;
            let survivors = staged_eps_prune(&points, chunk, eps);
            let exact = exact_pareto_mask(&points);
            for (i, &keep) in exact.iter().enumerate() {
                if keep {
                    prop_assert!(
                        survivors.contains(&i),
                        "exact Pareto point {i} ({:?}) dropped by staged pruning \
                         (chunk {chunk}, eps {eps})",
                        points[i]
                    );
                }
            }
            // And the pruner's own output is internally consistent: sorted,
            // unique, in-range.
            let mut sorted = survivors.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&sorted, &survivors);
            prop_assert!(survivors.iter().all(|&i| i < points.len()));
        }

        /// The one-shot mask agrees with plain dominance in the limit: any
        /// point the eps filter drops is plainly dominated.
        #[test]
        fn eps_pruned_points_are_plainly_dominated(
            raw in prop::collection::vec((0u32..8, 0u32..8, 0u32..8), 1..30),
        ) {
            let points: Vec<Objectives> = raw
                .iter()
                .map(|&(a, b, c)| o(f64::from(a) * 0.5, f64::from(b) * 0.5, f64::from(c) * 0.25))
                .collect();
            let eps_mask = eps_pareto_mask(&points, DEFAULT_EPSILON);
            let exact = exact_pareto_mask(&points);
            for i in 0..points.len() {
                if !eps_mask[i] {
                    prop_assert!(!exact[i], "point {i} eps-pruned but exact-Pareto");
                }
            }
        }
    }
}
