//! The compile pipeline: IR program → machine program.
//!
//! Pass order (paper §4, Figure 7):
//!
//! 1. legalization (machine-form canonicalization);
//! 2. loop induction variable merging + DCE (§4.1.2, optional);
//! 3. store-aware register allocation (§4.1.1, weighting optional);
//! 4. region partitioning (§2.1) and eager checkpointing (§2.2), iterated
//!    with budget splitting until every region fits the store budget;
//! 5. optimal checkpoint pruning (§4.1.3, optional);
//! 6. checkpoint sinking / loop-exit motion (§4.1.4, optional);
//! 7. checkpoint-aware instruction scheduling (§4.2, optional);
//! 8. codegen with per-region recovery blocks.
//!
//! The pipeline itself lives in [`crate::pass`] as a declarative pass
//! table driven by a [`crate::pass::PassManager`]; [`compile`] here is the
//! stable entry point wrapping it.

use crate::codegen::CodegenError;
use crate::config::{CompilerConfig, PassStats};
use crate::pass::{PassManager, PassRecord};
use crate::regalloc::AllocError;
use turnpike_ir::Program;
use turnpike_isa::MachProgram;
use turnpike_metrics::MetricSet;

/// Result of compilation.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The executable machine program.
    pub program: MachProgram,
    /// Per-pass statistics (store breakdown, code size, spills, ...).
    /// Derived from `metrics`; kept as a typed view for existing callers.
    pub stats: PassStats,
    /// The compile's full metrics registry (`compile.*` keys); the
    /// evaluation harness reads statistics from here by key.
    pub metrics: MetricSet,
    /// Per-pass execution records (name, wall-clock, metric deltas), in
    /// pipeline order, ending with the synthetic `"codegen"` record.
    pub passes: Vec<PassRecord>,
}

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Register allocation could not satisfy parameter pressure.
    Alloc(AllocError),
    /// Lowering detected an internal inconsistency.
    Codegen(CodegenError),
    /// The partition/checkpoint fixpoint could not bound a region under the
    /// store buffer size (would deadlock the gated SB).
    RegionOverflow {
        /// Observed static store bound.
        stores: u32,
        /// Hard limit (the SB size).
        limit: u32,
    },
    /// The checkpoint/split fixpoint was still splitting regions when the
    /// iteration cap was reached
    /// ([`crate::checkpoint::FIXPOINT_MAX_ITERATIONS`]).
    FixpointDiverged {
        /// Iterations executed before giving up.
        iterations: u32,
    },
    /// A pass produced structurally malformed IR (caught by the pass
    /// manager's post-pass verification in debug/test builds).
    Verify {
        /// The offending pass.
        pass: &'static str,
        /// The structural defect found.
        error: turnpike_ir::VerifyError,
    },
    /// A pass changed observable program behavior (caught by the pass
    /// manager's opt-in interpreter-equivalence checking).
    NotEquivalent {
        /// The offending pass.
        pass: &'static str,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Alloc(e) => write!(f, "{e}"),
            CompileError::Codegen(e) => write!(f, "{e}"),
            CompileError::RegionOverflow { stores, limit } => {
                write!(
                    f,
                    "a region holds {stores} stores, exceeding the {limit}-entry SB"
                )
            }
            CompileError::FixpointDiverged { iterations } => {
                write!(
                    f,
                    "checkpoint/split fixpoint still splitting after {iterations} iterations"
                )
            }
            CompileError::Verify { pass, error } => {
                write!(f, "pass '{pass}' produced malformed IR: {error}")
            }
            CompileError::NotEquivalent { pass } => {
                write!(f, "pass '{pass}' changed observable program behavior")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<AllocError> for CompileError {
    fn from(e: AllocError) -> Self {
        CompileError::Alloc(e)
    }
}

impl From<CodegenError> for CompileError {
    fn from(e: CodegenError) -> Self {
        CompileError::Codegen(e)
    }
}

/// Compile an IR program under the given configuration.
///
/// # Errors
///
/// See [`CompileError`].
///
/// # Example
///
/// ```
/// use turnpike_compiler::{compile, CompilerConfig};
/// use turnpike_ir::{DataSegment, FunctionBuilder, Operand, Program};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = FunctionBuilder::new("demo");
/// let x = b.fresh_reg();
/// b.mov(x, 21i64);
/// b.add(x, x, 21i64);
/// b.store_abs(x, 0x1000);
/// b.ret(Some(Operand::Reg(x)));
/// let prog = Program::new(b.finish()?, DataSegment::zeroed(0x1000, 1));
///
/// let out = compile(&prog, &CompilerConfig::turnpike(4))?;
/// assert!(out.program.num_regions() >= 1);
/// # Ok(())
/// # }
/// ```
pub fn compile(program: &Program, config: &CompilerConfig) -> Result<CompileOutput, CompileError> {
    PassManager::for_config(config).run(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::{interp, DataSegment, FunctionBuilder, Operand};
    use turnpike_isa::interp as misa;

    /// A kernel with a store loop, a reduction loop, and register pressure.
    fn kernel() -> Program {
        let mut b = FunctionBuilder::new("kern");
        let base = b.param();
        let i = b.fresh_reg();
        let p = b.fresh_reg();
        let acc = b.fresh_reg();
        let c = b.fresh_reg();
        let sloop = b.create_block();
        let mid = b.create_block();
        let rloop = b.create_block();
        let done = b.create_block();
        b.mov(i, 0i64);
        b.mov(p, 0x1000i64);
        b.jump(sloop);
        b.switch_to(sloop);
        b.store(i, p, 0);
        b.add(p, p, 8i64);
        b.add(i, i, 1i64);
        b.cmp_lt(c, i, 32i64);
        b.branch(c, sloop, mid);
        b.switch_to(mid);
        b.mov(i, 0i64);
        b.mov(acc, 0i64);
        b.jump(rloop);
        b.switch_to(rloop);
        let t = b.fresh_reg();
        b.shl(t, i, 3i64);
        b.add(t, t, Operand::Reg(base));
        let v = b.fresh_reg();
        b.load(v, t, 0);
        b.add(acc, acc, Operand::Reg(v));
        b.add(i, i, 1i64);
        b.cmp_lt(c, i, 32i64);
        b.branch(c, rloop, done);
        b.switch_to(done);
        b.store_abs(acc, 0x2000);
        b.ret(Some(Operand::Reg(acc)));
        Program::with_params(
            b.finish().unwrap(),
            DataSegment::zeroed(0x1000, 33),
            vec![0x1000],
        )
    }

    fn check_equiv(config: &CompilerConfig) {
        let p = kernel();
        let golden = interp::golden(&p).unwrap();
        let out = compile(&p, config).unwrap();
        out.program.validate().unwrap();
        let m = misa::run(&out.program, &misa::MachInterpConfig::default()).unwrap();
        assert_eq!(m.ret, golden.0, "{config:?}");
        // Compare data memory, ignoring spill slots (an implementation
        // detail of the allocated program).
        let data: std::collections::BTreeMap<u64, i64> = m
            .memory
            .iter()
            .filter(|(a, _)| **a < crate::regalloc::SPILL_BASE)
            .map(|(a, v)| (*a, *v))
            .collect();
        assert_eq!(data, golden.1, "{config:?}");
    }

    #[test]
    fn baseline_compile_is_equivalent() {
        check_equiv(&CompilerConfig::baseline());
    }

    #[test]
    fn turnstile_compile_is_equivalent_and_bounded() {
        let p = kernel();
        let cfg = CompilerConfig::turnstile(4);
        let out = compile(&p, &cfg).unwrap();
        assert!(out.stats.ckpts_inserted > 0);
        assert!(out.stats.boundaries > 0);
        check_equiv(&cfg);
    }

    #[test]
    fn turnpike_compile_is_equivalent() {
        check_equiv(&CompilerConfig::turnpike(4));
    }

    #[test]
    fn every_opt_combination_is_equivalent() {
        for bits in 0..32u32 {
            let cfg = CompilerConfig {
                resilient: true,
                sb_size: 4,
                livm: bits & 1 != 0,
                prune: bits & 2 != 0,
                licm: bits & 4 != 0,
                sched: bits & 8 != 0,
                store_aware_ra: bits & 16 != 0,
                policy: crate::config::ProtectionPolicy::Uniform,
            };
            check_equiv(&cfg);
        }
    }

    #[test]
    fn larger_sb_means_fewer_checkpoints_figure4() {
        let p = kernel();
        let small = compile(&p, &CompilerConfig::turnstile(4)).unwrap();
        let large = compile(&p, &CompilerConfig::turnstile(40)).unwrap();
        assert!(
            large.stats.ckpts_inserted <= small.stats.ckpts_inserted,
            "large SB should not need more checkpoints ({} vs {})",
            large.stats.ckpts_inserted,
            small.stats.ckpts_inserted
        );
        assert!(large.stats.boundaries <= small.stats.boundaries);
    }

    #[test]
    fn turnpike_reduces_static_checkpoints() {
        let p = kernel();
        let ts = compile(&p, &CompilerConfig::turnstile(4)).unwrap();
        let tp = compile(&p, &CompilerConfig::turnpike(4)).unwrap();
        let ts_final = ts.program.insts.iter().filter(|i| i.is_ckpt()).count();
        let tp_final = tp.program.insts.iter().filter(|i| i.is_ckpt()).count();
        assert!(
            tp_final <= ts_final,
            "turnpike should not add checkpoints ({tp_final} vs {ts_final})"
        );
    }

    #[test]
    fn code_size_overhead_is_recorded() {
        let p = kernel();
        let out = compile(&p, &CompilerConfig::turnstile(4)).unwrap();
        assert!(out.stats.baseline_insts > 0);
        assert!(out.stats.final_insts > out.stats.baseline_insts);
        assert!(out.stats.code_size_increase() > 0.0);
    }

    #[test]
    fn region_budget_is_respected() {
        let p = kernel();
        for sb in [2, 4, 8, 40] {
            let cfg = CompilerConfig::turnstile(sb);
            let out = compile(&p, &cfg);
            assert!(out.is_ok(), "sb={sb}");
        }
    }
}
