//! End-to-end telemetry spine: a served campaign streams enriched
//! progress (estimator payload included), the live `metrics` request
//! returns the pinned Prometheus exposition schema, `watch` rendering
//! works against a real server, and a failed job leaves flight-recorder
//! evidence on disk.

use std::sync::Arc;

use turnpike_bench::{render_watch, Engine, EngineExecutor};
use turnpike_metrics::{prometheus_text, MetricSet};
use turnpike_serve::{
    Client, Executor, JobKind, JobRequest, Outcome, ProgressStats, Server, ServerConfig,
};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("turnpike-telem-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn exposition_schema_matches_golden() {
    // The exposition of an *empty* registry is the schema: every key the
    // workspace can report, in declaration order, at zero. Pinned so
    // scrape configs and dashboards never silently lose a series.
    assert_eq!(
        prometheus_text(&MetricSet::new()),
        include_str!("../golden/metrics_exposition.txt"),
        "exposition schema drifted; regenerate the golden only if the metric set change is intended"
    );
}

#[test]
fn served_campaign_streams_estimators_and_watch_renders_the_server() {
    let exec = EngineExecutor::new(Engine::new(2));
    let server =
        Server::start(ServerConfig::default(), Arc::new(exec) as Arc<dyn Executor>).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let mut req = JobRequest::new(JobKind::Campaign);
    req.kernel = "bwaves".into();
    req.runs = 48;
    let mut enriched: Vec<(u64, u64, ProgressStats)> = Vec::new();
    let outcome = client
        .submit_streaming(&req, |done, total, stats| {
            if let Some(s) = stats {
                enriched.push((done, total, *s));
            }
        })
        .unwrap();
    assert!(matches!(outcome, Outcome::Done { .. }), "{outcome:?}");

    // The estimator payload arrives, ends exactly at done == total, and
    // reconciles: outcome counts partition the completed runs, and the
    // zero-SDC Wilson interval is tight but never collapsed to a point.
    assert!(!enriched.is_empty(), "no enriched progress events");
    let &(done, total, last) = enriched.last().unwrap();
    assert_eq!((done, total), (48, 48));
    assert_eq!(
        last.recovered + last.post_completion + last.sdc + last.hangs,
        48
    );
    assert_eq!(last.sdc, 0, "turnpike must stay SDC-free");
    assert_eq!(last.sdc_rate, 0.0);
    assert!(last.sdc_ci_hi > 0.0 && last.sdc_ci_hi < 0.12, "{last:?}");
    assert!(last.det_rate > 0.0 && last.det_rate <= 1.0, "{last:?}");
    assert!(
        enriched.windows(2).all(|w| w[0].0 < w[1].0),
        "snapshot delivery must be strictly monotone in done"
    );

    // Live exposition: stable schema with the server's counters filled in.
    let metrics = client.metrics().unwrap();
    assert!(
        metrics.contains("# TYPE turnpike_serve_completed counter"),
        "{metrics}"
    );
    assert!(
        metrics.contains("\nturnpike_serve_completed 1\n"),
        "{metrics}"
    );
    assert!(
        metrics.contains("turnpike_serve_hist_job_us_count 1"),
        "{metrics}"
    );

    // The watch renderer summarizes the same server end-to-end.
    let stats = client.stats().unwrap();
    let text = render_watch(&stats, &metrics);
    assert!(text.contains("completed 1"), "{text}");
    assert!(text.contains("turnpike_campaign_"), "{text}");

    server.shutdown();
}

#[test]
fn failed_job_dumps_flight_recorder_evidence() {
    let dir = scratch("flight");
    let config = ServerConfig {
        flight_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let exec = EngineExecutor::new(Engine::serial());
    let server = Server::start(config, Arc::new(exec) as Arc<dyn Executor>).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // A healthy job leaves no evidence behind...
    let ok = JobRequest::new(JobKind::Run);
    assert!(matches!(client.submit(&ok).unwrap(), Outcome::Done { .. }));

    // ...a failing one dumps its lifecycle ring.
    let mut bad = JobRequest::new(JobKind::Run);
    bad.kernel = "no-such-kernel".into();
    match client.submit(&bad).unwrap() {
        Outcome::Error { job, message } => {
            assert!(message.contains("no-such-kernel"), "{message}");
            let path = dir.join(format!("job-{job}.jsonl"));
            let text = std::fs::read_to_string(&path).unwrap();
            let header = text.lines().next().unwrap();
            assert!(header.starts_with("{\"flight\":1,"), "{header}");
            for kind in ["accept", "start", "fail"] {
                assert!(text.contains(&format!("\"kind\":\"{kind}\"")), "{text}");
            }
            assert!(text.contains("no-such-kernel"), "{text}");
        }
        other => panic!("expected error, got {other:?}"),
    }
    let dumps: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert_eq!(dumps.len(), 1, "only the failed job may dump evidence");

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
