//! Mixed-mode campaigns: fault semantics at protection-mode boundaries.
//!
//! The adaptive rung leaves low-vulnerability regions unprotected: no
//! detection, no store gating, and the compiler sheds the checkpoints that
//! only fed their (never-taken) recoveries. These tests pin the fault-model
//! consequences: strikes inside unprotected regions are silently absorbed
//! (never detected, never recovered), strikes inside protected neighbors
//! keep the full detect-and-recover semantics even when the rollback spans
//! a mode boundary, and the campaign fast paths (snapshot forking,
//! early-exit replay) remain bit-identical under mixed modes.

use turnpike_compiler::{compile, ProtectionPolicy};
use turnpike_isa::ProtectionMode;
use turnpike_resilience::{
    fault_campaign_forked, fault_campaign_records, CampaignConfig, RunSpec, Scheme, StrikeOutcome,
};
use turnpike_workloads::{kernel_by_name, Scale, Suite};

fn program(name: &str) -> turnpike_ir::Program {
    kernel_by_name(Suite::Cpu2006, name, Scale::Smoke)
        .expect("kernel is in the catalog")
        .program
}

fn config() -> CampaignConfig {
    CampaignConfig {
        runs: 12,
        seed: 0x0DE5,
        strikes_per_run: 1,
        ..Default::default()
    }
}

/// The adaptive pipeline must actually produce a mixed-mode machine on a
/// kernel with both hot store loops and cold glue regions — and shed
/// checkpoints relative to the uniform Turnpike lowering.
#[test]
fn adaptive_compile_mixes_modes_and_sheds_ckpts() {
    let prog = program("bwaves");
    let uniform = compile(&prog, &RunSpec::new(Scheme::Turnpike).compiler_config()).unwrap();
    let adaptive = compile(&prog, &RunSpec::new(Scheme::Adaptive).compiler_config()).unwrap();

    assert!(uniform.program.region_modes.is_empty());
    let modes = &adaptive.program.region_modes;
    assert!(
        modes.values().any(|&m| m == ProtectionMode::Unprotected),
        "no unprotected region on bwaves: {modes:?}"
    );
    let ckpts = |p: &turnpike_isa::MachProgram| {
        p.insts
            .iter()
            .filter(|i| matches!(i, turnpike_isa::MachInst::Ckpt { .. }))
            .count()
    };
    assert!(
        ckpts(&adaptive.program) < ckpts(&uniform.program),
        "adaptive shed no checkpoints ({} vs {})",
        ckpts(&adaptive.program),
        ckpts(&uniform.program)
    );
}

/// With every region unprotected, nothing detects and nothing recovers —
/// strikes are silently absorbed (or corrupt state; either way the
/// machinery must stay quiet).
#[test]
fn fully_unprotected_regions_never_detect_or_recover() {
    let prog = program("bwaves");
    let spec = RunSpec::new(Scheme::Turnpike)
        .with_policy(ProtectionPolicy::ForceUniform(ProtectionMode::Unprotected));
    let (report, records) = fault_campaign_records(&prog, &spec, &config(), 2).unwrap();
    assert_eq!(report.runs, config().runs);
    assert_eq!(
        report.detections, 0,
        "unprotected region raised a detection"
    );
    assert_eq!(report.recoveries, 0, "unprotected region ran a recovery");
    assert!(records
        .iter()
        .all(|r| r.detections == 0 && r.outcome != StrikeOutcome::Recovered));
}

/// Under the adaptive rung, strikes that land in protected regions keep
/// full semantics: they are detected, they recover, and a recovery that
/// rolls back across an unprotected neighbor still reconverges with the
/// golden run — a detected strike must never end in SDC. Strikes absorbed
/// by unprotected regions may corrupt state (that is the coverage the
/// adaptive policy deliberately trades away); those runs must be accounted
/// as SDC or hangs, never laundered into clean outcomes.
#[test]
fn protected_regions_recover_across_mode_boundaries() {
    for name in ["zeusmp", "leslie3d", "gemsfdtd"] {
        let prog = program(name);
        let spec = RunSpec::new(Scheme::Adaptive);
        let (report, records) = fault_campaign_records(&prog, &spec, &config(), 2).unwrap();
        assert!(report.detections > 0, "{name}: protected regions detect");
        assert!(report.recoveries > 0, "{name}: protected regions recover");
        assert!(
            records
                .iter()
                .filter(|r| r.detections > 0)
                .all(|r| r.outcome == StrikeOutcome::Recovered),
            "{name}: a detected strike ended in silent corruption"
        );
        let sdc_records = records
            .iter()
            .filter(|r| r.outcome == StrikeOutcome::Sdc)
            .count();
        assert_eq!(
            sdc_records, report.sdc,
            "{name}: SDC record attribution disagrees with the report"
        );
    }
}

/// A strike in an unprotected region can corrupt a loop register and hang
/// the program with nothing watching. The campaign watchdog must abort the
/// run, classify every strike of it as [`StrikeOutcome::Hang`], and keep
/// the hang out of the SDC tally — and the forked path must reach the same
/// verdict as from-scratch simulation (both clamp to the same absolute
/// cycle bound).
#[test]
fn watchdog_classifies_hung_runs_identically_on_both_paths() {
    let prog = program("milc");
    let cfg = CampaignConfig {
        runs: 24,
        ..config()
    };
    let spec = RunSpec::new(Scheme::Adaptive);
    let (fast_report, fast_records, _) = fault_campaign_forked(
        &prog,
        &spec.clone().with_snapshot_interval(Some(64)),
        &cfg,
        2,
    )
    .unwrap();
    let (scratch_report, scratch_records, _) = fault_campaign_forked(
        &prog,
        &spec.with_snapshot_interval(None),
        &CampaignConfig {
            early_exit: false,
            ..cfg
        },
        2,
    )
    .unwrap();
    assert!(
        fast_report.hangs > 0,
        "campaign produced no hang to classify"
    );
    let hangs = fast_records
        .iter()
        .filter(|r| r.outcome == StrikeOutcome::Hang)
        .count();
    assert_eq!(hangs, fast_report.hangs, "hang attribution disagrees");
    assert!(fast_records
        .iter()
        .filter(|r| r.outcome == StrikeOutcome::Hang)
        .all(|r| r.detections == 0 && r.recovery_cycles == 0));
    assert_eq!(fast_report, scratch_report, "hang verdicts diverge");
    assert_eq!(fast_records, scratch_records);
}

/// Snapshot forking and early-exit replay must stay bit-identical under
/// mixed modes: a fork resumed inside (or before) an unprotected region
/// reproduces the from-scratch run exactly, reports and records included.
#[test]
fn mixed_mode_fork_and_early_exit_replay_are_bit_identical() {
    let prog = program("zeusmp");
    let cfg_fast = CampaignConfig {
        early_exit: true,
        ..config()
    };
    let cfg_scratch = CampaignConfig {
        early_exit: false,
        ..config()
    };
    let spec = RunSpec::new(Scheme::Adaptive).with_histograms();
    let (fast_report, fast_records, fast_stats) = fault_campaign_forked(
        &prog,
        &spec.clone().with_snapshot_interval(Some(64)),
        &cfg_fast,
        2,
    )
    .unwrap();
    let (scratch_report, scratch_records, scratch_stats) =
        fault_campaign_forked(&prog, &spec.with_snapshot_interval(None), &cfg_scratch, 2).unwrap();

    assert_eq!(fast_report, scratch_report, "reports diverge");
    assert_eq!(fast_records, scratch_records, "records diverge");
    assert!(fast_stats.hits > 0, "fast path never forked");
    assert_eq!(scratch_stats.hits, 0, "scratch path forked");
}
