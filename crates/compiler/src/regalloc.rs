//! Store-aware linear-scan register allocation (paper §4.1.1).
//!
//! Maps virtual registers onto the 32-register machine file. Registers
//! `r0..r28` are allocatable; `r29..r31` are reserved as scratch for spill
//! reloads. Spill slots are absolute addresses in a dedicated stack range, so
//! spill code needs no base register.
//!
//! The paper's "RA trick": a traditional spill-cost model weighs reads and
//! writes equally, which can spill frequently-*written* variables; every
//! spilled write becomes a store that lands in the gated store buffer and
//! (on an in-order core with sensor-based verification) stalls the pipeline.
//! With `store_aware` enabled the write term of the spill cost is multiplied
//! by [`WRITE_WEIGHT`], keeping write-hot variables in registers while
//! spilling read-mostly ones instead — same number of spilled variables,
//! far fewer spill *stores*.

use crate::config::PassStats;
use std::collections::HashMap;
use turnpike_ir::{
    Addr, BlockId, Cfg, DomTree, Function, Inst, Liveness, LoopForest, Operand, Reg,
};

/// Number of allocatable registers (`r0..r28`).
pub const ALLOCATABLE: u32 = 29;
/// Scratch registers used by spill code.
pub const SCRATCH: [u32; 3] = [29, 30, 31];
/// Base address of spill slots.
pub const SPILL_BASE: u64 = 0x7000_0000;
/// Spill-cost multiplier for writes in store-aware mode.
pub const WRITE_WEIGHT: f64 = 4.0;

/// Result of allocation: the rewritten function uses only registers
/// `0..32`, and `assignment` records where each original virtual register
/// ended up.
#[derive(Debug, Clone)]
pub struct AllocResult {
    /// Physical register index or spill slot for each original virtual reg.
    pub assignment: HashMap<Reg, Location>,
    /// Number of spill slots used.
    pub slots_used: u32,
}

/// Where a virtual register lives after allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// A physical register index.
    Phys(u32),
    /// A spill slot (absolute address `SPILL_BASE + 8*slot`).
    Slot(u32),
}

#[derive(Debug, Clone)]
struct Interval {
    reg: Reg,
    start: u32,
    end: u32,
    cost: f64,
    is_param: bool,
}

/// Allocation failure: more simultaneously-live unspillable values than
/// physical registers (cannot happen for compiler-generated kernels; guards
/// against pathological inputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError(pub String);

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "register allocation failed: {}", self.0)
    }
}

impl std::error::Error for AllocError {}

/// Allocate registers in place, rewriting `f` to use physical indices.
///
/// # Errors
///
/// Returns [`AllocError`] if the parameter registers alone exceed the
/// allocatable register file.
pub fn regalloc(
    f: &mut Function,
    store_aware: bool,
    stats: &mut PassStats,
) -> Result<AllocResult, AllocError> {
    if f.params.len() as u32 > ALLOCATABLE {
        return Err(AllocError(format!(
            "{} parameters exceed {} allocatable registers",
            f.params.len(),
            ALLOCATABLE
        )));
    }
    let cfg = Cfg::compute(f);
    let live = Liveness::compute(f, &cfg);
    let dom = DomTree::compute(&cfg);
    let loops = LoopForest::compute(&cfg, &dom);

    // Linear numbering of program points: block starts at block_base[b].
    let mut block_base = vec![0u32; f.blocks.len()];
    let mut next = 0u32;
    for (i, b) in f.blocks.iter().enumerate() {
        block_base[i] = next;
        next += b.insts.len() as u32 + 1;
    }

    // Build conservative single intervals plus frequency-weighted costs.
    let mut start = vec![u32::MAX; f.num_regs as usize];
    let mut end = vec![0u32; f.num_regs as usize];
    let mut cost = vec![0f64; f.num_regs as usize];
    let mut touch = |r: Reg, p: u32| {
        let i = r.index();
        if p < start[i] {
            start[i] = p;
        }
        if p > end[i] {
            end[i] = p;
        }
    };
    for &p in &f.params {
        touch(p, 0);
    }
    for (bi, b) in f.blocks.iter().enumerate() {
        let id = BlockId(bi as u32);
        let base = block_base[bi];
        let bend = base + b.insts.len() as u32;
        let freq = 10f64.powi(loops.depth(id).min(3) as i32);
        for r in live.live_in(id).iter() {
            touch(r, base);
        }
        for r in live.live_out(id).iter() {
            touch(r, bend);
        }
        for (ii, inst) in b.insts.iter().enumerate() {
            let p = base + ii as u32;
            if let Some(d) = inst.def() {
                touch(d, p);
                let w = if store_aware { WRITE_WEIGHT } else { 1.0 };
                cost[d.index()] += w * freq;
            }
            for u in inst.uses() {
                touch(u, p);
                cost[u.index()] += freq;
            }
        }
        for u in b.term.uses() {
            touch(u, bend);
            cost[u.index()] += freq;
        }
    }

    let mut intervals: Vec<Interval> = (0..f.num_regs)
        .filter(|&r| start[r as usize] != u32::MAX)
        .map(|r| Interval {
            reg: Reg(r),
            start: start[r as usize],
            end: end[r as usize],
            cost: cost[r as usize],
            is_param: f.params.contains(&Reg(r)),
        })
        .collect();
    intervals.sort_by_key(|iv| (iv.start, iv.reg.0));

    // Linear scan with weighted spilling.
    let mut free: Vec<u32> = (0..ALLOCATABLE).rev().collect();
    let mut active: Vec<(Interval, u32)> = Vec::new(); // (interval, phys)
    let mut assignment: HashMap<Reg, Location> = HashMap::new();
    let mut next_slot = 0u32;
    for iv in intervals {
        active.retain(|(a, phys)| {
            if a.end < iv.start {
                free.push(*phys);
                false
            } else {
                true
            }
        });
        if let Some(phys) = free.pop() {
            assignment.insert(iv.reg, Location::Phys(phys));
            active.push((iv, phys));
        } else {
            // Spill the cheapest among active ∪ {current}; params never spill.
            let cheapest_active = active
                .iter()
                .enumerate()
                .filter(|(_, (a, _))| !a.is_param)
                .min_by(|(_, (a, _)), (_, (b, _))| a.cost.total_cmp(&b.cost))
                .map(|(i, (a, _))| (i, a.cost));
            match cheapest_active {
                Some((idx, c)) if c < iv.cost || iv.is_param => {
                    let (victim, phys) = active.remove(idx);
                    assignment.insert(victim.reg, Location::Slot(next_slot));
                    next_slot += 1;
                    assignment.insert(iv.reg, Location::Phys(phys));
                    active.push((iv, phys));
                }
                _ if !iv.is_param => {
                    assignment.insert(iv.reg, Location::Slot(next_slot));
                    next_slot += 1;
                }
                _ => {
                    return Err(AllocError(
                        "unspillable parameter pressure exceeds register file".into(),
                    ))
                }
            }
        }
    }

    stats.spilled_vregs = next_slot;
    rewrite(f, &assignment, stats);
    Ok(AllocResult {
        assignment,
        slots_used: next_slot,
    })
}

fn slot_addr(slot: u32) -> Addr {
    Addr::abs((SPILL_BASE + slot as u64 * 8) as i64)
}

/// Rewrite the function: rename allocated registers, insert spill code.
fn rewrite(f: &mut Function, assignment: &HashMap<Reg, Location>, stats: &mut PassStats) {
    let map_reg = |r: Reg| -> Location {
        assignment
            .get(&r)
            .copied()
            // Dead registers (never live) can keep any name; use scratch.
            .unwrap_or(Location::Phys(SCRATCH[2]))
    };

    for b in &mut f.blocks {
        let old = std::mem::take(&mut b.insts);
        let mut new: Vec<Inst> = Vec::with_capacity(old.len() * 2);
        for mut inst in old {
            // Reload spilled uses into scratch registers.
            let mut scratch_i = 0;
            let mut reload = |r: Reg, new: &mut Vec<Inst>, stats: &mut PassStats| -> Reg {
                match map_reg(r) {
                    Location::Phys(p) => Reg(p),
                    Location::Slot(s) => {
                        let sc = Reg(SCRATCH[scratch_i]);
                        scratch_i += 1;
                        new.push(Inst::Load {
                            dst: sc,
                            addr: slot_addr(s),
                        });
                        stats.spill_loads += 1;
                        sc
                    }
                }
            };
            let mut fix_operand = |o: &mut Operand, new: &mut Vec<Inst>, stats: &mut PassStats| {
                if let Operand::Reg(r) = *o {
                    *o = Operand::Reg(reload(r, new, stats));
                }
            };
            match &mut inst {
                Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                    fix_operand(lhs, &mut new, stats);
                    fix_operand(rhs, &mut new, stats);
                }
                Inst::Mov { src, .. } => fix_operand(src, &mut new, stats),
                Inst::Load { addr, .. } => {
                    if let Some(base) = addr.base {
                        addr.base = Some(reload(base, &mut new, stats));
                    }
                }
                Inst::Store { src, addr } => {
                    fix_operand(src, &mut new, stats);
                    if let Some(base) = addr.base {
                        addr.base = Some(reload(base, &mut new, stats));
                    }
                }
                Inst::Ckpt { reg } => {
                    *reg = reload(*reg, &mut new, stats);
                }
                Inst::RegionBoundary { .. } | Inst::Nop => {}
            }
            // Rewrite the def; spilled defs write scratch then store.
            let spill_after = match inst.def() {
                Some(d) => match map_reg(d) {
                    Location::Phys(p) => {
                        set_def(&mut inst, Reg(p));
                        None
                    }
                    Location::Slot(s) => {
                        let sc = Reg(SCRATCH[2]);
                        set_def(&mut inst, sc);
                        Some((sc, s))
                    }
                },
                None => None,
            };
            new.push(inst);
            if let Some((sc, s)) = spill_after {
                new.push(Inst::Store {
                    src: Operand::Reg(sc),
                    addr: slot_addr(s),
                });
                stats.spill_stores += 1;
            }
        }
        // Terminator uses.
        let mut pre_term: Vec<Inst> = Vec::new();
        let fix_term_reg =
            |r: &mut Reg, pre: &mut Vec<Inst>, stats: &mut PassStats| match map_reg(*r) {
                Location::Phys(p) => *r = Reg(p),
                Location::Slot(s) => {
                    let sc = Reg(SCRATCH[0]);
                    pre.push(Inst::Load {
                        dst: sc,
                        addr: slot_addr(s),
                    });
                    stats.spill_loads += 1;
                    *r = sc;
                }
            };
        match &mut b.term {
            turnpike_ir::Terminator::Branch { cond, .. } => {
                fix_term_reg(cond, &mut pre_term, stats)
            }
            turnpike_ir::Terminator::Ret {
                value: Some(Operand::Reg(r)),
            } => fix_term_reg(r, &mut pre_term, stats),
            _ => {}
        }
        new.extend(pre_term);
        b.insts = new;
    }
    // Params now refer to their physical homes.
    f.params = f
        .params
        .iter()
        .map(|&p| match assignment.get(&p) {
            Some(Location::Phys(phys)) => Reg(*phys),
            _ => unreachable!("parameters never spill"),
        })
        .collect();
    f.num_regs = 32;
}

fn set_def(inst: &mut Inst, to: Reg) {
    match inst {
        Inst::Bin { dst, .. }
        | Inst::Cmp { dst, .. }
        | Inst::Mov { dst, .. }
        | Inst::Load { dst, .. } => *dst = to,
        _ => {}
    }
}

/// Register allocation as a pipeline [`crate::pass::Pass`] (store-aware
/// weighting follows the configuration).
pub struct RegallocPass;

impl crate::pass::Pass for RegallocPass {
    fn name(&self) -> &'static str {
        "regalloc"
    }

    fn run(
        &self,
        prog: &mut turnpike_ir::Program,
        cx: &mut crate::pass::PassCx<'_>,
    ) -> Result<(), crate::pipeline::CompileError> {
        use turnpike_metrics::Counter;
        // `regalloc` fills a scratch `PassStats` internally; the pass
        // forwards the spill accounting into the shared registry.
        let mut scratch = PassStats::default();
        regalloc(&mut prog.func, cx.config.store_aware_ra, &mut scratch)?;
        cx.metrics
            .add(Counter::SpillStores, u64::from(scratch.spill_stores));
        cx.metrics
            .add(Counter::SpillLoads, u64::from(scratch.spill_loads));
        cx.metrics
            .add(Counter::SpilledVregs, u64::from(scratch.spilled_vregs));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::{interp, DataSegment, FunctionBuilder, Program};

    /// Golden compare ignoring spill-slot addresses (an implementation
    /// detail of the allocated program).
    fn data_golden(p: &Program) -> (Option<i64>, std::collections::BTreeMap<u64, i64>) {
        let (ret, mem) = interp::golden(p).unwrap();
        (
            ret,
            mem.into_iter().filter(|(a, _)| *a < SPILL_BASE).collect(),
        )
    }

    /// A function with `n` simultaneously-live values summed at the end.
    fn high_pressure(n: u32) -> Program {
        let mut b = FunctionBuilder::new("hp");
        let regs: Vec<Reg> = (0..n).map(|_| b.fresh_reg()).collect();
        for (i, &r) in regs.iter().enumerate() {
            b.mov(r, (i as i64 + 1) * 3);
        }
        let acc = b.fresh_reg();
        b.mov(acc, 0i64);
        for &r in &regs {
            b.add(acc, acc, r);
        }
        b.ret(Some(Operand::Reg(acc)));
        Program::new(b.finish().unwrap(), DataSegment::zeroed(0x1000, 0))
    }

    #[test]
    fn low_pressure_never_spills() {
        let mut p = high_pressure(10);
        let golden = interp::golden(&p).unwrap();
        let mut stats = PassStats::default();
        let res = regalloc(&mut p.func, false, &mut stats).unwrap();
        assert_eq!(res.slots_used, 0);
        assert_eq!(stats.spill_stores, 0);
        assert!(p.func.num_regs == 32);
        turnpike_ir::verify_function(&p.func).unwrap();
        assert_eq!(interp::golden(&p).unwrap(), golden);
    }

    #[test]
    fn high_pressure_spills_and_preserves_semantics() {
        let mut p = high_pressure(40);
        let golden = data_golden(&p);
        let mut stats = PassStats::default();
        let res = regalloc(&mut p.func, false, &mut stats).unwrap();
        assert!(res.slots_used > 0);
        assert!(stats.spill_stores > 0);
        assert_eq!(data_golden(&p), golden);
        // All registers in the rewritten function are physical.
        for (_, _, inst) in p.func.iter_insts() {
            if let Some(d) = inst.def() {
                assert!(d.0 < 32);
            }
            for u in inst.uses() {
                assert!(u.0 < 32);
            }
        }
    }

    /// Store-aware mode must produce fewer spill stores on a kernel whose
    /// hot loop writes one set of registers and only reads another.
    #[test]
    fn store_aware_reduces_spill_stores() {
        let mut bld = FunctionBuilder::new("wr");
        // 27 read-only values defined once (low write frequency)...
        let ro: Vec<Reg> = (0..27).map(|_| bld.fresh_reg()).collect();
        for (i, &r) in ro.iter().enumerate() {
            bld.mov(r, i as i64);
        }
        // ...and 6 write-hot accumulators updated every iteration.
        let hot: Vec<Reg> = (0..6).map(|_| bld.fresh_reg()).collect();
        for &h in &hot {
            bld.mov(h, 0i64);
        }
        let i = bld.fresh_reg();
        let c = bld.fresh_reg();
        bld.mov(i, 0i64);
        let body = bld.create_block();
        let done = bld.create_block();
        bld.jump(body);
        bld.switch_to(body);
        for (k, &h) in hot.iter().enumerate() {
            bld.add(h, h, ro[k * 4]);
        }
        bld.add(i, i, 1i64);
        bld.cmp_lt(c, i, 100i64);
        bld.branch(c, body, done);
        bld.switch_to(done);
        let acc = bld.fresh_reg();
        bld.mov(acc, 0i64);
        for &h in &hot {
            bld.add(acc, acc, h);
        }
        for &r in &ro {
            bld.add(acc, acc, r);
        }
        bld.ret(Some(Operand::Reg(acc)));
        let f = bld.finish().unwrap();
        let prog = Program::new(f, DataSegment::zeroed(0x1000, 0));
        let golden = data_golden(&prog);

        let mut s_plain = PassStats::default();
        let mut p1 = prog.clone();
        regalloc(&mut p1.func, false, &mut s_plain).unwrap();
        assert_eq!(data_golden(&p1), golden);

        let mut s_aware = PassStats::default();
        let mut p2 = prog.clone();
        regalloc(&mut p2.func, true, &mut s_aware).unwrap();
        assert_eq!(data_golden(&p2), golden);

        assert!(
            s_aware.spill_stores <= s_plain.spill_stores,
            "store-aware RA should not create more spill stores \
             ({} vs {})",
            s_aware.spill_stores,
            s_plain.spill_stores
        );
    }

    #[test]
    fn params_keep_physical_homes() {
        let mut b = FunctionBuilder::new("p");
        let x = b.param();
        let y = b.fresh_reg();
        b.add(y, x, 1i64);
        b.ret(Some(Operand::Reg(y)));
        let f = b.finish().unwrap();
        let mut prog = Program::with_params(f, DataSegment::zeroed(0, 0), vec![41]);
        let mut stats = PassStats::default();
        regalloc(&mut prog.func, false, &mut stats).unwrap();
        assert_eq!(prog.func.params.len(), 1);
        assert!(prog.func.params[0].0 < ALLOCATABLE);
        assert_eq!(interp::golden(&prog).unwrap().0, Some(42));
    }
}
