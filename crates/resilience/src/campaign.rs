//! Fault-injection campaigns with SDC audits.
//!
//! A campaign compiles a kernel under a scheme, records the fault-free
//! result, then re-runs it many times with injected particle strikes
//! (register parity flips and datapath corruptions, per the paper's §5 fault
//! model) and compares the final architectural memory and return value
//! against the fault-free run. For resilient schemes every run must match —
//! the acoustic-sensor guarantee is *zero* silent data corruption.

use crate::driver::{run_kernel, run_kernel_with_faults, RunError, RunSpec};
use rand::{rngs::StdRng, Rng, SeedableRng};
use turnpike_ir::Program;
use turnpike_sensor::StrikeSampler;
use turnpike_sim::{Fault, FaultKind, FaultPlan};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of injected runs.
    pub runs: usize,
    /// RNG seed (campaigns are deterministic given a seed).
    pub seed: u64,
    /// Strikes per run (the paper's model is single-event upsets; >1
    /// stresses repeated recovery).
    pub strikes_per_run: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            runs: 20,
            seed: 0xF00D,
            strikes_per_run: 1,
        }
    }
}

/// Campaign outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// Runs executed.
    pub runs: usize,
    /// Runs whose final state differed from the fault-free run (SDC).
    pub sdc: usize,
    /// Total recoveries observed.
    pub recoveries: u64,
    /// Total detections observed.
    pub detections: u64,
    /// Detections via register parity / hardened access paths.
    pub parity_detections: u64,
    /// Detections via the acoustic sensor.
    pub sensor_detections: u64,
    /// Runs where the strike landed after program completion (no effect).
    pub post_completion: usize,
}

impl CampaignReport {
    /// Whether the scheme kept its zero-SDC guarantee.
    pub fn sdc_free(&self) -> bool {
        self.sdc == 0
    }
}

/// Run a fault-injection campaign.
///
/// # Errors
///
/// Propagates compile/simulate failures (not SDCs — those are counted).
pub fn fault_campaign(
    program: &Program,
    spec: &RunSpec,
    config: &CampaignConfig,
) -> Result<CampaignReport, RunError> {
    let golden = run_kernel(program, spec)?;
    let horizon = golden.outcome.stats.cycles.max(2);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sampler = StrikeSampler::new(config.seed ^ 0x5eed, spec.wcdl);
    let mut report = CampaignReport {
        runs: config.runs,
        ..CampaignReport::default()
    };
    for _ in 0..config.runs {
        let mut faults = Vec::with_capacity(config.strikes_per_run);
        for _ in 0..config.strikes_per_run {
            let strike = sampler.sample(horizon);
            let kind = if rng.gen_bool(0.5) {
                FaultKind::RegisterParity {
                    reg: rng.gen_range(0..32),
                    bit: rng.gen_range(0..64),
                }
            } else {
                FaultKind::Datapath {
                    bit: rng.gen_range(0..64),
                }
            };
            faults.push(Fault {
                strike_cycle: strike.cycle,
                detect_latency: strike.detect_latency,
                kind,
            });
        }
        let plan = FaultPlan::new(faults);
        let run = run_kernel_with_faults(program, spec, &plan)?;
        report.recoveries += run.outcome.stats.recoveries;
        report.detections += run.outcome.stats.detections;
        report.parity_detections += run.outcome.stats.parity_detections;
        report.sensor_detections += run.outcome.stats.sensor_detections;
        if run.outcome.stats.detections == 0 {
            report.post_completion += 1;
        }
        if run.outcome.ret != golden.outcome.ret || run.outcome.memory != golden.outcome.memory {
            report.sdc += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use turnpike_workloads::{kernel_by_name, Scale, Suite};

    fn kernel(suite: Suite, name: &str) -> Program {
        kernel_by_name(suite, name, Scale::Smoke)
            .expect("known kernel")
            .program
    }

    #[test]
    fn turnpike_is_sdc_free_on_diverse_kernels() {
        for (suite, name) in [
            (Suite::Cpu2006, "bwaves"),
            (Suite::Cpu2006, "hmmer"),
            (Suite::Cpu2017, "leela"),
            (Suite::Splash3, "radix"),
        ] {
            let p = kernel(suite, name);
            let report = fault_campaign(
                &p,
                &RunSpec::new(Scheme::Turnpike),
                &CampaignConfig {
                    runs: 12,
                    seed: 42,
                    strikes_per_run: 1,
                },
            )
            .unwrap();
            assert!(report.sdc_free(), "{name}: {report:?}");
            assert!(report.detections > 0, "{name}: no strike landed in-run");
        }
    }

    #[test]
    fn turnstile_is_sdc_free_too() {
        let p = kernel(Suite::Cpu2006, "libquan");
        let report = fault_campaign(
            &p,
            &RunSpec::new(Scheme::Turnstile),
            &CampaignConfig {
                runs: 12,
                seed: 7,
                strikes_per_run: 1,
            },
        )
        .unwrap();
        assert!(report.sdc_free(), "{report:?}");
    }

    #[test]
    fn multiple_strikes_per_run_still_recover() {
        let p = kernel(Suite::Cpu2006, "leslie3d");
        let report = fault_campaign(
            &p,
            &RunSpec::new(Scheme::Turnpike),
            &CampaignConfig {
                runs: 8,
                seed: 3,
                strikes_per_run: 3,
            },
        )
        .unwrap();
        assert!(report.sdc_free(), "{report:?}");
        assert!(report.recoveries >= report.runs as u64 / 2);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let p = kernel(Suite::Cpu2006, "bwaves");
        let cfg = CampaignConfig {
            runs: 5,
            seed: 99,
            strikes_per_run: 1,
        };
        let a = fault_campaign(&p, &RunSpec::new(Scheme::Turnpike), &cfg).unwrap();
        let b = fault_campaign(&p, &RunSpec::new(Scheme::Turnpike), &cfg).unwrap();
        assert_eq!(a, b);
    }
}
