//! `BENCH_reproduce.json` as a merged, multi-block perf record.
//!
//! Every generating `reproduce` invocation — figure targets, `loadgen`,
//! `sim-throughput` — records its perf block here. Historically each writer
//! replaced the whole file, so running `reproduce loadgen` after
//! `reproduce all` silently discarded the figure timings. The file is now a
//! single top-level JSON object keyed by block name:
//!
//! ```json
//! {
//!   "all": { "target": "all", "wall_ms": 1234, ... },
//!   "loadgen": { "target": "loadgen", "report": { ... } },
//!   "sim_throughput": { "golden_path_ns_per_inst": 18.4, ... }
//! }
//! ```
//!
//! [`write_block`] upserts one block and preserves every other, so the
//! record accretes across invocations instead of thrashing. The scanner is
//! hand-rolled (the workspace has no JSON dependency, by design): it splits
//! the top-level object into raw `(key, value)` slices — values are kept
//! verbatim, never re-serialized — with string- and nesting-aware scanning.
//!
//! A file written by the old single-record format (a top-level object with
//! a `"target"` string field) is migrated on first merge: the whole object
//! becomes one block keyed by that target name.

use std::io;
use std::path::Path;

/// Split the top-level JSON object of `doc` into raw `(key, value)` pairs,
/// values verbatim (trimmed). `None` when `doc` is not a `{...}` object or
/// is malformed — callers treat that as "no prior record".
fn parse_blocks(doc: &str) -> Option<Vec<(String, String)>> {
    let s = doc.as_bytes();
    let mut i = skip_ws(s, 0);
    if i >= s.len() || s[i] != b'{' {
        return None;
    }
    i = skip_ws(s, i + 1);
    let mut out = Vec::new();
    if i < s.len() && s[i] == b'}' {
        return (skip_ws(s, i + 1) == s.len()).then_some(out);
    }
    loop {
        let (key, after_key) = scan_string(s, i)?;
        i = skip_ws(s, after_key);
        if i >= s.len() || s[i] != b':' {
            return None;
        }
        i = skip_ws(s, i + 1);
        let end = scan_value(s, i)?;
        out.push((key, doc[i..end].trim().to_string()));
        i = skip_ws(s, end);
        match s.get(i) {
            Some(b',') => i = skip_ws(s, i + 1),
            Some(b'}') => {
                return (skip_ws(s, i + 1) == s.len()).then_some(out);
            }
            _ => return None,
        }
    }
}

fn skip_ws(s: &[u8], mut i: usize) -> usize {
    while i < s.len() && s[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Scan a JSON string starting at `i` (must be `"`); returns its unescaped-
/// naive content (escapes are skipped, not decoded — block keys are plain
/// identifiers) and the index just past the closing quote.
fn scan_string(s: &[u8], i: usize) -> Option<(String, usize)> {
    if s.get(i) != Some(&b'"') {
        return None;
    }
    let mut j = i + 1;
    while j < s.len() {
        match s[j] {
            b'\\' => j += 2,
            b'"' => {
                let content = std::str::from_utf8(&s[i + 1..j]).ok()?;
                return Some((content.to_string(), j + 1));
            }
            _ => j += 1,
        }
    }
    None
}

/// Scan one JSON value starting at `i`; returns the index just past it.
/// Balances `{}`/`[]` outside strings; scalars run until a top-level
/// delimiter (`,`, `}`, `]`) or end of input.
fn scan_value(s: &[u8], i: usize) -> Option<usize> {
    match s.get(i)? {
        b'"' => scan_string(s, i).map(|(_, end)| end),
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut j = i;
            while j < s.len() {
                match s[j] {
                    b'"' => j = scan_string(s, j)?.1,
                    b'{' | b'[' => {
                        depth += 1;
                        j += 1;
                    }
                    b'}' | b']' => {
                        depth -= 1;
                        j += 1;
                        if depth == 0 {
                            return Some(j);
                        }
                    }
                    _ => j += 1,
                }
            }
            None
        }
        _ => {
            let mut j = i;
            while j < s.len() && !matches!(s[j], b',' | b'}' | b']') && !s[j].is_ascii_whitespace()
            {
                j += 1;
            }
            (j > i).then_some(j)
        }
    }
}

/// The blocks of an existing record, with legacy migration: a pre-merge
/// single-record file (top-level `"target"` string field) becomes one block
/// keyed by that target.
fn load_blocks(doc: &str) -> Vec<(String, String)> {
    let Some(pairs) = parse_blocks(doc) else {
        return Vec::new();
    };
    if let Some((_, target)) = pairs.iter().find(|(k, _)| k == "target") {
        if let Some(name) = target.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
            return vec![(name.to_string(), doc.trim().to_string())];
        }
    }
    pairs
}

/// Re-indent a multi-line raw value so it nests one level deep: every line
/// after the first gains a two-space prefix.
fn indent(value: &str) -> String {
    value.trim().replace('\n', "\n  ")
}

/// Merge `(key, value)` into the record `doc`, replacing the block in place
/// if the key exists (order is preserved; new keys append). Returns the new
/// document text.
pub fn upsert_block(doc: &str, key: &str, value: &str) -> String {
    let mut blocks = load_blocks(doc);
    match blocks.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = value.trim().to_string(),
        None => blocks.push((key.to_string(), value.trim().to_string())),
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in blocks.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!("  {}: {}", crate::json_string(k), indent(v)));
    }
    out.push_str("\n}\n");
    out
}

/// Upsert one block into the record at `path` (created if absent; an
/// unreadable or malformed record is replaced by a fresh one holding only
/// this block).
pub fn write_block(path: impl AsRef<Path>, key: &str, value: &str) -> io::Result<()> {
    let path = path.as_ref();
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    std::fs::write(path, upsert_block(&existing, key, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_file_holds_one_block() {
        let doc = upsert_block("", "fig21", "{\n  \"wall_ms\": 3\n}");
        assert_eq!(doc, "{\n  \"fig21\": {\n    \"wall_ms\": 3\n  }\n}\n");
        assert_eq!(load_blocks(&doc).len(), 1);
    }

    #[test]
    fn merge_preserves_other_blocks() {
        // The regression this module exists for: loadgen after a figure run
        // must not discard the figure's record (or vice versa).
        let doc = upsert_block("", "all", "{\"wall_ms\": 10}");
        let doc = upsert_block(&doc, "loadgen", "{\"clients\": 4}");
        let blocks = load_blocks(&doc);
        assert_eq!(
            blocks,
            vec![
                ("all".into(), "{\"wall_ms\": 10}".into()),
                ("loadgen".into(), "{\"clients\": 4}".into()),
            ]
        );
    }

    #[test]
    fn upsert_replaces_in_place() {
        let doc = upsert_block("", "a", "1");
        let doc = upsert_block(&doc, "b", "2");
        let doc = upsert_block(&doc, "a", "3");
        assert_eq!(
            load_blocks(&doc),
            vec![("a".into(), "3".into()), ("b".into(), "2".into())]
        );
    }

    #[test]
    fn legacy_single_record_is_migrated() {
        // A file written by the pre-merge format: one record, identified by
        // its top-level "target" field.
        let legacy = "{\n  \"target\": \"loadgen\",\n  \"clients\": 8,\n  \
                      \"report\": {\"p99\": [1, 2]}\n}\n";
        let doc = upsert_block(legacy, "fig4", "{\"wall_ms\": 7}");
        let blocks = load_blocks(&doc);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].0, "loadgen");
        assert!(blocks[0].1.contains("\"clients\": 8"));
        assert!(blocks[0].1.contains("\"p99\": [1, 2]"));
        assert_eq!(blocks[1], ("fig4".into(), "{\"wall_ms\": 7}".into()));
    }

    #[test]
    fn malformed_record_is_replaced() {
        for junk in ["not json", "[1, 2]", "{\"unterminated\": ", ""] {
            let doc = upsert_block(junk, "k", "{\"v\": 1}");
            assert_eq!(load_blocks(&doc), vec![("k".into(), "{\"v\": 1}".into())]);
        }
    }

    #[test]
    fn values_survive_nesting_strings_and_escapes() {
        let gnarly = r#"{"s": "br}ace, \"q\" [", "arr": [1, {"x": [2]}], "n": -1.5e3}"#;
        let doc = upsert_block("", "g", gnarly);
        let doc = upsert_block(&doc, "h", "true");
        let blocks = load_blocks(&doc);
        assert_eq!(blocks[0].0, "g");
        // Round-trip: the value comes back verbatim modulo the nesting
        // indent (no newlines here, so fully verbatim).
        assert_eq!(blocks[0].1, gnarly);
        assert_eq!(blocks[1], ("h".into(), "true".into()));
    }

    #[test]
    fn write_block_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("tp-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_reproduce.json");
        write_block(&path, "all", "{\"wall_ms\": 1}").unwrap();
        write_block(
            &path,
            "sim_throughput",
            "{\"golden_path_ns_per_inst\": 18.0}",
        )
        .unwrap();
        write_block(&path, "all", "{\"wall_ms\": 2}").unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let blocks = load_blocks(&doc);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0], ("all".into(), "{\"wall_ms\": 2}".into()));
        assert_eq!(blocks[1].0, "sim_throughput");
    }
}
