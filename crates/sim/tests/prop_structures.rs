//! Property tests on the resilience microarchitecture structures.

use proptest::prelude::*;
use turnpike_sim::clq::{Clq, CompactClq, IdealClq};
use turnpike_sim::store_buffer::{EntryKind, StoreBuffer};
use turnpike_sim::Coloring;

proptest! {
    /// Store-to-load forwarding always returns the youngest pending value
    /// for an address, matching a simple log model.
    #[test]
    fn store_buffer_forwards_youngest(
        stores in prop::collection::vec((0u64..8, -100i64..100, 0u64..3), 1..12),
        probe in 0u64..8,
    ) {
        let mut sb = StoreBuffer::new(64); // large: no stalls in this test
        let mut log: Vec<(u64, i64)> = Vec::new();
        for (cell, value, region) in stores {
            let addr = 0x1000 + cell * 8;
            sb.push(EntryKind::Data { addr }, value, region, 0);
            log.push((addr, value));
        }
        let addr = 0x1000 + probe * 8;
        let model = log.iter().rev().find(|(a, _)| *a == addr).map(|(_, v)| *v);
        prop_assert_eq!(sb.forward(addr), model);
    }

    /// Verified entries drain strictly in FIFO order at one per cycle, and
    /// discarding unverified entries never removes scheduled ones.
    #[test]
    fn store_buffer_release_discipline(
        n_r0 in 1usize..5,
        n_r1 in 1usize..5,
        verify_time in 10u64..100,
    ) {
        let mut sb = StoreBuffer::new(16);
        for i in 0..n_r0 {
            sb.push(EntryKind::Data { addr: 0x1000 + i as u64 * 8 }, i as i64, 0, 0);
        }
        for i in 0..n_r1 {
            sb.push(EntryKind::Data { addr: 0x2000 + i as u64 * 8 }, i as i64, 1, 0);
        }
        sb.mark_verified(0, verify_time);
        // Unverified region-1 entries are discarded; region-0 survive.
        let discarded = sb.discard_unverified();
        prop_assert_eq!(discarded, n_r1);
        prop_assert_eq!(sb.len(), n_r0);
        // Drain: one per cycle starting at verify_time.
        let mut released = 0;
        for t in verify_time..verify_time + n_r0 as u64 {
            let out = sb.drain_until(t);
            released += out.len();
            for e in out {
                prop_assert!(e.release_at.expect("scheduled") <= t);
            }
        }
        prop_assert_eq!(released, n_r0);
        prop_assert!(sb.is_empty());
    }

    /// The compact CLQ is conservative: it never certifies a store WAR-free
    /// that the ideal (exact) design would flag as a WAR violation.
    #[test]
    fn compact_clq_is_conservative(
        loads in prop::collection::vec((0u64..32, 0u64..3), 0..24),
        stores in prop::collection::vec((0u64..32, 0u64..3), 1..12),
    ) {
        let mut ideal = IdealClq::default();
        let mut compact = CompactClq::new(4);
        for &(cell, region) in &loads {
            ideal.record_load(0x1000 + cell * 8, region);
            compact.record_load(0x1000 + cell * 8, region);
        }
        for &(cell, region) in &stores {
            let addr = 0x1000 + cell * 8;
            let ideal_free = ideal.check_war_free(addr, region);
            let compact_free = compact.check_war_free(addr, region);
            // compact_free -> ideal_free (never more permissive).
            prop_assert!(!compact_free || ideal_free,
                "compact certified a WAR store at cell {cell} region {region}");
        }
    }

    /// Coloring never hands out the currently-verified color of a register,
    /// and a squash returns exactly the unverified colors.
    #[test]
    fn coloring_never_reuses_verified_color(
        ops in prop::collection::vec((0u8..4, 0u64..6), 1..40),
    ) {
        let mut c = Coloring::new(32, 4);
        let reg = 7u8;
        let mut verified_up_to = 0u64;
        for (kind, region) in ops {
            match kind {
                0..=1 => {
                    // A checkpoint in some region at or after the frontier.
                    let r = verified_up_to + region;
                    if let Some(color) = c.try_assign(reg, r) {
                        // Verified color may be reassigned only after a
                        // *newer* verification displaced it back into AC.
                        prop_assert!(
                            c.verified_color(reg) != color
                                || r == verified_up_to + region,
                        );
                    }
                }
                2 => {
                    c.on_region_verified(verified_up_to);
                    verified_up_to += 1;
                }
                _ => {
                    c.on_squash(verified_up_to);
                }
            }
        }
    }

    /// After any operation mix, a register's pool accounting stays exact:
    /// colors are partitioned between AC (assignable), UC (in flight), and
    /// VC (verified) — demonstrated by draining AC to exhaustion.
    #[test]
    fn coloring_pool_is_conserved(regions in prop::collection::vec(0u64..8, 0..12)) {
        let mut c = Coloring::new(32, 4);
        let reg = 3u8;
        let mut in_flight: Vec<u64> = Vec::new();
        for r in regions {
            if c.try_assign(reg, r).is_some() && !in_flight.contains(&r) {
                in_flight.push(r);
            }
        }
        // Verify everything in flight; every verification frees the
        // previously verified color, so the pool can always be drained to
        // exactly (colors - 1) new assignments plus the VC resident.
        for r in &in_flight {
            c.on_region_verified(*r);
        }
        let mut assigned = 0;
        for r in 100..200 {
            if c.try_assign(reg, r).is_none() {
                break;
            }
            assigned += 1;
        }
        // One color is always off-limits: the VC resident when something
        // verified, or reserved slot 0 (the recovery default) when nothing
        // has verified yet.
        prop_assert_eq!(assigned, 3, "pool minus the verified/default resident");
    }
}
