//! Property tests pinning [`PagedMem`] to a `BTreeMap` reference model.
//!
//! The paged store replaced the simulator's `BTreeMap<u64, i64>` functional
//! memories, so its observable semantics must be exactly the map's: loads
//! of never-inserted addresses return `None` (even next to written slots),
//! inserted zeros are distinct from untouched words, and checkpoints
//! (clones) freeze the state they were taken from while later writes go
//! copy-on-write. Address generation is biased toward page boundaries
//! (the page span is 512 addresses, so 0x1ff/0x200 sit on adjacent pages)
//! where the directory and slot arithmetic are easiest to get wrong.

use std::collections::BTreeMap;

use proptest::prelude::*;
use turnpike_sim::PagedMem;

/// One step of the random workload.
#[derive(Debug, Clone)]
enum Op {
    Load(u64),
    Store(u64, i64),
    /// Clone the memory (the substrate of the core's snapshots) and keep
    /// the pair for an end-of-run comparison against the model's clone.
    Checkpoint,
}

/// Addresses concentrated where bugs live: around page boundaries
/// (multiples of 0x200), the zero page, and a far page — plus a fully
/// random tail for coverage.
fn addr_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        // Within ±2 of a page boundary in the first few pages.
        (0u64..8, 0u64..5).prop_map(|(page, off)| page * 0x200 + 0x1fe + off),
        // Anywhere in the first two pages (same-page traffic).
        0u64..0x400,
        // A distant page, exercising directory insertion order.
        prop_oneof![Just(0x8000_0000u64), Just(u64::MAX), Just(u64::MAX - 1)],
        // Unconstrained.
        any::<u64>(),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The union is unweighted; repeat entries to bias the mix toward
    // stores and loads over checkpoints.
    prop_oneof![
        addr_strategy().prop_map(Op::Load),
        addr_strategy().prop_map(Op::Load),
        (addr_strategy(), any::<i64>()).prop_map(|(a, v)| Op::Store(a, v)),
        (addr_strategy(), any::<i64>()).prop_map(|(a, v)| Op::Store(a, v)),
        (addr_strategy(), any::<i64>()).prop_map(|(a, v)| Op::Store(a, v)),
        Just(Op::Checkpoint),
    ]
}

proptest! {
    /// Every load observes exactly what the reference map would, every
    /// checkpoint freezes the model state at its cycle, and the final
    /// `to_btree` view is the reference map itself.
    #[test]
    fn paged_mem_matches_btree_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut mem = PagedMem::new();
        let mut model: BTreeMap<u64, i64> = BTreeMap::new();
        let mut checkpoints: Vec<(PagedMem, BTreeMap<u64, i64>)> = Vec::new();
        for op in &ops {
            match *op {
                Op::Load(addr) => {
                    prop_assert_eq!(mem.get(addr), model.get(&addr).copied(), "addr {:#x}", addr);
                }
                Op::Store(addr, value) => {
                    mem.insert(addr, value);
                    model.insert(addr, value);
                }
                Op::Checkpoint => {
                    checkpoints.push((mem.clone(), model.clone()));
                }
            }
        }
        prop_assert_eq!(mem.len(), model.len());
        prop_assert_eq!(mem.is_empty(), model.is_empty());
        prop_assert_eq!(mem.to_btree(), model.clone());
        // Later stores must not have leaked into any checkpoint (COW), and
        // each checkpoint must replay its model snapshot exactly.
        for (snap, snap_model) in &checkpoints {
            prop_assert_eq!(snap.to_btree(), snap_model.clone());
            for &addr in snap_model.keys() {
                prop_assert_eq!(snap.get(addr), snap_model.get(&addr).copied());
            }
        }
    }

    /// Untouched words next to written ones stay `None` on both sides of a
    /// page boundary — presence is per address, never per page.
    #[test]
    fn neighbors_of_written_words_stay_untouched(
        page in 0u64..16,
        value in any::<i64>(),
    ) {
        let boundary = (page + 1) * 0x200;
        let mut mem = PagedMem::new();
        mem.insert(boundary - 1, value); // last slot of `page`
        mem.insert(boundary, value);     // first slot of the next page
        prop_assert_eq!(mem.get(boundary - 1), Some(value));
        prop_assert_eq!(mem.get(boundary), Some(value));
        prop_assert_eq!(mem.get(boundary - 2), None);
        prop_assert_eq!(mem.get(boundary + 1), None);
        prop_assert_eq!(mem.len(), 2);
    }
}
