//! Forked fault campaigns must be observationally identical to running
//! every strike from scratch.
//!
//! The snapshot/fork fast path only skips re-simulating the fault-free
//! prefix of each injected run; a snapshot taken at cycle C lies on the
//! execution path of any plan whose earliest strike lands strictly after
//! C, so the resumed run must reproduce the from-scratch run bit for bit —
//! report, per-strike records, and metrics alike. This pins that contract
//! across the full Fig-21 scheme ladder.

use turnpike_resilience::{fault_campaign_forked, CampaignConfig, RunSpec, Scheme};
use turnpike_workloads::{kernel_by_name, Scale, Suite};

fn config() -> CampaignConfig {
    CampaignConfig {
        runs: 10,
        seed: 0x51AB,
        strikes_per_run: 1,
        ..Default::default()
    }
}

#[test]
fn forked_campaign_matches_from_scratch_across_ladder() {
    let program = kernel_by_name(Suite::Cpu2006, "bwaves", Scale::Smoke)
        .expect("bwaves is in the catalog")
        .program;
    for scheme in Scheme::LADDER {
        let spec = RunSpec::new(scheme).with_histograms();
        let (forked_report, forked_records, forked_stats) = fault_campaign_forked(
            &program,
            &spec.clone().with_snapshot_interval(Some(64)),
            &config(),
            2,
        )
        .unwrap();
        let (scratch_report, scratch_records, scratch_stats) =
            fault_campaign_forked(&program, &spec.with_snapshot_interval(None), &config(), 2)
                .unwrap();

        assert_eq!(forked_report, scratch_report, "{scheme}: reports diverge");
        assert_eq!(forked_records, scratch_records, "{scheme}: records diverge");
        // The scratch path must not have forked anything; the fast path
        // must actually exercise forking (a dense interval on a smoke
        // kernel guarantees a usable snapshot before every strike window).
        assert_eq!(scratch_stats.hits, 0, "{scheme}: scratch path forked");
        assert_eq!(scratch_stats.prefix_cycles_saved, 0, "{scheme}");
        assert!(forked_stats.hits > 0, "{scheme}: no run forked");
        assert!(
            forked_stats.prefix_cycles_saved > 0,
            "{scheme}: forks saved no prefix cycles"
        );
        assert_eq!(
            forked_stats.hits + forked_stats.misses,
            config().runs,
            "{scheme}: every run is a hit or a miss"
        );
    }
}

#[test]
fn fork_equivalence_holds_with_multiple_strikes_per_run() {
    let program = kernel_by_name(Suite::Cpu2006, "leslie3d", Scale::Smoke)
        .expect("leslie3d is in the catalog")
        .program;
    let cfg = CampaignConfig {
        runs: 6,
        seed: 9,
        strikes_per_run: 3,
        ..Default::default()
    };
    let spec = RunSpec::new(Scheme::Turnpike).with_histograms();
    let (forked_report, forked_records, _) = fault_campaign_forked(
        &program,
        &spec.clone().with_snapshot_interval(Some(32)),
        &cfg,
        2,
    )
    .unwrap();
    let (scratch_report, scratch_records, _) =
        fault_campaign_forked(&program, &spec.with_snapshot_interval(None), &cfg, 2).unwrap();
    assert_eq!(forked_report, scratch_report);
    assert_eq!(forked_records, scratch_records);
}
