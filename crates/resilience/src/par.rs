//! Minimal deterministic parallel map.
//!
//! The build environment has no access to crates.io, so `rayon` is not
//! available; this is the small slice of it the evaluation engine needs.
//! Work is pulled from a shared atomic index (natural load balancing for
//! items of very different cost, e.g. smoke vs full-scale kernels) and every
//! result is written into its item's slot, so the output order is the input
//! order regardless of thread count or scheduling — callers get byte-stable
//! output for any `threads`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item, using up to `threads` worker threads, and
/// return the results in input order. `f` receives `(index, &item)`.
///
/// `threads <= 1` (or a single item) runs inline on the caller's thread —
/// the degenerate case is exactly a serial `map`, which keeps `--threads 1`
/// free of any thread overhead and trivially deterministic.
///
/// # Panics
///
/// A panic inside `f` is resumed on the caller's thread after all workers
/// stop picking up new items.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    return;
                }
                match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                    Ok(r) => slots.lock().expect("slots poisoned")[i] = Some(r),
                    Err(e) => {
                        // First panic wins; park the payload and stop all
                        // workers by exhausting the index.
                        let mut p = panicked.lock().expect("panic slot poisoned");
                        if p.is_none() {
                            *p = Some(e);
                        }
                        next.store(items.len(), Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = panicked.into_inner().expect("panic slot poisoned") {
        resume_unwind(e);
    }
    slots
        .into_inner()
        .expect("slots poisoned")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(&none, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn panic_propagates() {
        let items: Vec<u32> = (0..32).collect();
        let r = std::panic::catch_unwind(|| {
            par_map(&items, 4, |_, &x| {
                if x == 13 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(r.is_err());
    }
}
