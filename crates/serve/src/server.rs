//! The TCP job server: accept loop, per-connection request handling,
//! worker pool, admission control, per-job timeout/cancellation, and
//! graceful shutdown.
//!
//! The server is generic over an [`Executor`] — the thing that actually
//! compiles/simulates. The production executor (backed by the bench
//! crate's memoizing `Engine` and the artifact [`crate::store::Store`])
//! lives in `turnpike-bench`; tests here use mocks, which keeps this crate
//! free of a dependency cycle with the evaluation harness.
//!
//! # Lifecycle
//!
//! ```text
//!            ┌────────────── readiness loop (one thread) ──────────────┐
//!            │ poll(2): listener + waker + every client connection     │
//! clients ──>│ LineReader ─parse─> admission ──try_push──> JobQueue ───┼──pop──> worker
//!            │ WriteQueue <─ events (mpsc, drained on waker wakeups) <─┼─────────────┘
//!            └─────────────────────────────────────────────────────────┘
//! ```
//!
//! Connections are **not** threads: one readiness loop holds every client
//! socket (nonblocking, multiplexed through the std-only `poll(2)` wrapper
//! in [`crate::poll`]), so a coordinator fanning a campaign across workers
//! — or thousands of loadgen clients — costs the server one poll entry
//! each, not a stack each. Per-connection read/write buffering is the
//! explicit [`LineReader`]/[`WriteQueue`] state machines from
//! [`crate::proto`]; workers hand results back over per-job mpsc channels
//! and nudge the loop through a self-pipe-style waker. The worker pool
//! itself is unchanged from the thread-per-connection design.
//!
//! Shutdown (client `shutdown` request or [`Server::shutdown`]) closes the
//! queue (no new admissions), drains queued + in-flight jobs to their
//! terminal events, joins workers, flushes remaining client output,
//! optionally writes a Chrome trace of job spans, and returns — nothing
//! accepted is lost.
//!
//! # Timeouts and cancellation
//!
//! Cancellation is **cooperative**: a simulated run cannot be preempted
//! mid-instruction, so when a job exceeds its deadline the connection
//! handler raises the job's cancel flag and keeps waiting. Campaign
//! executors observe the flag between injected runs (via the resilience
//! crate's campaign hook) and abandon promptly; single runs finish their
//! current simulation before the worker notices. Either way the client
//! always receives a terminal event.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use turnpike_metrics::{Counter, Hist, MetricSet};

use crate::flight::FlightRecorder;
use crate::json::escape;
use crate::poll::{poll, PollFd};
use crate::proto::{
    Event, JobKind, JobRequest, LineReader, ProgressStats, Request, StoreStatus, WriteQueue,
};
use crate::queue::{JobQueue, PushError};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (read it back from
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission limit: jobs queued (not yet executing) before new
    /// submissions get a typed `overloaded` rejection.
    pub queue_capacity: usize,
    /// Per-job deadline measured from admission; on expiry the job's
    /// cancel flag is raised (cooperative — see module docs).
    pub job_timeout: Duration,
    /// Retry hint sent with `overloaded` rejections.
    pub retry_after_ms: u64,
    /// If set, write a Chrome trace (one complete-event span per job)
    /// here at shutdown.
    pub trace_path: Option<PathBuf>,
    /// If set, keep a per-job [`FlightRecorder`] and dump it here
    /// (`job-<id>.jsonl`) when a job fails, deadlines out, or produces a
    /// quarantined store entry. `None` disables flight recording entirely.
    pub flight_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            job_timeout: Duration::from_secs(300),
            retry_after_ms: 50,
            trace_path: None,
            flight_dir: None,
        }
    }
}

/// What an [`Executor`] hands back for a finished job.
#[derive(Debug, Clone)]
pub struct ExecOutput {
    /// Single-line JSON payload, embedded verbatim in the `done` event.
    pub result: String,
    /// Artifact-store disposition.
    pub store: StoreStatus,
    /// Corrupt store entries quarantined while serving this job.
    pub quarantined: u64,
}

/// Wakes the readiness loop from other threads — workers publishing job
/// events, shutdown triggers. std has no `pipe(2)`, so the classic
/// self-pipe trick is built from a loopback TCP socketpair: the loop polls
/// the receive half; waking writes one byte to the send half. A full
/// socket buffer means wakeups are already pending, so a `WouldBlock`ed
/// wake is itself a successful wake.
struct Waker {
    tx: Mutex<TcpStream>,
}

impl Waker {
    /// Build the socketpair; returns the waker and the receive half for
    /// the loop to poll.
    fn new() -> std::io::Result<(Waker, TcpStream)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx: Mutex::new(tx) }, rx))
    }

    fn wake(&self) {
        let _ = self.tx.lock().unwrap().write(&[1]);
    }
}

/// Per-job control surface handed to the executor: cancellation state and
/// a progress channel back to the submitting client.
pub struct JobCtl {
    job: u64,
    tag: String,
    cancel: Arc<AtomicBool>,
    // mpsc senders are !Sync; executors report progress from worker pools
    // (e.g. the campaign hook fires on par_map threads), so serialize.
    events: Mutex<mpsc::Sender<Event>>,
    /// Nudges the readiness loop after each send so relays don't wait for
    /// the next poll timeout. `None` for detached (direct-CLI) handles.
    waker: Option<Arc<Waker>>,
}

impl JobCtl {
    /// A control handle attached to no connection: never canceled,
    /// progress dropped. Direct (CLI) execution uses this to drive the
    /// exact same executor code path as a served job — one renderer, one
    /// store lookup, byte-identical payloads.
    pub fn detached() -> JobCtl {
        let (tx, _rx) = mpsc::channel();
        JobCtl {
            job: 0,
            tag: String::new(),
            cancel: Arc::new(AtomicBool::new(false)),
            events: Mutex::new(tx),
            waker: None,
        }
    }

    /// Whether the deadline passed or the server asked this job to stop.
    /// Executors should poll this at natural yield points (per campaign
    /// run) and bail with an error mentioning "canceled".
    pub fn is_canceled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The raw cancel flag, for wiring into hooks that take an
    /// `&AtomicBool` directly.
    pub fn cancel_flag(&self) -> &AtomicBool {
        &self.cancel
    }

    /// Stream a progress event (`done`/`total` work units) to the client.
    /// Dropped silently if the client is gone.
    pub fn progress(&self, done: u64, total: u64) {
        let ev = Event::Progress {
            job: self.job,
            tag: self.tag.clone(),
            done,
            total,
            stats: None,
        };
        let _ = self.events.lock().unwrap().send(ev);
        if let Some(w) = &self.waker {
            w.wake();
        }
    }

    /// Stream a progress event enriched with the campaign estimator
    /// payload. Dropped silently if the client is gone.
    pub fn progress_stats(&self, done: u64, total: u64, stats: ProgressStats) {
        let ev = Event::Progress {
            job: self.job,
            tag: self.tag.clone(),
            done,
            total,
            stats: Some(stats),
        };
        let _ = self.events.lock().unwrap().send(ev);
        if let Some(w) = &self.waker {
            w.wake();
        }
    }
}

/// Executes one job. Implementations must be thread-safe: the worker pool
/// calls `execute` concurrently.
pub trait Executor: Send + Sync {
    /// Run `req` to completion (or until `ctl` reports cancellation) and
    /// return the rendered payload.
    ///
    /// # Errors
    ///
    /// A human-readable message; include the word "canceled" when bailing
    /// out due to `ctl.is_canceled()` so the server meters it as a
    /// cancellation rather than a failure.
    fn execute(&self, req: &JobRequest, ctl: &JobCtl) -> Result<ExecOutput, String>;
}

struct Job {
    id: u64,
    req: JobRequest,
    events: mpsc::Sender<Event>,
    cancel: Arc<AtomicBool>,
    enqueued: Instant,
}

struct Span {
    name: String,
    worker: usize,
    start_us: u64,
    dur_us: u64,
    job: u64,
    store: &'static str,
}

struct Inner {
    config: ServerConfig,
    executor: Arc<dyn Executor>,
    queue: JobQueue<Job>,
    metrics: Mutex<MetricSet>,
    shutting_down: AtomicBool,
    next_job: AtomicU64,
    started: Instant,
    spans: Mutex<Vec<Span>>,
    flights: Mutex<std::collections::HashMap<u64, FlightRecorder>>,
    addr: SocketAddr,
    waker: Arc<Waker>,
}

/// A running job server. Dropping the handle does **not** stop the server;
/// call [`Server::shutdown`] (or send a `shutdown` request and
/// [`Server::join`]).
pub struct Server {
    inner: Arc<Inner>,
    thread: JoinHandle<()>,
}

impl Server {
    /// Bind, spawn the worker pool and accept loop, and return a handle.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig, executor: Arc<dyn Executor>) -> std::io::Result<Server> {
        assert!(config.workers >= 1, "need at least one worker");
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (waker, wake_rx) = Waker::new()?;
        let inner = Arc::new(Inner {
            queue: JobQueue::new(config.queue_capacity),
            config,
            executor,
            metrics: Mutex::new(MetricSet::new()),
            shutting_down: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            started: Instant::now(),
            spans: Mutex::new(Vec::new()),
            flights: Mutex::new(std::collections::HashMap::new()),
            addr,
            waker: Arc::new(waker),
        });
        let workers: Vec<_> = (0..inner.config.workers)
            .map(|idx| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, idx))
            })
            .collect();
        let thread = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || serve_loop(&inner, &listener, wake_rx, workers))
        };
        Ok(Server { inner, thread })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Begin graceful shutdown and wait for it to complete: queued and
    /// in-flight jobs run to their terminal events, then everything joins.
    pub fn shutdown(self) {
        self.inner.trigger_shutdown();
        let _ = self.thread.join();
    }

    /// Wait until some client triggers shutdown.
    pub fn join(self) {
        let _ = self.thread.join();
    }

    /// Snapshot of the server's metric registry (for merging into a
    /// process-wide set).
    pub fn metrics(&self) -> MetricSet {
        self.inner.metrics.lock().unwrap().clone()
    }
}

impl Inner {
    fn trigger_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // Nudge the readiness loop so it stops accepting and starts the
        // drain immediately instead of at the next poll wakeup.
        self.waker.wake();
    }

    /// Render the `stats` snapshot body with a fixed key order.
    fn stats_body(&self) -> String {
        let m = self.metrics.lock().unwrap();
        let hist_q = |key, q| m.hist(key).map_or(0, |h| h.quantile(q).round() as u64);
        format!(
            "{{\"queue_depth\":{},\"queue_capacity\":{},\"workers\":{},\"shutting_down\":{},\
             \"accepted\":{},\"rejected\":{},\"completed\":{},\"failed\":{},\"canceled\":{},\
             \"store_hits\":{},\"store_misses\":{},\"store_quarantined\":{},\"queue_peak\":{},\
             \"job_p50_us\":{},\"job_p99_us\":{},\"busy_us\":{},\"uptime_us\":{}}}",
            self.queue.depth(),
            self.queue.capacity(),
            self.config.workers,
            self.shutting_down.load(Ordering::SeqCst),
            m.counter(Counter::ServeAccepted),
            m.counter(Counter::ServeRejected),
            m.counter(Counter::ServeCompleted),
            m.counter(Counter::ServeFailed),
            m.counter(Counter::ServeCanceled),
            m.counter(Counter::ServeStoreHits),
            m.counter(Counter::ServeStoreMisses),
            m.counter(Counter::ServeStoreQuarantined),
            m.counter(Counter::ServeQueuePeak),
            hist_q(Hist::ServeJobMicros, 0.50),
            hist_q(Hist::ServeJobMicros, 0.99),
            m.counter(Counter::ServeBusyMicros),
            self.started.elapsed().as_micros() as u64,
        )
    }

    /// Record one flight event for `job`. A no-op unless flight recording
    /// is configured. Only `accept` — recorded *before* the job enters the
    /// queue, so a worker can never outrun the recorder's creation —
    /// creates a ring; events for jobs whose recorder was already closed
    /// (a relay racing the worker's terminal bookkeeping) are dropped
    /// rather than resurrecting it.
    fn flight(&self, job: u64, kind: &'static str, detail: String) {
        if self.config.flight_dir.is_none() {
            return;
        }
        let t_us = self.started.elapsed().as_micros() as u64;
        let mut map = self.flights.lock().unwrap();
        match map.entry(job) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().record(t_us, kind, detail);
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                if kind == "accept" {
                    v.insert(FlightRecorder::new(job))
                        .record(t_us, kind, detail);
                }
            }
        }
    }

    /// Close `job`'s flight recorder, dumping the ring as JSONL evidence
    /// when `dump` is set (failure, deadline cancel, or quarantine).
    fn flight_close(&self, job: u64, dump: bool) {
        let Some(dir) = &self.config.flight_dir else {
            return;
        };
        let Some(rec) = self.flights.lock().unwrap().remove(&job) else {
            return;
        };
        if dump {
            if let Err(e) = rec.dump(dir) {
                eprintln!("serve: failed to write flight record for job {job}: {e}");
            }
        }
    }

    fn write_trace(&self) {
        let Some(path) = &self.config.trace_path else {
            return;
        };
        let spans = self.spans.lock().unwrap();
        let mut out = String::from("[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"job\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"job\":{},\"store\":\"{}\"}}}}",
                escape(&s.name),
                s.start_us,
                s.dur_us,
                s.worker + 1,
                s.job,
                s.store,
            ));
        }
        out.push_str("]\n");
        let write = || -> std::io::Result<()> {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            std::fs::write(path, &out)
        };
        if let Err(e) = write() {
            eprintln!("serve: failed to write trace {}: {e}", path.display());
        }
    }
}

/// One accepted job from this connection's point of view: the receive end
/// of the worker's event channel plus the deadline/cancellation state the
/// readiness loop enforces.
struct ActiveJob {
    id: u64,
    rx: mpsc::Receiver<Event>,
    cancel: Arc<AtomicBool>,
    deadline: Instant,
    deadline_raised: bool,
}

/// One client connection in the readiness loop: a nonblocking socket
/// bracketed by the protocol's explicit buffer state machines, plus at
/// most one in-flight job (requests on a connection are sequential, as in
/// the thread-per-connection design — pipelined bytes wait in the
/// [`LineReader`] until the current job's terminal event).
struct Conn {
    stream: TcpStream,
    reader: LineReader,
    out: WriteQueue,
    job: Option<ActiveJob>,
    /// Peer is gone (EOF, I/O error, or protocol overflow): stop reading
    /// and writing, but keep the entry until any in-flight job reaches its
    /// terminal event so metering and the drain guarantee hold.
    gone: bool,
    /// Close once the output buffer flushes (set after answering a
    /// `shutdown` request, matching the old per-thread handler's return).
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            reader: LineReader::new(),
            out: WriteQueue::new(),
            job: None,
            gone: false,
            close_after_flush: false,
        }
    }

    /// Queue one event line for the client; dropped if the peer is gone
    /// (a vanished client must not wedge the server — the job still runs
    /// to completion for the metrics and drain guarantees).
    fn push_event(&mut self, ev: &Event) {
        if !self.gone {
            self.out.push_line(&ev.to_line());
        }
    }

    /// Pull whatever the socket has into the line reader. Returns `false`
    /// when the connection is finished (EOF or error).
    fn fill(&mut self) -> bool {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => self.reader.push(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return !self.reader.overflowed(),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }

    /// Flush queued output. Returns `false` on a dead socket.
    fn flush(&mut self) -> bool {
        if self.gone || self.out.is_empty() {
            return true;
        }
        self.out.write_to(&mut self.stream).is_ok()
    }
}

/// The event-driven heart of the server: one thread, one `poll(2)` set
/// covering the listener, the waker, and every client connection.
fn serve_loop(
    inner: &Arc<Inner>,
    listener: &TcpListener,
    wake_rx: TcpStream,
    workers: Vec<JoinHandle<()>>,
) {
    let mut wake_rx = wake_rx;
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        let shutting = inner.shutting_down.load(Ordering::SeqCst);
        // Exit once the drain is complete: no connection has an in-flight
        // job (accepted jobs hold their connection entry even if the peer
        // vanished) and all reachable output is flushed.
        if shutting
            && conns
                .iter()
                .all(|c| c.job.is_none() && (c.gone || c.out.is_empty()))
        {
            break;
        }

        // Build the poll set. Entry 0 is the waker; entry 1 the listener
        // (present only while accepting); the rest map 1:1 onto `conns`.
        let mut entries = Vec::with_capacity(conns.len() + 2);
        entries.push(PollFd::new(&wake_rx, true, false));
        let listener_slot = if shutting {
            None
        } else {
            entries.push(PollFd::new(listener, true, false));
            Some(1)
        };
        let conn_base = entries.len();
        for c in &conns {
            // Read interest even mid-job: EOF/hangup detection is free and
            // pipelined bytes are buffered, not processed, until terminal.
            entries.push(PollFd::new(
                &c.stream,
                !c.gone,
                !c.gone && !c.out.is_empty(),
            ));
        }
        // Sleep until socket activity, a waker nudge, or the nearest job
        // deadline (already-raised deadlines need no further timer — the
        // worker's terminal event will wake the loop).
        let now = Instant::now();
        let timeout = conns
            .iter()
            .filter_map(|c| c.job.as_ref())
            .filter(|j| !j.deadline_raised)
            .map(|j| j.deadline.saturating_duration_since(now))
            .min();
        if let Err(e) = poll(&mut entries, timeout) {
            eprintln!("serve: poll failed: {e}");
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }

        // Drain waker bytes *before* job events: a byte written after this
        // read means its event arrives after this iteration's drain and
        // the leftover byte re-arms the next poll immediately.
        if entries[0].readiness().any() {
            let mut sink = [0u8; 64];
            while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
        }

        // Accept everything pending.
        if listener_slot.is_some_and(|i| entries[i].readiness().any()) {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        conns.push(Conn::new(stream));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        let now = Instant::now();
        for (idx, conn) in conns.iter_mut().enumerate() {
            let ready = entries
                .get(conn_base + idx)
                .map(|e| e.readiness())
                .unwrap_or_default();
            if !conn.gone && (ready.readable || ready.hangup || ready.error) && !conn.fill() {
                conn.gone = true;
            }
            relay_job_events(inner, conn);
            enforce_deadline(inner, conn, now);
            // Parse buffered requests only while no job is in flight;
            // each terminal event above may unblock the next one.
            while conn.job.is_none() && !conn.close_after_flush {
                let Some(line) = conn.reader.next_line() else {
                    break;
                };
                handle_request(inner, conn, &line);
            }
            if !conn.flush() {
                conn.gone = true;
            }
        }
        conns.retain(|c| {
            let drained = c.job.is_none();
            let flushed = c.out.is_empty() || c.gone;
            !(drained && (c.gone || (c.close_after_flush && flushed)))
        });
    }
    // Admission is closed and every accepted job has reached its terminal
    // event; the workers see the closed, empty queue and exit.
    inner.queue.drain_wait();
    for w in workers {
        let _ = w.join();
    }
    inner.write_trace();
}

/// Drain and relay this connection's in-flight job events; clears
/// [`Conn::job`] on the terminal event.
fn relay_job_events(inner: &Arc<Inner>, conn: &mut Conn) {
    let Some(job) = conn.job.take() else {
        return;
    };
    loop {
        match job.rx.try_recv() {
            Ok(ev) => {
                let terminal = matches!(ev, Event::Done { .. } | Event::Error { .. });
                if let Event::Progress { done, total, .. } = &ev {
                    // Recorded at relay time: a progress event the client
                    // never saw (terminal raced it) is also absent from the
                    // flight record, which is the truthful ordering.
                    inner.flight(job.id, "progress", format!("done={done} total={total}"));
                }
                conn.push_event(&ev);
                if terminal {
                    return;
                }
            }
            Err(mpsc::TryRecvError::Empty) => {
                conn.job = Some(job);
                return;
            }
            Err(mpsc::TryRecvError::Disconnected) => {
                conn.push_event(&Event::Error {
                    job: job.id,
                    tag: String::new(),
                    message: "internal: worker dropped the job".to_string(),
                });
                return;
            }
        }
    }
}

/// Raise the cancel flag (once) for a job past its deadline; the worker
/// still delivers the terminal event — cancellation is cooperative.
fn enforce_deadline(inner: &Arc<Inner>, conn: &mut Conn, now: Instant) {
    let Some(job) = conn.job.as_mut() else {
        return;
    };
    if job.deadline_raised || now < job.deadline {
        return;
    }
    job.deadline_raised = true;
    if !job.cancel.swap(true, Ordering::SeqCst) {
        inner.flight(
            job.id,
            "deadline",
            "job timeout elapsed; cancel requested".to_string(),
        );
    }
}

/// Handle one parsed request line on a connection with no job in flight.
fn handle_request(inner: &Arc<Inner>, conn: &mut Conn, line: &str) {
    match Request::parse(line) {
        Err(message) => conn.push_event(&Event::Error {
            job: 0,
            tag: String::new(),
            message,
        }),
        Ok(Request::Stats) => conn.push_event(&Event::Stats {
            body: inner.stats_body(),
        }),
        Ok(Request::Metrics) => {
            let body = turnpike_metrics::prometheus_text(&inner.metrics.lock().unwrap());
            conn.push_event(&Event::Metrics { body });
        }
        Ok(Request::Shutdown) => {
            inner.trigger_shutdown();
            conn.push_event(&Event::ShuttingDown { tag: String::new() });
            conn.close_after_flush = true;
        }
        Ok(Request::Job(req)) => admit_job(inner, conn, req),
    }
}

/// Admission control for one job request: typed rejection when saturated
/// or shutting down, otherwise enqueue and attach the job to the
/// connection for event relay.
fn admit_job(inner: &Arc<Inner>, conn: &mut Conn, req: JobRequest) {
    let tag = req.tag.clone();
    if inner.shutting_down.load(Ordering::SeqCst) {
        conn.push_event(&Event::ShuttingDown { tag });
        return;
    }
    let id = inner.next_job.fetch_add(1, Ordering::SeqCst);
    let (tx, rx) = mpsc::channel();
    let cancel = Arc::new(AtomicBool::new(false));
    let job = Job {
        id,
        req,
        events: tx,
        cancel: Arc::clone(&cancel),
        enqueued: Instant::now(),
    };
    // The recorder must exist before the job is in the queue: a worker can
    // pop and even finish the job before the loop's next breath. A
    // rejected job's ring is closed without dumping, so recording `accept`
    // ahead of the push never leaks evidence for a job that never ran.
    inner.flight(
        id,
        "accept",
        format!("tag={tag} kind={}", job.req.kind.name()),
    );
    match inner.queue.try_push(job) {
        Err(PushError::Full(_)) => {
            inner.metrics.lock().unwrap().inc(Counter::ServeRejected);
            inner.flight_close(id, false);
            conn.push_event(&Event::Overloaded {
                tag,
                retry_after_ms: inner.config.retry_after_ms,
            });
        }
        Err(PushError::Closed) => {
            inner.flight_close(id, false);
            conn.push_event(&Event::ShuttingDown { tag });
        }
        Ok(depth) => {
            {
                let mut m = inner.metrics.lock().unwrap();
                m.inc(Counter::ServeAccepted);
                m.record_peak(Counter::ServeQueuePeak, depth as u64);
            }
            inner.flight(id, "queue", format!("queue_depth={depth}"));
            conn.push_event(&Event::Accepted {
                job: id,
                tag,
                queue_depth: depth,
            });
            conn.job = Some(ActiveJob {
                id,
                rx,
                cancel,
                deadline: Instant::now() + inner.config.job_timeout,
                deadline_raised: false,
            });
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, worker_idx: usize) {
    while let Some(job) = inner.queue.pop() {
        let queue_wait = job.enqueued.elapsed();
        let start = Instant::now();
        inner.flight(
            job.id,
            "start",
            format!(
                "worker={worker_idx} queue_wait_us={}",
                queue_wait.as_micros()
            ),
        );
        let ctl = JobCtl {
            job: job.id,
            tag: job.req.tag.clone(),
            cancel: Arc::clone(&job.cancel),
            events: Mutex::new(job.events.clone()),
            waker: Some(Arc::clone(&inner.waker)),
        };
        // A panicking executor must not take the worker (and with it the
        // drain guarantee) down; convert panics into job failures.
        let outcome = catch_unwind(AssertUnwindSafe(|| inner.executor.execute(&job.req, &ctl)))
            .unwrap_or_else(|panic| {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "executor panicked".to_string());
                Err(format!("executor panicked: {msg}"))
            });
        let dur = start.elapsed();
        let canceled = job.cancel.load(Ordering::SeqCst);
        let (terminal, store_name, dump_flight) = match outcome {
            Ok(out) => {
                let name = out.store.name();
                let mut m = inner.metrics.lock().unwrap();
                m.inc(Counter::ServeCompleted);
                match out.store {
                    StoreStatus::Hit => m.inc(Counter::ServeStoreHits),
                    StoreStatus::Miss => m.inc(Counter::ServeStoreMisses),
                    StoreStatus::Off => {}
                }
                m.add(Counter::ServeStoreQuarantined, out.quarantined);
                drop(m);
                // A quarantined store entry is evidence-worthy even though
                // the job itself succeeded: the dump records what the job
                // saw when it hit the corrupt artifact.
                if out.quarantined > 0 {
                    inner.flight(
                        job.id,
                        "quarantine",
                        format!("quarantined={}", out.quarantined),
                    );
                }
                inner.flight(
                    job.id,
                    "done",
                    format!("store={name} dur_us={}", dur.as_micros()),
                );
                (
                    Event::Done {
                        job: job.id,
                        tag: job.req.tag.clone(),
                        store: out.store,
                        result: out.result,
                    },
                    name,
                    out.quarantined > 0,
                )
            }
            Err(message) => {
                let mut m = inner.metrics.lock().unwrap();
                m.inc(if canceled {
                    Counter::ServeCanceled
                } else {
                    Counter::ServeFailed
                });
                drop(m);
                inner.flight(
                    job.id,
                    if canceled { "cancel" } else { "fail" },
                    message.clone(),
                );
                (
                    Event::Error {
                        job: job.id,
                        tag: job.req.tag.clone(),
                        message,
                    },
                    "off",
                    true,
                )
            }
        };
        inner.flight_close(job.id, dump_flight);
        {
            let mut m = inner.metrics.lock().unwrap();
            m.record_hist(Hist::ServeQueueMicros, queue_wait.as_micros() as u64);
            m.record_hist(Hist::ServeJobMicros, dur.as_micros() as u64);
            // Busy time across the pool: utilization = busy_us delta over
            // (uptime_us delta × workers). The fleet loadgen reads this.
            m.add(Counter::ServeBusyMicros, dur.as_micros() as u64);
        }
        if inner.config.trace_path.is_some() {
            let subject = if job.req.kind == JobKind::Figure {
                &job.req.target
            } else {
                &job.req.kernel
            };
            inner.spans.lock().unwrap().push(Span {
                name: format!("{} {}", job.req.kind.name(), subject),
                worker: worker_idx,
                start_us: start.duration_since(inner.started).as_micros() as u64,
                dur_us: dur.as_micros() as u64,
                job: job.id,
                store: store_name,
            });
        }
        let _ = job.events.send(terminal);
        // The terminal event is the one wakeup that must not wait for a
        // poll timeout: the readiness loop clears the connection's job slot
        // (and can resume pipelined requests) only after seeing it.
        inner.waker.wake();
        inner.queue.finish();
    }
}
