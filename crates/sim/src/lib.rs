//! Cycle-level dual-issue in-order core simulator for the Turnpike
//! reproduction.
//!
//! Models the paper's evaluation platform — an ARM Cortex-A53-class core
//! (2-issue, in-order, 64 KB 2-way L1D @ 2 cycles, 128 KB 16-way L2 @ 20
//! cycles, 4-entry store buffer) — plus the resilience microarchitecture:
//!
//! * a **gated store buffer** ([`store_buffer`]) quarantining stores until
//!   their region is verified error-free;
//! * the **region boundary buffer** ([`rbb`]) with the WCDL-based
//!   verification timing logic;
//! * both **committed load queue** designs ([`clq`]): ideal address matching
//!   and the compact per-region range entries with the Figure-13 overflow
//!   automaton;
//! * **hardware coloring** ([`coloring`]) with the AC/UC/VC maps over a
//!   4-color checkpoint-slot pool;
//! * a fault model ([`fault`]) and full **error recovery** (discard, restore
//!   from verified checkpoints, re-execute) wired into the core ([`core`]).
//!
//! # Example
//!
//! ```
//! use turnpike_sim::{Core, SimConfig};
//! use turnpike_isa::{MachInst, MachProgram, MOperand, PhysReg};
//! use turnpike_ir::DataSegment;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let r0 = PhysReg::new(0)?;
//! let prog = MachProgram::from_insts(
//!     "answer",
//!     vec![
//!         MachInst::Mov { dst: r0, src: MOperand::Imm(42) },
//!         MachInst::Ret { value: Some(MOperand::Reg(r0)) },
//!     ],
//!     DataSegment::zeroed(0x1000, 0),
//! );
//! let out = Core::new(&prog, SimConfig::baseline()).run()?;
//! assert_eq!(out.ret, Some(42));
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod clq;
pub mod coloring;
pub mod config;
pub mod core;
pub mod fault;
pub mod mem;
pub mod rbb;
pub mod stats;
pub mod store_buffer;
pub mod trace;
pub mod translate;

pub use clq::{CamClq, Clq, ClqStats, CompactClq, IdealClq};
pub use coloring::Coloring;
pub use config::{ClqKind, SimConfig};
pub use core::{Core, CoreSnapshot, ReplayGuide, SimError, SimOutcome};
pub use fault::{Fault, FaultKind, FaultPlan};
pub use mem::PagedMem;
pub use rbb::Rbb;
pub use stats::{SimHists, SimStats};
pub use store_buffer::StoreBuffer;
pub use trace::{shared_sink, ChromeTrace, JsonlSink, StallKind, Trace, TraceEvent, TraceSink};
pub use translate::Translation;
