//! Server ↔ CLI artifact-store reuse: a job computed through the server
//! is served byte-identically from the persistent store by a *different*
//! executor (the CLI's `submit --direct` path), and vice versa — the
//! store, not the in-process engine caches, carries the result across
//! process boundaries. Also pins the acceptance guarantee: a served
//! campaign result equals the direct-CLI rendering, warm or cold store.

use std::sync::Arc;

use turnpike_bench::{Engine, EngineExecutor};
use turnpike_metrics::Counter;
use turnpike_serve::{
    Client, JobKind, JobRequest, Outcome, Server, ServerConfig, Store, StoreStatus,
};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("turnpike-reuse-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn campaign_req() -> JobRequest {
    let mut req = JobRequest::new(JobKind::Campaign);
    req.kernel = "bwaves".into();
    req.runs = 4;
    req
}

#[test]
fn server_result_is_reused_by_the_direct_cli_path() {
    let root = scratch("server-then-cli");

    // Cold store: the server computes and persists the result.
    let server_exec = EngineExecutor::new(Engine::new(2)).with_store(Store::open(&root));
    let server = Server::start(ServerConfig::default(), Arc::new(server_exec)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let served = match client.submit(&campaign_req()).unwrap() {
        Outcome::Done { store, result, .. } => {
            assert_eq!(store, "miss", "cold store must compute");
            result
        }
        other => panic!("expected done, got {other:?}"),
    };
    let m = server.metrics();
    assert_eq!(m.counter(Counter::ServeStoreMisses), 1);
    assert_eq!(m.counter(Counter::ServeStoreHits), 0);
    server.shutdown();

    // A brand-new executor (fresh engine, fresh caches — the CLI process)
    // sharing only the store directory serves the identical bytes as a hit.
    let cli_exec = EngineExecutor::new(Engine::serial()).with_store(Store::open(&root));
    let direct = cli_exec.execute_direct(&campaign_req()).unwrap();
    assert_eq!(direct.store, StoreStatus::Hit);
    assert_eq!(direct.result, served, "served vs CLI bytes");
    assert_eq!(cli_exec.engine().sim_count(), 0, "hit must not simulate");

    // And a second server over the same store reports the hit in its
    // metrics registry.
    let warm_exec = EngineExecutor::new(Engine::serial()).with_store(Store::open(&root));
    let warm = Server::start(ServerConfig::default(), Arc::new(warm_exec)).unwrap();
    let mut client = Client::connect(warm.addr()).unwrap();
    match client.submit(&campaign_req()).unwrap() {
        Outcome::Done { store, result, .. } => {
            assert_eq!(store, "hit");
            assert_eq!(result, served);
        }
        other => panic!("expected done, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert!(stats.contains("\"store_hits\":1"), "{stats}");
    warm.shutdown();

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn cli_result_is_reused_by_the_server() {
    let root = scratch("cli-then-server");
    let mut req = JobRequest::new(JobKind::Run);
    req.kernel = "mcf".into();

    // The CLI computes first...
    let cli_exec = EngineExecutor::new(Engine::serial()).with_store(Store::open(&root));
    let direct = cli_exec.execute_direct(&req).unwrap();
    assert_eq!(direct.store, StoreStatus::Miss);

    // ...and the server picks it up warm.
    let server_exec = EngineExecutor::new(Engine::serial()).with_store(Store::open(&root));
    let server = Server::start(ServerConfig::default(), Arc::new(server_exec)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    match client.submit(&req).unwrap() {
        Outcome::Done { store, result, .. } => {
            assert_eq!(store, "hit");
            assert_eq!(result, direct.result);
        }
        other => panic!("expected done, got {other:?}"),
    }
    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn warm_and_cold_payloads_are_byte_identical_without_a_store_too() {
    // The renderer itself is deterministic: two independent engines (cold
    // caches each time) produce the same bytes for every job kind.
    for kind in [
        JobKind::Compile,
        JobKind::Run,
        JobKind::Campaign,
        JobKind::Figure,
    ] {
        let mut req = JobRequest::new(kind);
        req.target = "table1".into();
        let a = EngineExecutor::new(Engine::serial())
            .execute_direct(&req)
            .unwrap();
        let b = EngineExecutor::new(Engine::serial())
            .execute_direct(&req)
            .unwrap();
        assert_eq!(a.result, b.result, "{kind:?}");
        assert_eq!(a.store, StoreStatus::Off);
    }
}
