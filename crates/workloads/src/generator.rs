//! Seeded random kernel generator.
//!
//! Complements the fixed 36-kernel catalog with an unbounded family of
//! well-formed, terminating programs for stress testing: random loop nests
//! with configurable store density, checkpoint-relevant live values, and
//! data-dependent branches. Every generated program terminates (loops are
//! counted) and is accepted by the IR verifier, so the full
//! compile-and-simulate stack can be fuzzed deterministically by seed.

use rand::{rngs::StdRng, Rng, SeedableRng};
use turnpike_ir::{BinOp, CmpOp, DataSegment, FunctionBuilder, Operand, Program, Reg};

/// Knobs for the generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of sequential loops (1..=4 recommended).
    pub loops: usize,
    /// Trip count per loop.
    pub trip: i64,
    /// Straight-line operations per loop body.
    pub body_ops: usize,
    /// Probability (0..=1) that a body op is a store.
    pub store_density: f64,
    /// Probability that a body op is a load.
    pub load_density: f64,
    /// Number of long-lived accumulator registers.
    pub accumulators: usize,
    /// Words of addressable data (power of two recommended).
    pub data_words: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            loops: 2,
            trip: 40,
            body_ops: 12,
            store_density: 0.2,
            load_density: 0.25,
            accumulators: 3,
            data_words: 64,
        }
    }
}

/// Generate a random terminating program from a seed.
pub fn generate(seed: u64, config: &GeneratorConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = config;
    let mut b = FunctionBuilder::new(&format!("gen{seed}"));
    let base = b.param();
    let accs: Vec<Reg> = (0..cfg.accumulators.max(1))
        .map(|_| b.fresh_reg())
        .collect();
    let i = b.fresh_reg();
    let t = b.fresh_reg();
    let v = b.fresh_reg();
    let c = b.fresh_reg();
    for (k, &a) in accs.iter().enumerate() {
        b.mov(a, k as i64 + 1);
    }
    let mask = (cfg.data_words.next_power_of_two().max(2) - 1) as i64;

    for _ in 0..cfg.loops.max(1) {
        let body = b.create_block();
        let next = b.create_block();
        b.mov(i, 0i64);
        b.jump(body);
        b.switch_to(body);
        for _ in 0..cfg.body_ops {
            let roll: f64 = rng.gen();
            if roll < cfg.store_density {
                // Store an accumulator at a masked address.
                let a = accs[rng.gen_range(0..accs.len())];
                b.bin(BinOp::And, t, i, mask);
                b.shl(t, t, 3i64);
                b.add(t, t, Operand::Reg(base));
                b.store(a, t, 0);
            } else if roll < cfg.store_density + cfg.load_density {
                b.bin(BinOp::And, t, i, mask);
                b.shl(t, t, 3i64);
                b.add(t, t, Operand::Reg(base));
                b.load(v, t, 0);
                let a = accs[rng.gen_range(0..accs.len())];
                b.add(a, a, Operand::Reg(v));
            } else {
                let a = accs[rng.gen_range(0..accs.len())];
                let s = accs[rng.gen_range(0..accs.len())];
                match rng.gen_range(0..4) {
                    0 => b.add(a, a, Operand::Reg(s)),
                    1 => b.xor(a, a, Operand::Reg(s)),
                    2 => b.mul(a, a, rng.gen_range(1i64..4)),
                    _ => b.bin(BinOp::Shr, a, a, 1i64),
                }
            }
        }
        b.add(i, i, 1i64);
        b.cmp(CmpOp::Lt, c, i, cfg.trip.max(1));
        b.branch(c, body, next);
        b.switch_to(next);
    }
    let out = accs[0];
    for &a in &accs[1..] {
        b.add(out, out, a);
    }
    b.store(out, base, 0);
    b.ret(Some(Operand::Reg(out)));
    let words: Vec<i64> = (0..cfg.data_words.next_power_of_two().max(2))
        .map(|k| (k as i64 * 7) % 31 - 15)
        .collect();
    Program::with_params(
        b.finish().expect("generated programs are well-formed"),
        DataSegment::with_words(crate::templates::DATA_BASE, words),
        vec![crate::templates::DATA_BASE as i64],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::interp;

    #[test]
    fn generated_programs_terminate_and_verify() {
        for seed in 0..16 {
            let p = generate(seed, &GeneratorConfig::default());
            turnpike_ir::verify_function(&p.func).unwrap();
            let out = interp::run(&p, &interp::InterpConfig::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(out.dyn_insts > 100, "seed {seed} degenerate");
        }
    }

    #[test]
    fn generation_is_deterministic_by_seed() {
        let cfg = GeneratorConfig::default();
        assert_eq!(generate(9, &cfg), generate(9, &cfg));
        assert_ne!(generate(9, &cfg), generate(10, &cfg));
    }

    #[test]
    fn knobs_change_shape() {
        let dense = GeneratorConfig {
            store_density: 0.8,
            load_density: 0.1,
            ..GeneratorConfig::default()
        };
        let sparse = GeneratorConfig {
            store_density: 0.0,
            load_density: 0.1,
            ..GeneratorConfig::default()
        };
        let pd = generate(3, &dense);
        let ps = generate(3, &sparse);
        let od = interp::run(&pd, &interp::InterpConfig::default()).unwrap();
        let os = interp::run(&ps, &interp::InterpConfig::default()).unwrap();
        assert!(od.dyn_stores > os.dyn_stores * 2);
    }
}
