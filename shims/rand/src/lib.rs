//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen`, `gen_bool`, and `gen_range` over integer ranges.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched; this crate keeps the same import paths working. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically adequate for fault-injection sampling and
//! program generation (nothing here is cryptographic).
//!
//! Note: the value *streams* differ from the real `rand`'s StdRng (which
//! is documented as a non-portable, version-dependent implementation
//! detail), so only seed-determinism may be relied on, exactly as with the
//! real crate.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry points (`seed_from_u64` is the only one used here).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Sample one value from the uniform "standard" distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Element types `gen_range` can sample (mirrors `rand`'s
/// `SampleUniform`). Implemented per integer type; the range impls below
/// are *blanket* over `T: SampleUniform`, which is what lets inference
/// flow outward from an expression like `rng.gen_range(0..8) * 8`
/// expected to be `i64` (a per-type range impl would leave the literal
/// ambiguous and fall back to `i32`).
pub trait SampleUniform: Copy {
    /// Uniform sample from `lo..hi`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `lo..=hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::sample(self) < p
    }

    /// Uniform sample from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 step: the seeding expander recommended by the xoshiro
/// authors.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; the stream is different, which the real crate also does
    /// not guarantee across versions).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s.iter().all(|&x| x == 0) {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v: i64 = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w: u64 = rng.gen_range(1u64..=10);
            assert!((1..=10).contains(&w));
            let u: usize = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
