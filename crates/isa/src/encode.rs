//! Fixed-width binary encoding of machine instructions.
//!
//! Each instruction encodes to exactly 8 bytes (a fixed-width RISC encoding):
//! one opcode byte, three register/selector bytes, and a 32-bit immediate.
//! The encoding exists to give the code-size analysis (paper Figure 26) a
//! concrete byte metric and to round-trip programs in tests; immediates
//! outside the 32-bit range are rejected at encode time.

use crate::inst::{MachAddr, MachInst};
use crate::program::RegionId;
use crate::reg::{MOperand, PhysReg};
use std::error::Error;
use std::fmt;
use turnpike_ir::{BinOp, CmpOp};

/// Bytes per encoded instruction.
pub const INST_BYTES: usize = 8;

/// Errors from [`encode_program`] / [`decode_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit in 32 bits.
    ImmOutOfRange(i64),
    /// A branch target or region id does not fit in 32 bits (cannot occur
    /// for programs built through the compiler; defensive).
    FieldOutOfRange(u64),
    /// The byte stream length is not a multiple of [`INST_BYTES`].
    TruncatedStream(usize),
    /// An unknown opcode byte was encountered at the given instruction index.
    BadOpcode(u8, usize),
    /// A register field held an out-of-range index.
    BadReg(u8, usize),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange(v) => write!(f, "immediate {v} does not fit in 32 bits"),
            EncodeError::FieldOutOfRange(v) => write!(f, "field value {v} does not fit"),
            EncodeError::TruncatedStream(n) => {
                write!(f, "byte stream length {n} not a multiple of 8")
            }
            EncodeError::BadOpcode(op, i) => write!(f, "unknown opcode {op:#x} at instruction {i}"),
            EncodeError::BadReg(r, i) => write!(f, "bad register {r} at instruction {i}"),
        }
    }
}

impl Error for EncodeError {}

// Opcode space. Bin/Cmp fold their operator into the opcode byte.
const OP_BIN_BASE: u8 = 0x00; // +0..=9: BinOp
const OP_CMP_BASE: u8 = 0x10; // +0..=5: CmpOp
const OP_MOV_REG: u8 = 0x20;
const OP_MOV_IMM: u8 = 0x21;
const OP_LOAD_RO: u8 = 0x30;
const OP_LOAD_ABS: u8 = 0x31;
const OP_LOAD_CKPT: u8 = 0x32;
const OP_STORE_RO_REG: u8 = 0x38;
const OP_STORE_RO_IMM: u8 = 0x39;
const OP_STORE_ABS_REG: u8 = 0x3a;
const OP_STORE_ABS_IMM: u8 = 0x3b;
const OP_CKPT: u8 = 0x40;
const OP_RB: u8 = 0x41;
const OP_JUMP: u8 = 0x50;
const OP_BNZ: u8 = 0x51;
const OP_RET_NONE: u8 = 0x60;
const OP_RET_REG: u8 = 0x61;
const OP_RET_IMM: u8 = 0x62;
const OP_NOP: u8 = 0x70;
// Bin/Cmp with register rhs use a parallel opcode block.
const OP_BINR_BASE: u8 = 0x80; // +0..=9
const OP_CMPR_BASE: u8 = 0x90; // +0..=5

fn binop_code(op: BinOp) -> u8 {
    BinOp::ALL.iter().position(|&o| o == op).unwrap() as u8
}

fn cmpop_code(op: CmpOp) -> u8 {
    CmpOp::ALL.iter().position(|&o| o == op).unwrap() as u8
}

fn imm32(v: i64) -> Result<i32, EncodeError> {
    i32::try_from(v).map_err(|_| EncodeError::ImmOutOfRange(v))
}

fn u32f(v: u64) -> Result<u32, EncodeError> {
    u32::try_from(v).map_err(|_| EncodeError::FieldOutOfRange(v))
}

fn pack(op: u8, a: u8, b: u8, c: u8, imm: i32) -> [u8; 8] {
    let mut w = [0u8; 8];
    w[0] = op;
    w[1] = a;
    w[2] = b;
    w[3] = c;
    w[4..8].copy_from_slice(&imm.to_le_bytes());
    w
}

/// Encode one instruction.
///
/// # Errors
///
/// Fails if an immediate, offset, or target does not fit the 32-bit field.
pub fn encode_inst(inst: &MachInst) -> Result<[u8; 8], EncodeError> {
    Ok(match *inst {
        MachInst::Bin { op, dst, lhs, rhs } => match rhs {
            MOperand::Imm(v) => pack(
                OP_BIN_BASE + binop_code(op),
                dst.raw(),
                lhs.raw(),
                0,
                imm32(v)?,
            ),
            MOperand::Reg(r) => pack(
                OP_BINR_BASE + binop_code(op),
                dst.raw(),
                lhs.raw(),
                r.raw(),
                0,
            ),
        },
        MachInst::Cmp { op, dst, lhs, rhs } => match rhs {
            MOperand::Imm(v) => pack(
                OP_CMP_BASE + cmpop_code(op),
                dst.raw(),
                lhs.raw(),
                0,
                imm32(v)?,
            ),
            MOperand::Reg(r) => pack(
                OP_CMPR_BASE + cmpop_code(op),
                dst.raw(),
                lhs.raw(),
                r.raw(),
                0,
            ),
        },
        MachInst::Mov { dst, src } => match src {
            MOperand::Reg(r) => pack(OP_MOV_REG, dst.raw(), r.raw(), 0, 0),
            MOperand::Imm(v) => pack(OP_MOV_IMM, dst.raw(), 0, 0, imm32(v)?),
        },
        MachInst::Load { dst, addr } => match addr {
            MachAddr::RegOffset(b, o) => pack(OP_LOAD_RO, dst.raw(), b.raw(), 0, imm32(o)?),
            MachAddr::Abs(a) => pack(OP_LOAD_ABS, dst.raw(), 0, 0, u32f(a)? as i32),
            MachAddr::CkptSlot(r) => pack(OP_LOAD_CKPT, dst.raw(), r.raw(), 0, 0),
        },
        MachInst::Store { src, addr } => match (src, addr) {
            (MOperand::Reg(s), MachAddr::RegOffset(b, o)) => {
                pack(OP_STORE_RO_REG, s.raw(), b.raw(), 0, imm32(o)?)
            }
            (MOperand::Imm(v), MachAddr::RegOffset(b, o)) => {
                // Immediate-store with register offset splits the immediate:
                // value in byte c is only possible for tiny values, so we
                // keep the offset in the imm field and the value must fit i8.
                let small = i8::try_from(v).map_err(|_| EncodeError::ImmOutOfRange(v))?;
                pack(OP_STORE_RO_IMM, small as u8, b.raw(), 0, imm32(o)?)
            }
            (MOperand::Reg(s), MachAddr::Abs(a)) => {
                pack(OP_STORE_ABS_REG, s.raw(), 0, 0, u32f(a)? as i32)
            }
            (MOperand::Imm(v), MachAddr::Abs(a)) => {
                let small = i8::try_from(v).map_err(|_| EncodeError::ImmOutOfRange(v))?;
                pack(OP_STORE_ABS_IMM, small as u8, 0, 0, u32f(a)? as i32)
            }
            (_, MachAddr::CkptSlot(_)) => {
                // Regular stores never target checkpoint slots; reject.
                return Err(EncodeError::FieldOutOfRange(u64::MAX));
            }
        },
        MachInst::Ckpt { reg } => pack(OP_CKPT, reg.raw(), 0, 0, 0),
        MachInst::RegionBoundary { id } => pack(OP_RB, 0, 0, 0, u32f(id.0 as u64)? as i32),
        MachInst::Jump { target } => pack(OP_JUMP, 0, 0, 0, target as i32),
        MachInst::BranchNz { cond, target } => pack(OP_BNZ, cond.raw(), 0, 0, target as i32),
        MachInst::Ret { value } => match value {
            None => pack(OP_RET_NONE, 0, 0, 0, 0),
            Some(MOperand::Reg(r)) => pack(OP_RET_REG, r.raw(), 0, 0, 0),
            Some(MOperand::Imm(v)) => pack(OP_RET_IMM, 0, 0, 0, imm32(v)?),
        },
        MachInst::Nop => pack(OP_NOP, 0, 0, 0, 0),
    })
}

/// Encode a full instruction stream.
///
/// # Errors
///
/// Propagates the first per-instruction [`EncodeError`].
pub fn encode_program(insts: &[MachInst]) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::with_capacity(insts.len() * INST_BYTES);
    for i in insts {
        out.extend_from_slice(&encode_inst(i)?);
    }
    Ok(out)
}

/// Decode a byte stream produced by [`encode_program`].
///
/// # Errors
///
/// Fails on truncated streams, unknown opcodes, or bad register fields.
pub fn decode_program(bytes: &[u8]) -> Result<Vec<MachInst>, EncodeError> {
    if !bytes.len().is_multiple_of(INST_BYTES) {
        return Err(EncodeError::TruncatedStream(bytes.len()));
    }
    let reg = |raw: u8, idx: usize| PhysReg::new(raw).map_err(|_| EncodeError::BadReg(raw, idx));
    let mut out = Vec::with_capacity(bytes.len() / INST_BYTES);
    for (idx, w) in bytes.chunks_exact(INST_BYTES).enumerate() {
        let (op, a, b, c) = (w[0], w[1], w[2], w[3]);
        let imm = i32::from_le_bytes([w[4], w[5], w[6], w[7]]);
        let inst = match op {
            o if (OP_BIN_BASE..OP_BIN_BASE + 10).contains(&o) => MachInst::Bin {
                op: BinOp::ALL[(o - OP_BIN_BASE) as usize],
                dst: reg(a, idx)?,
                lhs: reg(b, idx)?,
                rhs: MOperand::Imm(imm as i64),
            },
            o if (OP_BINR_BASE..OP_BINR_BASE + 10).contains(&o) => MachInst::Bin {
                op: BinOp::ALL[(o - OP_BINR_BASE) as usize],
                dst: reg(a, idx)?,
                lhs: reg(b, idx)?,
                rhs: MOperand::Reg(reg(c, idx)?),
            },
            o if (OP_CMP_BASE..OP_CMP_BASE + 6).contains(&o) => MachInst::Cmp {
                op: CmpOp::ALL[(o - OP_CMP_BASE) as usize],
                dst: reg(a, idx)?,
                lhs: reg(b, idx)?,
                rhs: MOperand::Imm(imm as i64),
            },
            o if (OP_CMPR_BASE..OP_CMPR_BASE + 6).contains(&o) => MachInst::Cmp {
                op: CmpOp::ALL[(o - OP_CMPR_BASE) as usize],
                dst: reg(a, idx)?,
                lhs: reg(b, idx)?,
                rhs: MOperand::Reg(reg(c, idx)?),
            },
            OP_MOV_REG => MachInst::Mov {
                dst: reg(a, idx)?,
                src: MOperand::Reg(reg(b, idx)?),
            },
            OP_MOV_IMM => MachInst::Mov {
                dst: reg(a, idx)?,
                src: MOperand::Imm(imm as i64),
            },
            OP_LOAD_RO => MachInst::Load {
                dst: reg(a, idx)?,
                addr: MachAddr::RegOffset(reg(b, idx)?, imm as i64),
            },
            OP_LOAD_ABS => MachInst::Load {
                dst: reg(a, idx)?,
                addr: MachAddr::Abs(imm as u32 as u64),
            },
            OP_LOAD_CKPT => MachInst::Load {
                dst: reg(a, idx)?,
                addr: MachAddr::CkptSlot(reg(b, idx)?),
            },
            OP_STORE_RO_REG => MachInst::Store {
                src: MOperand::Reg(reg(a, idx)?),
                addr: MachAddr::RegOffset(reg(b, idx)?, imm as i64),
            },
            OP_STORE_RO_IMM => MachInst::Store {
                src: MOperand::Imm(a as i8 as i64),
                addr: MachAddr::RegOffset(reg(b, idx)?, imm as i64),
            },
            OP_STORE_ABS_REG => MachInst::Store {
                src: MOperand::Reg(reg(a, idx)?),
                addr: MachAddr::Abs(imm as u32 as u64),
            },
            OP_STORE_ABS_IMM => MachInst::Store {
                src: MOperand::Imm(a as i8 as i64),
                addr: MachAddr::Abs(imm as u32 as u64),
            },
            OP_CKPT => MachInst::Ckpt { reg: reg(a, idx)? },
            OP_RB => MachInst::RegionBoundary {
                id: RegionId(imm as u32),
            },
            OP_JUMP => MachInst::Jump { target: imm as u32 },
            OP_BNZ => MachInst::BranchNz {
                cond: reg(a, idx)?,
                target: imm as u32,
            },
            OP_RET_NONE => MachInst::Ret { value: None },
            OP_RET_REG => MachInst::Ret {
                value: Some(MOperand::Reg(reg(a, idx)?)),
            },
            OP_RET_IMM => MachInst::Ret {
                value: Some(MOperand::Imm(imm as i64)),
            },
            OP_NOP => MachInst::Nop,
            bad => return Err(EncodeError::BadOpcode(bad, idx)),
        };
        let _ = c; // `c` only carries a register in the BINR/CMPR forms
        out.push(inst);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> PhysReg {
        PhysReg::new(i).unwrap()
    }

    fn sample_insts() -> Vec<MachInst> {
        vec![
            MachInst::Mov {
                dst: r(0),
                src: MOperand::Imm(-7),
            },
            MachInst::Mov {
                dst: r(1),
                src: MOperand::Reg(r(0)),
            },
            MachInst::Bin {
                op: BinOp::Mul,
                dst: r(2),
                lhs: r(1),
                rhs: MOperand::Imm(100),
            },
            MachInst::Bin {
                op: BinOp::Xor,
                dst: r(2),
                lhs: r(2),
                rhs: MOperand::Reg(r(0)),
            },
            MachInst::Cmp {
                op: CmpOp::Le,
                dst: r(3),
                lhs: r(2),
                rhs: MOperand::Imm(0),
            },
            MachInst::Cmp {
                op: CmpOp::Ne,
                dst: r(3),
                lhs: r(2),
                rhs: MOperand::Reg(r(1)),
            },
            MachInst::Load {
                dst: r(4),
                addr: MachAddr::RegOffset(r(5), -16),
            },
            MachInst::Load {
                dst: r(4),
                addr: MachAddr::Abs(0x1008),
            },
            MachInst::Load {
                dst: r(4),
                addr: MachAddr::CkptSlot(r(4)),
            },
            MachInst::Store {
                src: MOperand::Reg(r(4)),
                addr: MachAddr::RegOffset(r(5), 24),
            },
            MachInst::Store {
                src: MOperand::Imm(-1),
                addr: MachAddr::RegOffset(r(5), 8),
            },
            MachInst::Store {
                src: MOperand::Reg(r(6)),
                addr: MachAddr::Abs(0x2000),
            },
            MachInst::Store {
                src: MOperand::Imm(3),
                addr: MachAddr::Abs(0x2008),
            },
            MachInst::Ckpt { reg: r(7) },
            MachInst::RegionBoundary { id: RegionId(1) },
            MachInst::Jump { target: 17 },
            MachInst::BranchNz {
                cond: r(3),
                target: 0,
            },
            MachInst::Ret {
                value: Some(MOperand::Reg(r(2))),
            },
            MachInst::Ret {
                value: Some(MOperand::Imm(5)),
            },
            MachInst::Ret { value: None },
            MachInst::Nop,
        ]
    }

    #[test]
    fn round_trip_every_form() {
        let insts = sample_insts();
        let bytes = encode_program(&insts).unwrap();
        assert_eq!(bytes.len(), insts.len() * INST_BYTES);
        let back = decode_program(&bytes).unwrap();
        assert_eq!(back, insts);
    }

    #[test]
    fn rejects_oversized_immediates() {
        let i = MachInst::Mov {
            dst: r(0),
            src: MOperand::Imm(i64::MAX),
        };
        assert_eq!(
            encode_inst(&i).unwrap_err(),
            EncodeError::ImmOutOfRange(i64::MAX)
        );
    }

    #[test]
    fn rejects_truncated_stream() {
        assert_eq!(
            decode_program(&[0u8; 7]).unwrap_err(),
            EncodeError::TruncatedStream(7)
        );
    }

    #[test]
    fn rejects_unknown_opcode() {
        let mut w = [0u8; 8];
        w[0] = 0xff;
        assert_eq!(
            decode_program(&w).unwrap_err(),
            EncodeError::BadOpcode(0xff, 0)
        );
    }

    #[test]
    fn rejects_bad_register_field() {
        let mut w = [0u8; 8];
        w[0] = OP_CKPT;
        w[1] = 99;
        assert_eq!(decode_program(&w).unwrap_err(), EncodeError::BadReg(99, 0));
    }

    #[test]
    fn every_binop_and_cmpop_round_trips() {
        for op in BinOp::ALL {
            for rhs in [MOperand::Imm(3), MOperand::Reg(r(9))] {
                let i = MachInst::Bin {
                    op,
                    dst: r(1),
                    lhs: r(2),
                    rhs,
                };
                let b = encode_inst(&i).unwrap();
                assert_eq!(decode_program(&b).unwrap()[0], i);
            }
        }
        for op in CmpOp::ALL {
            for rhs in [MOperand::Imm(-2), MOperand::Reg(r(8))] {
                let i = MachInst::Cmp {
                    op,
                    dst: r(1),
                    lhs: r(2),
                    rhs,
                };
                let b = encode_inst(&i).unwrap();
                assert_eq!(decode_program(&b).unwrap()[0], i);
            }
        }
    }
}
