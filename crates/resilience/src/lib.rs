//! End-to-end resilient execution for the Turnpike reproduction.
//!
//! Glues the workspace together: a [`Scheme`] names one point in the paper's
//! design space (Turnstile, the Figure-21 optimization ladder, full
//! Turnpike), [`run_kernel`] compiles an IR program under that scheme and
//! simulates it on the matching core configuration, and [`fault_campaign`]
//! injects sensor-detected particle strikes and audits the final
//! architectural state against the IR interpreter's golden run — any
//! mismatch is a silent data corruption, which the resilient schemes must
//! never exhibit.
//!
//! # Example
//!
//! ```
//! use turnpike_resilience::{fault_campaign, CampaignConfig, RunSpec, Scheme};
//! use turnpike_workloads::{kernel_by_name, Scale, Suite};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = kernel_by_name(Suite::Cpu2006, "bwaves", Scale::Smoke).unwrap();
//! let report = fault_campaign(
//!     &kernel.program,
//!     &RunSpec::new(Scheme::Turnpike),
//!     &CampaignConfig { runs: 3, seed: 7, strikes_per_run: 1, ..Default::default() },
//! )?;
//! assert!(report.sdc_free());
//! # Ok(())
//! # }
//! ```

pub mod campaign;
pub mod driver;
pub mod par;
pub mod preset;
pub mod scheme;

pub use campaign::{
    fault_campaign, fault_campaign_forked, fault_campaign_hooked, fault_campaign_par,
    fault_campaign_records, fault_campaign_shard_hooked, write_strike_records,
    write_strike_records_capped, write_strike_records_capped_to_path, write_strike_records_to_path,
    CampaignConfig, CampaignHook, CampaignProgress, CampaignReport, ForkStats, StopRule,
    StrikeOutcome, StrikeRecord, STOP_CHUNK,
};
pub use driver::{
    geomean, resume_compiled_with_faults, run_compiled, run_compiled_collecting_snapshots,
    run_compiled_with_faults, run_custom, run_kernel, run_kernel_with_faults, RunError, RunResult,
    RunSpec,
};
pub use par::par_map;
pub use preset::{
    cache_geom, AblationKnob, CacheGeom, ExploreAxes, LadderRung, ABLATION, CACHE_GEOMS,
    COLOR_POOLS, COLOR_WCDLS, EXPLORE_AXES, LADDER,
};
pub use scheme::Scheme;
