//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce <target> [--smoke] [--json] [--threads N] [--no-cache]
//! reproduce trace <kernel> [--scheme S] [--smoke] [--format chrome|jsonl] [--out FILE]
//! reproduce serve [--addr A] [--workers N] [--queue N] [--store DIR] ...
//! reproduce submit [--addr A | --direct] [--kind K] [job fields] ...
//! reproduce loadgen [--addr A] [--clients N] [--jobs N] [job fields] ...
//! reproduce sim-throughput [--smoke] [--reps N]
//! reproduce --list
//!
//! targets: fig4 fig14 fig15 fig18 fig19 fig20 fig21 fig22 fig23
//!          fig24 fig25 fig26 table1 ablation clq colors summary
//!          adaptive all
//! ```
//!
//! `--list` prints every target with the paper figure/table it reproduces.
//! `--smoke` runs the reduced-size kernels (fast; used by CI); the default
//! is full evaluation scale. `--json` prints machine-readable output.
//! `--threads N` caps the evaluation engine's worker threads and must be
//! at least 1 (default: all hardware threads); stdout is byte-identical at
//! any thread count. `--no-cache` disables the engine's compile/run
//! memoization (the seed harness's behavior, kept for perf comparisons).
//!
//! `serve` runs the batch job server (`turnpike-serve`): line-delimited
//! JSON over TCP, bounded queue with typed `overloaded` rejections,
//! worker pool over the shared evaluation engine, optional persistent
//! artifact store (`--store DIR`, shared with `submit --direct`), graceful
//! drain on a client `shutdown` request. The bound address is printed to
//! stdout. `submit` sends one compile/run/campaign/figure job (or
//! `--stats`/`--shutdown`) and prints the result payload to stdout —
//! byte-identical whether served or executed locally via `--direct`.
//! `loadgen` saturates a server with `--clients` concurrent connections,
//! proves exactly-once delivery by tag accounting, and records
//! throughput plus p50/p99 latency into `BENCH_reproduce.json`.
//!
//! `trace` exports one kernel's resilience-event timeline under a scheme
//! (default `turnpike`; see `Scheme::cli_name` for the ladder names) as
//! Chrome trace-event JSON — load it in ui.perfetto.dev — or as raw JSONL.
//! Resilient schemes get one deterministic datapath strike at 25% of the
//! fault-free cycle count, so the export always shows a full
//! strike→detection→recovery arc.
//!
//! `sim-throughput` measures fault-free simulator speed (wall-clock
//! nanoseconds per retired instruction, interpreter vs. superblock
//! dispatch) over the whole kernel catalog and records the
//! `sim_throughput` block.
//!
//! Every generating invocation also records its perf block — target, scale,
//! threads, cache flag, total plus per-figure wall-clock milliseconds, and
//! a histogram summary block (p50/p99/max of SB residency, verification
//! latency, detection latency, recovery penalty, and compile/sim stage
//! times) — so harness performance is tracked over time.
//! `BENCH_reproduce.json` is a single JSON object keyed by block name
//! (`"all"`, `"fig21"`, `"loadgen"`, `"sim_throughput"`, ...); each writer
//! merges its block and preserves the others (see `report.rs`). Timing goes
//! there and to stderr, never to stdout.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use turnpike_bench::{
    export_trace, fault_probe_metrics, find_kernel, hist_summary_json, json_string, target_by_name,
    write_block, Engine, EngineExecutor, Table, Target, TraceFormat, TARGETS,
};
use turnpike_metrics::{Hist, MetricSet};
use turnpike_resilience::{par_map, RunSpec, Scheme};
use turnpike_serve::{
    loadgen, Client, JobKind, JobRequest, LoadgenConfig, Outcome, Server, ServerConfig, Store,
};
use turnpike_sim::{Core, Translation};
use turnpike_workloads::{all_kernels, Scale, Suite};

/// The target list rendered from the registry, one aligned line per target.
fn target_listing() -> String {
    let width = TARGETS
        .iter()
        .map(|t| t.name.len())
        .max()
        .unwrap_or(0)
        .max("all".len());
    let mut out = String::new();
    for t in &TARGETS {
        out.push_str(&format!("  {:width$}  {}\n", t.name, t.paper_ref));
    }
    out.push_str(&format!(
        "  {:width$}  every target above, in that order\n",
        "all"
    ));
    out
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: reproduce <target> [--smoke] [--json] [--threads N] [--no-cache]\n\
         \x20      reproduce trace <kernel> [--scheme S] [--smoke] [--format chrome|jsonl] [--out FILE]\n\
         \x20      reproduce serve [--addr A] [--workers N] [--queue N] [--timeout-secs N]\n\
         \x20                      [--store DIR] [--threads N] [--trace-out FILE]\n\
         \x20      reproduce submit [--addr A | --direct [--store DIR] [--threads N]] [--kind K]\n\
         \x20                       [--kernel K] [--scheme S] [--scale smoke|full] [--sb N] [--wcdl N]\n\
         \x20                       [--runs N] [--seed N] [--strikes N] [--target T] [--tag T]\n\
         \x20      reproduce submit [--addr A] --stats|--shutdown\n\
         \x20      reproduce loadgen [--addr A] [--clients N] [--jobs N] [--max-retries N] [job fields]\n\
         \x20      reproduce sim-throughput [--smoke] [--reps N]\n\
         \x20      reproduce --list\n\
         options:\n\
         \x20 --threads N  evaluation worker threads, N >= 1 (default: all hardware threads)\n\
         targets:\n{}",
        target_listing()
    );
    ExitCode::from(2)
}

/// Parse the value of `--threads`: a positive thread count, with a clear
/// message on anything else (`0` silently meaning "default" was a trap).
fn parse_threads(v: Option<&String>) -> Result<usize, ExitCode> {
    match v.map(|s| s.parse::<usize>()) {
        Some(Ok(n)) if n >= 1 => Ok(n),
        _ => {
            eprintln!(
                "reproduce: --threads must be an integer >= 1 \
                 (default: all hardware threads, {} here)",
                default_threads()
            );
            Err(ExitCode::from(2))
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// `reproduce trace <kernel> [--scheme S] [--smoke|--full] [--format F]
/// [--out FILE]` — export one kernel's resilience-event timeline.
fn trace_main(args: &[String]) -> ExitCode {
    let mut kernel: Option<String> = None;
    let mut scheme = Scheme::Turnpike;
    let mut scale = Scale::Full;
    let mut format = TraceFormat::Chrome;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--scheme" => {
                let Some(s) = it.next().and_then(|v| Scheme::parse(v)) else {
                    eprintln!(
                        "reproduce trace: --scheme takes one of: {}",
                        [Scheme::Baseline]
                            .iter()
                            .chain(Scheme::LADDER.iter())
                            .map(|s| s.cli_name())
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                    return ExitCode::from(2);
                };
                scheme = s;
            }
            "--format" => {
                let Some(f) = it.next().and_then(|v| TraceFormat::parse(v)) else {
                    eprintln!("reproduce trace: --format takes 'chrome' or 'jsonl'");
                    return ExitCode::from(2);
                };
                format = f;
            }
            "--out" => {
                let Some(f) = it.next() else {
                    return usage();
                };
                out = Some(f.clone());
            }
            k if kernel.is_none() && !k.starts_with('-') => kernel = Some(k.to_string()),
            _ => return usage(),
        }
    }
    let Some(name) = kernel else {
        return usage();
    };
    let Some(k) = find_kernel(&name, scale) else {
        eprintln!("reproduce trace: unknown kernel '{name}'");
        return ExitCode::from(2);
    };
    let text = match export_trace(&k, &RunSpec::new(scheme), format) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("reproduce trace: {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("reproduce trace: write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "# wrote {path} ({} bytes, {} scheme {}){}",
                text.len(),
                name,
                scheme.cli_name(),
                if format == TraceFormat::Chrome {
                    " — load it in ui.perfetto.dev"
                } else {
                    ""
                }
            );
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// Default server address shared by `submit` and `loadgen` (`serve`
/// defaults to port 0 — OS-assigned — and prints the bound address).
const DEFAULT_ADDR: &str = "127.0.0.1:8642";

/// Consume one job-shaped flag into `req`. `Ok(true)` when `flag` was a
/// job field (its value consumed), `Ok(false)` when it belongs to the
/// caller, `Err` on a bad value.
fn job_flag(req: &mut JobRequest, flag: &str, value: Option<&String>) -> Result<bool, String> {
    let need = |v: Option<&String>| v.cloned().ok_or_else(|| format!("{flag} needs a value"));
    let need_u64 = |v: Option<&String>| {
        need(v)?
            .parse::<u64>()
            .map_err(|_| format!("{flag} needs a non-negative integer"))
    };
    match flag {
        "--kind" => {
            let v = need(value)?;
            req.kind = JobKind::parse(&v)
                .ok_or_else(|| format!("--kind takes compile|run|campaign|figure, got '{v}'"))?;
        }
        "--kernel" => req.kernel = need(value)?,
        "--scheme" => req.scheme = need(value)?,
        "--scale" => req.scale = need(value)?,
        "--sb" => {
            req.sb =
                u32::try_from(need_u64(value)?).map_err(|_| "--sb out of range".to_string())?;
        }
        "--wcdl" => req.wcdl = need_u64(value)?,
        "--runs" => req.runs = need_u64(value)?,
        "--seed" => req.seed = need_u64(value)?,
        "--strikes" => req.strikes = need_u64(value)?,
        "--target" => req.target = need(value)?,
        "--tag" => req.tag = need(value)?,
        _ => return Ok(false),
    }
    Ok(true)
}

/// `reproduce serve` — run the job server until a client sends `shutdown`.
fn serve_main(args: &[String]) -> ExitCode {
    let mut config = ServerConfig::default();
    let mut threads = default_threads();
    let mut store: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => config.addr = v.clone(),
                None => return usage(),
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.workers = n,
                _ => {
                    eprintln!("reproduce serve: --workers must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--queue" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.queue_capacity = n,
                _ => {
                    eprintln!("reproduce serve: --queue must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--timeout-secs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.job_timeout = Duration::from_secs(n),
                _ => {
                    eprintln!("reproduce serve: --timeout-secs must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--store" => match it.next() {
                Some(v) => store = Some(v.clone()),
                None => return usage(),
            },
            "--trace-out" => match it.next() {
                Some(v) => config.trace_path = Some(v.into()),
                None => return usage(),
            },
            "--threads" => match parse_threads(it.next()) {
                Ok(n) => threads = n,
                Err(code) => return code,
            },
            _ => return usage(),
        }
    }
    let mut executor = EngineExecutor::new(Engine::new(threads));
    if let Some(dir) = &store {
        executor = executor.with_store(Store::open(dir));
    }
    let server = match Server::start(config.clone(), std::sync::Arc::new(executor)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("reproduce serve: bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    // The bound address goes to stdout (and nothing else does) so scripts
    // using --addr 127.0.0.1:0 can discover the OS-assigned port.
    println!("serving {}", server.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    eprintln!(
        "# serve: {} workers, queue {}, timeout {}s, {} engine threads, store {}",
        config.workers,
        config.queue_capacity,
        config.job_timeout.as_secs(),
        threads,
        store.as_deref().unwrap_or("off"),
    );
    server.join();
    eprintln!("# serve: drained and shut down");
    ExitCode::SUCCESS
}

/// `reproduce submit` — send one job (or `--stats`/`--shutdown`) to a
/// server, or run it locally with `--direct` through the exact same
/// executor and artifact store.
fn submit_main(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut req = JobRequest::new(JobKind::Run);
    let mut direct = false;
    let mut store: Option<String> = None;
    let mut threads = default_threads();
    let mut stats = false;
    let mut shutdown = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let flag = a.as_str();
        match flag {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => return usage(),
            },
            "--direct" => direct = true,
            "--store" => match it.next() {
                Some(v) => store = Some(v.clone()),
                None => return usage(),
            },
            "--threads" => match parse_threads(it.next()) {
                Ok(n) => threads = n,
                Err(code) => return code,
            },
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            _ => {
                // Two-phase because job_flag consumes the value.
                let value = if flag.starts_with("--") {
                    it.clone().next()
                } else {
                    None
                };
                match job_flag(&mut req, flag, value) {
                    Ok(true) => {
                        it.next();
                    }
                    Ok(false) | Err(_) if flag == "--help" => return usage(),
                    Ok(false) => return usage(),
                    Err(e) => {
                        eprintln!("reproduce submit: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
        }
    }
    if stats || shutdown {
        let mut client = match Client::connect(&addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("reproduce submit: connect {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let done = if stats {
            client.stats().map(|body| println!("{body}"))
        } else {
            client
                .shutdown()
                .map(|()| eprintln!("# server is shutting down"))
        };
        return match done {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("reproduce submit: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if direct {
        let mut executor = EngineExecutor::new(Engine::new(threads));
        if let Some(dir) = &store {
            executor = executor.with_store(Store::open(dir));
        }
        return match executor.execute_direct(&req) {
            Ok(out) => {
                println!("{}", out.result);
                eprintln!("# store: {}", out.store.name());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("reproduce submit: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("reproduce submit: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.submit_with(&req, |done, total| eprintln!("# progress: {done}/{total}")) {
        Ok(Outcome::Done { job, store, result }) => {
            println!("{result}");
            eprintln!("# job {job} done, store: {store}");
            ExitCode::SUCCESS
        }
        Ok(Outcome::Overloaded { retry_after_ms }) => {
            eprintln!("reproduce submit: server overloaded, retry after {retry_after_ms} ms");
            ExitCode::from(3)
        }
        Ok(Outcome::ShuttingDown) => {
            eprintln!("reproduce submit: server is shutting down");
            ExitCode::FAILURE
        }
        Ok(Outcome::Error { job, message }) => {
            eprintln!("reproduce submit: job {job}: {message}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("reproduce submit: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `reproduce loadgen` — N concurrent clients against a server; prints the
/// report and records throughput/latency percentiles in
/// `BENCH_reproduce.json`. Fails if any job was lost or duplicated.
fn loadgen_main(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut cfg = LoadgenConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let flag = a.as_str();
        match flag {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => return usage(),
            },
            "--clients" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cfg.clients = n,
                _ => {
                    eprintln!("reproduce loadgen: --clients must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cfg.jobs_per_client = n,
                _ => {
                    eprintln!("reproduce loadgen: --jobs must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--max-retries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.max_retries = n,
                None => {
                    eprintln!("reproduce loadgen: --max-retries must be an integer");
                    return ExitCode::from(2);
                }
            },
            _ => {
                let value = if flag.starts_with("--") {
                    it.clone().next()
                } else {
                    None
                };
                match job_flag(&mut cfg.request, flag, value) {
                    Ok(true) => {
                        it.next();
                    }
                    Ok(false) => return usage(),
                    Err(e) => {
                        eprintln!("reproduce loadgen: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
        }
    }
    let sock_addr = match std::net::ToSocketAddrs::to_socket_addrs(&addr.as_str())
        .ok()
        .and_then(|mut a| a.next())
    {
        Some(a) => a,
        None => {
            eprintln!("reproduce loadgen: bad address '{addr}'");
            return ExitCode::from(2);
        }
    };
    let report = match loadgen(sock_addr, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("reproduce loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = report.to_json();
    println!("{json}");
    eprintln!(
        "# loadgen: {} clients x {} jobs, {} completed, {} overloaded rejections, \
         {:.1} jobs/s, p50 {} us, p99 {} us",
        cfg.clients,
        cfg.jobs_per_client,
        report.completed,
        report.overloaded,
        report.throughput(),
        report.latency.quantile(0.50).round() as u64,
        report.latency.quantile(0.99).round() as u64,
    );
    let record = format!(
        "{{\n  \"target\": \"loadgen\",\n  \"addr\": {},\n  \"clients\": {},\n  \
         \"jobs_per_client\": {},\n  \"report\": {}\n}}",
        json_string(&addr),
        cfg.clients,
        cfg.jobs_per_client,
        json
    );
    if let Err(e) = write_block("BENCH_reproduce.json", "loadgen", &record) {
        eprintln!("# warning: could not write BENCH_reproduce.json: {e}");
    }
    if report.lost > 0 || report.duplicated > 0 || report.errors > 0 {
        eprintln!(
            "reproduce loadgen: delivery violated exactly-once ({} lost, {} duplicated, {} errors)",
            report.lost, report.duplicated, report.errors
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `reproduce sim-throughput [--smoke|--full] [--reps N]` — measure
/// fault-free ("golden path") simulator throughput over the whole kernel
/// catalog and record it as the `sim_throughput` block of
/// `BENCH_reproduce.json`.
///
/// Each kernel x scheme cell is timed twice — per-instruction interpreter
/// and superblock-translated dispatch — as wall-clock nanoseconds per
/// retired instruction, min over `--reps` runs (the minimum is the right
/// statistic for a throughput floor: noise on a quiet machine is strictly
/// additive). Cells run sequentially on one thread so measurements never
/// contend with each other.
fn sim_throughput_main(args: &[String]) -> ExitCode {
    let mut scale = Scale::Full;
    let mut reps = 5usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--reps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => reps = n,
                _ => {
                    eprintln!("reproduce sim-throughput: --reps must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            _ => return usage(),
        }
    }
    let scale_name = match scale {
        Scale::Smoke => "smoke",
        Scale::Full => "full",
    };
    let suite_key = |s: Suite| match s {
        Suite::Cpu2006 => "cpu2006",
        Suite::Cpu2017 => "cpu2017",
        Suite::Splash3 => "splash3",
    };
    eprintln!("# sim-throughput: {scale_name} scale, min of {reps} reps per cell");
    let mut rows = String::new();
    let (mut interp_ns, mut translated_ns, mut total_insts) = (0.0f64, 0.0f64, 0u64);
    for k in all_kernels(scale) {
        for scheme in [Scheme::Baseline, Scheme::Turnpike] {
            let spec = RunSpec::new(scheme);
            let compiled = match turnpike_compiler::compile(&k.program, &spec.compiler_config()) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("reproduce sim-throughput: compile {}: {e}", k.name);
                    return ExitCode::FAILURE;
                }
            };
            let translation = Arc::new(Translation::new(&compiled.program));
            // best[0]: interpreter; best[1]: translated.
            let mut best = [f64::MAX; 2];
            let (mut insts, mut cycles) = (0u64, 0u64);
            for (slot, translate) in [(0, false), (1, true)] {
                for _ in 0..reps {
                    let mut cfg = spec.sim_config();
                    cfg.translate = translate;
                    let mut core = Core::new(&compiled.program, cfg);
                    if translate {
                        core.attach_translation(translation.clone());
                    }
                    let t0 = Instant::now();
                    let out = match core.run() {
                        Ok(o) => o,
                        Err(e) => {
                            eprintln!("reproduce sim-throughput: run {}: {e}", k.name);
                            return ExitCode::FAILURE;
                        }
                    };
                    let wall = t0.elapsed().as_nanos() as f64;
                    (insts, cycles) = (out.stats.insts, out.stats.cycles);
                    best[slot] = best[slot].min(wall);
                }
            }
            interp_ns += best[0];
            translated_ns += best[1];
            total_insts += insts;
            let (i_ns, t_ns) = (best[0] / insts as f64, best[1] / insts as f64);
            println!(
                "{:9} {:8} {:9} {:>8} insts  interp {:5.1} ns/inst  translated {:5.1} ns/inst",
                k.name,
                suite_key(k.suite),
                scheme.cli_name(),
                insts,
                i_ns,
                t_ns,
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"suite\": {}, \"kernel\": {}, \"scheme\": {}, \"insts\": {insts}, \
                 \"cycles\": {cycles}, \"interp_ns_per_inst\": {i_ns:.1}, \
                 \"translated_ns_per_inst\": {t_ns:.1}}}",
                json_string(suite_key(k.suite)),
                json_string(k.name),
                json_string(scheme.cli_name()),
            ));
        }
    }
    // The headline: wall time per retired instruction over every cell's
    // golden run, insts-weighted — the throughput a campaign's fault-free
    // path sees across the catalog, not a best-case cherry-pick.
    let golden = translated_ns / total_insts as f64;
    let interp = interp_ns / total_insts as f64;
    println!(
        "golden path: {golden:.1} ns/inst translated ({interp:.1} interpreted, {:.2}x)",
        interp / golden
    );
    let record = format!(
        "{{\n  \"scale\": {},\n  \"reps\": {reps},\n  \
         \"golden_path_ns_per_inst\": {golden:.1},\n  \
         \"interp_ns_per_inst\": {interp:.1},\n  \"speedup\": {:.2},\n  \
         \"kernels\": [\n{rows}\n  ]\n}}",
        json_string(scale_name),
        interp / golden,
    );
    if let Err(e) = write_block("BENCH_reproduce.json", "sim_throughput", &record) {
        eprintln!("# warning: could not write BENCH_reproduce.json: {e}");
    }
    ExitCode::SUCCESS
}

/// One generated figure: its table, wall-clock, and the run-cache traffic
/// attributed to it (see [`Engine::figure_scope`]).
struct FigureRun {
    table: Table,
    wall_ms: u128,
    run_hits: usize,
    run_misses: usize,
}

fn generate_one(t: &Target, scale: Scale, engine: &Engine) -> FigureRun {
    let scoped = engine.figure_scope();
    let t0 = Instant::now();
    let table = (t.generate)(&scoped, scale);
    scoped.note_figure();
    let (run_hits, run_misses) = scoped.figure_cache_stats();
    FigureRun {
        table,
        wall_ms: t0.elapsed().as_millis(),
        run_hits,
        run_misses,
    }
}

/// Generate the requested tables with per-figure wall-clock. For `all`,
/// figures run concurrently (each with a slice of the thread budget) while
/// compiles and baseline runs dedup through the shared caches; results are
/// gathered in [`TARGETS`] order so output is deterministic.
fn generate(target: &str, scale: Scale, engine: &Engine) -> Option<Vec<FigureRun>> {
    if target != "all" {
        let t = target_by_name(target)?;
        return Some(vec![generate_one(t, scale, engine)]);
    }
    let outer = engine.threads().min(TARGETS.len());
    let inner = (engine.threads() / outer.max(1)).max(1);
    let per_figure = engine.with_threads(inner);
    Some(par_map(&TARGETS, outer, |_, t| {
        generate_one(t, scale, &per_figure)
    }))
}

/// Machine-readable perf record (hand-rolled JSON; see `table.rs`).
fn bench_json(
    target: &str,
    scale: Scale,
    threads: usize,
    cache: bool,
    wall_ms: u128,
    figures: &[FigureRun],
    registry: &MetricSet,
) -> String {
    use turnpike_metrics::Counter;
    let scale_name = match scale {
        Scale::Smoke => "smoke",
        Scale::Full => "full",
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"target\": {},\n", json_string(target)));
    out.push_str(&format!("  \"scale\": {},\n", json_string(scale_name)));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"cache\": {cache},\n"));
    out.push_str(&format!("  \"wall_ms\": {wall_ms},\n"));
    out.push_str(&format!(
        "  \"compile_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
        registry.counter(Counter::BenchCompileHits),
        registry.counter(Counter::BenchCompileMisses)
    ));
    out.push_str(&format!(
        "  \"run_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
        registry.counter(Counter::BenchRunHits),
        registry.counter(Counter::BenchRunMisses)
    ));
    out.push_str(&format!(
        "  \"fork\": {{\"hits\": {}, \"misses\": {}, \"prefix_cycles_saved\": {}, \
         \"replay_exits\": {}, \"replay_cycles_saved\": {}}},\n",
        registry.counter(Counter::CampaignForkHits),
        registry.counter(Counter::CampaignForkMisses),
        registry.counter(Counter::CampaignForkCyclesSaved),
        registry.counter(Counter::CampaignReplayExits),
        registry.counter(Counter::CampaignReplayCyclesSaved)
    ));
    out.push_str(&format!(
        "  \"histograms\": {},\n",
        hist_summary_json(registry, "  ")
    ));
    out.push_str("  \"figures\": [");
    for (i, f) in figures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // `cached` distinguishes a figure served from the run cache from one
        // that simulated: `wall_ms: 0` alone can't (static tables are also
        // instant). Hit/miss counts make partially-cached figures visible.
        out.push_str(&format!(
            "\n    {{\"id\": {}, \"wall_ms\": {}, \"cached\": {}, \
             \"run_cache\": {{\"hits\": {}, \"misses\": {}}}}}",
            json_string(&f.table.id),
            f.wall_ms,
            f.run_misses == 0 && f.run_hits > 0,
            f.run_hits,
            f.run_misses
        ));
    }
    if !figures.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("trace") => return trace_main(&args[1..]),
        Some("serve") => return serve_main(&args[1..]),
        Some("submit") => return submit_main(&args[1..]),
        Some("loadgen") => return loadgen_main(&args[1..]),
        Some("sim-throughput") => return sim_throughput_main(&args[1..]),
        _ => {}
    }
    let mut target: Option<String> = None;
    let mut scale = Scale::Full;
    let mut json = false;
    let mut cache = true;
    let mut threads = default_threads();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                print!("{}", target_listing());
                return ExitCode::SUCCESS;
            }
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--json" => json = true,
            "--no-cache" => cache = false,
            "--threads" => match parse_threads(it.next()) {
                Ok(n) => threads = n,
                Err(code) => return code,
            },
            t if target.is_none() && !t.starts_with('-') => target = Some(t.to_string()),
            _ => return usage(),
        }
    }
    let Some(target) = target else {
        return usage();
    };
    if target != "all" && target_by_name(&target).is_none() {
        eprintln!("reproduce: unknown target '{target}'; known targets:");
        eprint!("{}", target_listing());
        return ExitCode::from(2);
    }
    let mut engine = Engine::new(threads);
    if !cache {
        engine = engine.without_cache();
    }
    // Run header on stderr (stdout is golden-diffed): the effective thread
    // count matters because --threads defaults to the machine's available
    // parallelism, so two hosts run the same command differently. Output is
    // byte-identical at any thread count; `--threads 1` additionally makes
    // the execution schedule itself deterministic.
    eprintln!(
        "# reproduce {target}: {threads} threads, {} scale, cache {}",
        match scale {
            Scale::Smoke => "smoke",
            Scale::Full => "full",
        },
        if cache { "on" } else { "off" },
    );
    let t0 = Instant::now();
    let Some(tables) = generate(&target, scale, &engine) else {
        return usage();
    };
    let wall_ms = t0.elapsed().as_millis();
    for f in &tables {
        if json {
            println!("{}", f.table.to_json());
        } else {
            println!("{}", f.table);
        }
    }
    for f in &tables {
        eprintln!("# {}: {} ms", f.table.id, f.wall_ms);
    }
    eprintln!(
        "# total: {wall_ms} ms ({} threads, cache {}, {} compiles, {} sims)",
        threads,
        if cache { "on" } else { "off" },
        engine.compile_count(),
        engine.sim_count()
    );
    // The figure grid is fault-free, so the detection-latency and
    // recovery-penalty histograms need a small seeded strike campaign.
    let mut registry = engine.metrics();
    match fault_probe_metrics(threads) {
        Ok((probe, fork)) => {
            for key in [Hist::DetectLatency, Hist::RecoveryPenalty] {
                if let Some(h) = probe.hist(key) {
                    registry.merge_hist(key, h);
                }
            }
            // Fork accounting feeds the bench registry only — campaign
            // reports stay bit-identical with or without snapshots.
            registry.merge(&fork.to_metrics());
        }
        Err(e) => eprintln!("# warning: fault probe failed: {e}"),
    }
    let record = bench_json(&target, scale, threads, cache, wall_ms, &tables, &registry);
    if let Err(e) = write_block("BENCH_reproduce.json", &target, &record) {
        eprintln!("# warning: could not write BENCH_reproduce.json: {e}");
    }
    // The adaptive rung additionally records its per-kernel comparison
    // against the best uniform scheme (under the "adaptive" key, replacing
    // the generic perf block when the target itself was `adaptive`).
    if let Some(f) = tables.iter().find(|f| f.table.id == "adaptive") {
        let record = adaptive_block_json(&f.table, scale, f.wall_ms);
        if let Err(e) = write_block("BENCH_reproduce.json", "adaptive", &record) {
            eprintln!("# warning: could not write BENCH_reproduce.json: {e}");
        }
    }
    ExitCode::SUCCESS
}

/// The `adaptive` block of `BENCH_reproduce.json`: per-kernel normalized
/// time of the adaptive rung against the best uniform scheme, plus the
/// figure's wall-clock (columns are pinned by the `adaptive` generator).
fn adaptive_block_json(table: &Table, scale: Scale, wall_ms: u128) -> String {
    let scale_name = match scale {
        Scale::Smoke => "smoke",
        Scale::Full => "full",
    };
    let mut rows = String::new();
    for (label, v) in &table.rows {
        if label.starts_with("geomean") {
            continue;
        }
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"kernel\": {}, \"adaptive\": {:.4}, \"best_uniform\": {:.4}, \
             \"ratio\": {:.4}, \"win\": {}}}",
            json_string(label),
            v[0],
            v[1],
            v[2],
            v[3] > 0.0,
        ));
    }
    let g = table.row("geomean.all").unwrap_or(&[0.0; 4]);
    format!(
        "{{\n  \"scale\": {},\n  \"wall_ms\": {wall_ms},\n  \
         \"geomean_ratio_vs_best_uniform\": {:.4},\n  \"win_rate\": {:.4},\n  \
         \"kernels\": [\n{rows}\n  ]\n}}",
        json_string(scale_name),
        g[2],
        g[3],
    )
}
