//! Property test: every valid instruction's textual form parses back to
//! itself (Display ↔ parse_asm round trip).

use proptest::prelude::*;
use turnpike_isa::{parse_asm, BinOp, CmpOp, MOperand, MachAddr, MachInst, PhysReg, RegionId};

fn reg() -> impl Strategy<Value = PhysReg> {
    (0u8..32).prop_map(|i| PhysReg::new(i).expect("in range"))
}

fn moperand() -> impl Strategy<Value = MOperand> {
    prop_oneof![
        reg().prop_map(MOperand::Reg),
        (-1_000_000i64..1_000_000).prop_map(MOperand::Imm),
    ]
}

fn addr() -> impl Strategy<Value = MachAddr> {
    prop_oneof![
        (reg(), -10_000i64..10_000).prop_map(|(r, o)| MachAddr::RegOffset(r, o)),
        (0u64..0x7fff_fff8).prop_map(MachAddr::Abs),
        reg().prop_map(MachAddr::CkptSlot),
    ]
}

fn inst() -> impl Strategy<Value = MachInst> {
    prop_oneof![
        (
            prop::sample::select(BinOp::ALL.to_vec()),
            reg(),
            reg(),
            moperand()
        )
            .prop_map(|(op, dst, lhs, rhs)| MachInst::Bin { op, dst, lhs, rhs }),
        (
            prop::sample::select(CmpOp::ALL.to_vec()),
            reg(),
            reg(),
            moperand()
        )
            .prop_map(|(op, dst, lhs, rhs)| MachInst::Cmp { op, dst, lhs, rhs }),
        (reg(), moperand()).prop_map(|(dst, src)| MachInst::Mov { dst, src }),
        (reg(), addr()).prop_map(|(dst, addr)| MachInst::Load { dst, addr }),
        (moperand(), addr()).prop_map(|(src, addr)| MachInst::Store { src, addr }),
        reg().prop_map(|r| MachInst::Ckpt { reg: r }),
        (0u32..100_000).prop_map(|id| MachInst::RegionBoundary { id: RegionId(id) }),
        (0u32..100_000).prop_map(|target| MachInst::Jump { target }),
        (reg(), 0u32..100_000).prop_map(|(cond, target)| MachInst::BranchNz { cond, target }),
        prop_oneof![Just(None), moperand().prop_map(Some)]
            .prop_map(|value| MachInst::Ret { value }),
        Just(MachInst::Nop),
    ]
}

proptest! {
    #[test]
    fn display_parse_round_trips(insts in prop::collection::vec(inst(), 0..60)) {
        let text: String = insts
            .iter()
            .map(|i| format!("{i}\n"))
            .collect();
        let back = parse_asm(&text).expect("every Display form parses");
        prop_assert_eq!(back, insts);
    }

    #[test]
    fn parser_is_total_on_noise(text in "[ -~\n]{0,200}") {
        let _ = parse_asm(&text); // must never panic
    }
}
