//! One generator per table/figure of the paper's evaluation.
//!
//! Every generator that runs kernels takes an [`Engine`]: kernels are
//! evaluated in parallel up to the engine's thread budget, and compiles,
//! baseline runs, and repeated sim points are memoized across figures.
//! Results are gathered in kernel order, so a table's contents are
//! byte-identical at any thread count.
//!
//! All statistics are read from the unified metrics registry
//! ([`turnpike_metrics::MetricSet`], via `RunResult::metrics` /
//! `CompileOutput::metrics`) by key — never from per-layer stat-struct
//! fields — and the scheme ladder, ablation sweep, and color-pool grid come
//! from `turnpike_resilience::preset`, the one authoritative table.

use crate::engine::Engine;
use crate::table::Table;
use turnpike_metrics::{Counter, Gauge};
use turnpike_model::Table1;
use turnpike_resilience::{geomean, preset, RunSpec, Scheme};
use turnpike_sensor::SensorGrid;
use turnpike_sim::ClqKind;
use turnpike_workloads::{all_kernels, Kernel, Scale, Suite};

/// The WCDL sweep used by Figures 19/20.
pub const WCDLS: [u64; 5] = [10, 20, 30, 40, 50];

fn kernels(scale: Scale) -> Vec<Kernel> {
    all_kernels(scale)
}

fn suite_tag(s: Suite) -> &'static str {
    match s {
        Suite::Cpu2006 => "06",
        Suite::Cpu2017 => "17",
        Suite::Splash3 => "s3",
    }
}

fn label(k: &Kernel) -> String {
    format!("{}.{}", suite_tag(k.suite), k.name)
}

/// Per-suite + overall geomean rows appended to a per-benchmark table.
fn append_geomeans(table: &mut Table, kernels: &[Kernel], per_kernel: &[Vec<f64>]) {
    let cols = table.columns.len();
    for suite in [Suite::Cpu2006, Suite::Cpu2017, Suite::Splash3] {
        let mut row = Vec::with_capacity(cols);
        for c in 0..cols {
            let xs: Vec<f64> = kernels
                .iter()
                .zip(per_kernel)
                .filter(|(k, _)| k.suite == suite)
                .map(|(_, v)| v[c])
                .collect();
            row.push(geomean(&xs));
        }
        table.push(format!("geomean.{}", suite_tag(suite)), row);
    }
    let mut row = Vec::with_capacity(cols);
    for c in 0..cols {
        let xs: Vec<f64> = per_kernel.iter().map(|v| v[c]).collect();
        row.push(geomean(&xs));
    }
    table.push("geomean.all", row);
}

/// Run one scheme/platform over all kernels; returns normalized times.
/// Kernels evaluate in parallel; the baseline denominator comes from the
/// engine's run cache (one sim per kernel/SB across the whole evaluation).
fn normalized_over_kernels(
    engine: &Engine,
    kernels: &[Kernel],
    specs: &[RunSpec],
) -> Vec<Vec<f64>> {
    engine.per_kernel(kernels, |k| {
        let base_cycles = engine.baseline_cycles(k, specs[0].sb_size);
        specs
            .iter()
            .map(|spec| engine.run(k, spec).metrics.counter(Counter::Cycles) as f64 / base_cycles)
            .collect()
    })
}

/// Figure 4: ratio of checkpoint instructions to all dynamic instructions,
/// for a 40-entry vs a 4-entry store buffer (Turnstile compilation).
pub fn fig4(engine: &Engine, scale: Scale) -> Table {
    let mut t = Table::new(
        "fig4",
        "Checkpoint ratio of dynamic instructions: SB-40 vs SB-4 (Turnstile)",
        &["40-Entries", "4-Entries"],
    );
    let ks: Vec<Kernel> = kernels(scale)
        .into_iter()
        .filter(|k| k.suite != Suite::Splash3) // the paper plots SPEC only
        .collect();
    let per: Vec<Vec<f64>> = engine.per_kernel(&ks, |k| {
        [40u32, 4]
            .iter()
            .map(|&sb| {
                engine
                    .run(k, &RunSpec::new(Scheme::Turnstile).with_sb(sb))
                    .metrics
                    .ckpt_ratio()
            })
            .collect()
    });
    for (k, row) in ks.iter().zip(&per) {
        t.push(label(k), row.clone());
    }
    // Arithmetic means, as the paper reports percentages.
    let n = per.len() as f64;
    let mean: Vec<f64> = (0..2)
        .map(|c| per.iter().map(|v| v[c]).sum::<f64>() / n)
        .collect();
    t.push("mean.all", mean);
    t
}

/// Figures 14: runtime overhead of the ideal vs compact CLQ, with only
/// WAR-free checking and coloring enabled (no compiler optimizations).
pub fn fig14(engine: &Engine, scale: Scale) -> Table {
    let mut t = Table::new(
        "fig14",
        "Normalized time: ideal CLQ vs compact 2-entry CLQ (fast release only, WCDL 10)",
        &["Ideal CLQ", "Compact CLQ"],
    );
    let ks = kernels(scale);
    let specs = [
        RunSpec::new(Scheme::FastRelease).with_clq(ClqKind::Ideal),
        RunSpec::new(Scheme::FastRelease).with_clq(ClqKind::Compact(2)),
    ];
    let per = normalized_over_kernels(engine, &ks, &specs);
    for (k, row) in ks.iter().zip(&per) {
        t.push(label(k), row.clone());
    }
    append_geomeans(&mut t, &ks, &per);
    t
}

/// Figure 15: fraction of all stores detected WAR-free, ideal vs compact.
pub fn fig15(engine: &Engine, scale: Scale) -> Table {
    let mut t = Table::new(
        "fig15",
        "WAR-free stores / all stores: ideal vs compact CLQ (WCDL 10)",
        &["Ideal CLQ", "Compact CLQ"],
    );
    let ks = kernels(scale);
    let per: Vec<Vec<f64>> = engine.per_kernel(&ks, |k| {
        [ClqKind::Ideal, ClqKind::Compact(2)]
            .iter()
            .map(|&clq| {
                let r = engine.run(k, &RunSpec::new(Scheme::FastRelease).with_clq(clq));
                let m = &r.metrics;
                let all = m.all_stores().max(1) as f64;
                (m.counter(Counter::WarFreeReleased) + m.counter(Counter::ColoredReleased)) as f64
                    / all
            })
            .collect()
    });
    for (k, row) in ks.iter().zip(&per) {
        t.push(label(k), row.clone());
    }
    let n = per.len() as f64;
    let mean: Vec<f64> = (0..2)
        .map(|c| per.iter().map(|v| v[c]).sum::<f64>() / n)
        .collect();
    t.push("mean.all", mean);
    t
}

/// Figure 18: detection latency versus deployed sensors for three clocks.
pub fn fig18() -> Table {
    let mut t = Table::new(
        "fig18",
        "Worst-case detection latency (cycles) vs number of sensors",
        &["2.0GHz", "2.5GHz", "3.0GHz"],
    );
    for sensors in [30u32, 50, 100, 200, 300] {
        let row: Vec<f64> = [2.0, 2.5, 3.0]
            .iter()
            .map(|&ghz| {
                SensorGrid {
                    sensors,
                    die_area_mm2: 1.0,
                    clock_ghz: ghz,
                }
                .wcdl_cycles() as f64
            })
            .collect();
        t.push(format!("{sensors} sensors"), row);
    }
    t
}

/// Figure 19: Turnpike normalized time across WCDL 10..50.
pub fn fig19(engine: &Engine, scale: Scale) -> Table {
    wcdl_sweep(
        engine,
        "fig19",
        "Turnpike normalized time vs WCDL",
        Scheme::Turnpike,
        scale,
    )
}

/// Figure 20: Turnstile normalized time across WCDL 10..50.
pub fn fig20(engine: &Engine, scale: Scale) -> Table {
    wcdl_sweep(
        engine,
        "fig20",
        "Turnstile normalized time vs WCDL",
        Scheme::Turnstile,
        scale,
    )
}

fn wcdl_sweep(engine: &Engine, id: &str, title: &str, scheme: Scheme, scale: Scale) -> Table {
    let columns: Vec<String> = WCDLS.iter().map(|w| format!("DL{w}")).collect();
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = Table::new(id, title, &col_refs);
    let ks = kernels(scale);
    let specs: Vec<RunSpec> = WCDLS
        .iter()
        .map(|&w| RunSpec::new(scheme).with_wcdl(w))
        .collect();
    let per = normalized_over_kernels(engine, &ks, &specs);
    for (k, row) in ks.iter().zip(&per) {
        t.push(label(k), row.clone());
    }
    append_geomeans(&mut t, &ks, &per);
    t
}

/// Figure 21: the optimization ladder at WCDL 10 (the paper's eight
/// uniform rungs plus the adaptive per-region extension).
/// Columns and rung order come from `preset::LADDER`, the same table
/// `Scheme::LADDER` is derived from.
pub fn fig21(engine: &Engine, scale: Scale) -> Table {
    let columns: Vec<&str> = preset::LADDER.iter().map(|r| r.column).collect();
    let mut t = Table::new(
        "fig21",
        "Optimization ladder, normalized time at WCDL 10",
        &columns,
    );
    let ks = kernels(scale);
    let specs: Vec<RunSpec> = preset::LADDER
        .iter()
        .map(|r| RunSpec::new(r.scheme))
        .collect();
    let per = normalized_over_kernels(engine, &ks, &specs);
    for (k, row) in ks.iter().zip(&per) {
        t.push(label(k), row.clone());
    }
    append_geomeans(&mut t, &ks, &per);
    t
}

/// Figure 22: SB-size sensitivity at WCDL 10 (Turnpike on 4/8/10;
/// Turnstile on 8/10/20/30/40).
pub fn fig22(engine: &Engine, scale: Scale) -> Table {
    let mut t = Table::new(
        "fig22",
        "Normalized time vs store buffer size (WCDL 10)",
        &[
            "Turnpike",
            "Turnpike SB-8",
            "Turnpike SB-10",
            "Turnstile SB-8",
            "Turnstile SB-10",
            "Turnstile SB-20",
            "Turnstile SB-30",
            "Turnstile SB-40",
        ],
    );
    let ks = kernels(scale);
    let per: Vec<Vec<f64>> = engine.per_kernel(&ks, |k| {
        let base_cycles = engine.baseline_cycles(k, 4);
        [
            (Scheme::Turnpike, 4u32),
            (Scheme::Turnpike, 8),
            (Scheme::Turnpike, 10),
            (Scheme::Turnstile, 8),
            (Scheme::Turnstile, 10),
            (Scheme::Turnstile, 20),
            (Scheme::Turnstile, 30),
            (Scheme::Turnstile, 40),
        ]
        .iter()
        .map(|&(scheme, sb)| {
            let r = engine.run(k, &RunSpec::new(scheme).with_sb(sb));
            r.metrics.counter(Counter::Cycles) as f64 / base_cycles
        })
        .collect()
    });
    for (k, row) in ks.iter().zip(&per) {
        t.push(label(k), row.clone());
    }
    append_geomeans(&mut t, &ks, &per);
    t
}

/// Figure 23: breakdown of all stores into the paper's categories, under
/// full Turnpike at WCDL 10. Removal categories (pruned / LICM / RA / LIVM)
/// are estimated against a Turnstile compile of the same kernel.
pub fn fig23(engine: &Engine, scale: Scale) -> Table {
    let mut t = Table::new(
        "fig23",
        "Store breakdown under Turnpike (fractions of the Turnstile store count)",
        &[
            "Pruned",
            "LICM-elim",
            "Colored",
            "WAR-free",
            "RA-elim",
            "IVM-elim",
            "Others",
        ],
    );
    let ks = kernels(scale);
    let per: Vec<Vec<f64>> = engine.per_kernel(&ks, |k| {
        // Reference: dynamic stores under Turnstile (checkpoints included).
        let ts = engine.run(k, &RunSpec::new(Scheme::Turnstile));
        let total = ts.metrics.all_stores().max(1) as f64;
        // Turnpike run for the dynamic release categories.
        let tp = engine.run(k, &RunSpec::new(Scheme::Turnpike));
        let m = &tp.metrics;
        // Eliminated = Turnstile stores that no longer exist under Turnpike.
        let eliminated = (total - m.all_stores() as f64).max(0.0);
        // Static attribution of the eliminated mass.
        let static_removed =
            (m.counter(Counter::CkptsPruned) + m.counter(Counter::CkptsLicmRemoved)).max(1) as f64;
        let pruned = eliminated * m.counter(Counter::CkptsPruned) as f64 / static_removed;
        let licm = eliminated * m.counter(Counter::CkptsLicmRemoved) as f64 / static_removed;
        // RA and LIVM savings measured directly against ablations.
        let no_ra = {
            let mut cc = Scheme::Turnpike.compiler_config(4);
            cc.store_aware_ra = false;
            engine.compile(k, &cc)
        };
        let ra_saved = no_ra
            .metrics
            .counter(Counter::SpillStores)
            .saturating_sub(m.counter(Counter::SpillStores)) as f64;
        let livm_saved = m.counter(Counter::IvsMerged) as f64; // one ckpt per merged IV per iteration
        let colored = m.counter(Counter::ColoredReleased) as f64;
        let warfree = m.counter(Counter::WarFreeReleased) as f64;
        let others = (total - pruned - licm - colored - warfree).max(0.0);
        vec![
            pruned / total,
            licm / total,
            colored / total,
            warfree / total,
            (ra_saved / total).min(1.0),
            (livm_saved / total).min(1.0),
            others / total,
        ]
    });
    let mut sums = [0.0; 7];
    for (k, row) in ks.iter().zip(&per) {
        for (acc, v) in sums.iter_mut().zip(row.iter()) {
            *acc += v;
        }
        t.push(label(k), row.clone());
    }
    let n = ks.len() as f64;
    t.push("mean.all", sums.iter().map(|v| v / n).collect());
    t
}

/// Figure 24: average and maximum dynamic CLQ entries populated (ideal CLQ,
/// which reveals true per-region demand), WCDL 10.
pub fn fig24(engine: &Engine, scale: Scale) -> Table {
    let mut t = Table::new(
        "fig24",
        "Dynamic CLQ entries populated (WCDL 10)",
        &["Average", "Maximum"],
    );
    let ks = kernels(scale);
    let per: Vec<Vec<f64>> = engine.per_kernel(&ks, |k| {
        let r = engine.run(
            k,
            &RunSpec::new(Scheme::FastRelease).with_clq(ClqKind::Ideal),
        );
        let m = &r.metrics;
        vec![
            m.clq_avg_entries(),
            m.counter(Counter::ClqPeakEntries) as f64,
        ]
    });
    for (k, row) in ks.iter().zip(&per) {
        t.push(label(k), row.clone());
    }
    t
}

/// Figure 25: 2-entry vs 4-entry compact CLQ, normalized time at WCDL 10.
pub fn fig25(engine: &Engine, scale: Scale) -> Table {
    let mut t = Table::new(
        "fig25",
        "Compact CLQ sizing: 2 vs 4 entries (WCDL 10)",
        &["CLQ-2", "CLQ-4"],
    );
    let ks = kernels(scale);
    let specs = [
        RunSpec::new(Scheme::Turnpike).with_clq(ClqKind::Compact(2)),
        RunSpec::new(Scheme::Turnpike).with_clq(ClqKind::Compact(4)),
    ];
    let per = normalized_over_kernels(engine, &ks, &specs);
    for (k, row) in ks.iter().zip(&per) {
        t.push(label(k), row.clone());
    }
    append_geomeans(&mut t, &ks, &per);
    t
}

/// Figure 26: average dynamic region size (instructions) and code-size
/// increase over the baseline binary.
pub fn fig26(engine: &Engine, scale: Scale) -> Table {
    let mut t = Table::new(
        "fig26",
        "Region size (insts) and code size increase (%) under Turnpike",
        &["Region size", "Code size +%"],
    );
    let ks = kernels(scale);
    let per: Vec<Vec<f64>> = engine.per_kernel(&ks, |k| {
        let r = engine.run(k, &RunSpec::new(Scheme::Turnpike));
        vec![
            r.metrics.gauge(Gauge::AvgRegionInsts),
            r.metrics.code_size_increase() * 100.0,
        ]
    });
    let mut sizes = Vec::new();
    let mut growth = Vec::new();
    for (k, row) in ks.iter().zip(&per) {
        sizes.push(row[0]);
        growth.push(row[1]);
        t.push(label(k), row.clone());
    }
    t.push(
        "geomean.all",
        vec![
            geomean(&sizes),
            growth.iter().sum::<f64>() / growth.len() as f64,
        ],
    );
    t
}

/// Table 1: hardware cost comparison (area / dynamic energy at 22 nm).
pub fn table1() -> Table {
    let model = Table1::build();
    let mut t = Table::new(
        "table1",
        "Hardware cost: Turnpike structures vs store-buffer CAMs (22nm)",
        &["Area (um^2)", "Dyn access (pJ)"],
    );
    for row in &model.rows {
        t.push(
            row.name.clone(),
            vec![row.cost.area_um2, row.cost.energy_pj],
        );
    }
    t.push(
        "Turnpike total / 4-entry SB (%)",
        vec![
            model.turnpike_vs_sb4.0 * 100.0,
            model.turnpike_vs_sb4.1 * 100.0,
        ],
    );
    t.push(
        "40-entry SB / 4-entry SB (%)",
        vec![model.sb40_vs_sb4.0 * 100.0, model.sb40_vs_sb4.1 * 100.0],
    );
    t
}

/// Ablation study: full Turnpike minus one technique at a time, at WCDL 10
/// and 50. Quantifies what each of the paper's six mechanisms contributes
/// to the final configuration (complementing Figure 21, which *adds* them
/// cumulatively).
pub fn ablation(engine: &Engine, scale: Scale) -> Table {
    let mut t = Table::new(
        "ablation",
        "Turnpike minus one technique (geomean normalized time)",
        &["WCDL 10", "WCDL 50"],
    );
    let ks = kernels(scale);
    for (label, knob) in preset::ABLATION {
        let mut row = Vec::new();
        for wcdl in [10u64, 50] {
            let (cc, sc) = preset::ablation_configs(knob, 4, wcdl);
            let xs = engine.per_kernel(&ks, |k| {
                let base = engine.baseline_cycles(k, 4);
                engine
                    .run_configs(k, &cc, &sc)
                    .metrics
                    .counter(Counter::Cycles) as f64
                    / base
            });
            row.push(geomean(&xs));
        }
        t.push(label, row);
    }
    t
}

/// Extension experiment: checkpoint color-pool sizing. The paper fixes the
/// pool at 4 colors per register; this sweep shows why — fewer colors force
/// checkpoint fallbacks into the gated SB once several regions are in
/// flight, and the effect compounds with WCDL.
pub fn colors(engine: &Engine, scale: Scale) -> Table {
    let mut t = Table::new(
        "colors",
        "Checkpoint color-pool sizing (geomean normalized time)",
        &["WCDL 10", "WCDL 30", "WCDL 50"],
    );
    let ks = kernels(scale);
    for pool in preset::COLOR_POOLS {
        let mut row = Vec::new();
        for wcdl in preset::COLOR_WCDLS {
            let cc = Scheme::Turnpike.compiler_config(4);
            let mut sc = Scheme::Turnpike.sim_config(4, wcdl);
            sc.colors = pool;
            let xs = engine.per_kernel(&ks, |k| {
                let base = engine.baseline_cycles(k, 4);
                engine
                    .run_configs(k, &cc, &sc)
                    .metrics
                    .counter(Counter::Cycles) as f64
                    / base
            });
            row.push(geomean(&xs));
        }
        t.push(format!("{pool} colors"), row);
    }
    t
}

/// One-screen digest of the headline comparison (geomeans only).
pub fn summary(engine: &Engine, scale: Scale) -> Table {
    let mut t = Table::new(
        "summary",
        "Headline geomeans: normalized time vs WCDL",
        &["DL10", "DL30", "DL50"],
    );
    let ks = kernels(scale);
    for scheme in [Scheme::Turnstile, Scheme::Turnpike] {
        let specs: Vec<RunSpec> = [10u64, 30, 50]
            .iter()
            .map(|&w| RunSpec::new(scheme).with_wcdl(w))
            .collect();
        let per = normalized_over_kernels(engine, &ks, &specs);
        let mut row = Vec::new();
        for c in 0..3 {
            let xs: Vec<f64> = per.iter().map(|v| v[c]).collect();
            row.push(geomean(&xs));
        }
        t.push(scheme.label(), row);
    }
    t
}

/// Extension experiment: the three CLQ designs side by side — unbounded
/// ideal matching, a bounded 4-entry CAM (the costly design §4.3.1 argues
/// against), and the paper's 2-entry compact range design — as runtime and
/// WAR-free detection ratio.
pub fn clq_designs(engine: &Engine, scale: Scale) -> Table {
    let mut t = Table::new(
        "clq_designs",
        "CLQ designs (WCDL 10): normalized time and WAR-free detection ratio",
        &[
            "Ideal time",
            "CAM-4 time",
            "Compact-2 time",
            "Ideal WAR%",
            "CAM-4 WAR%",
            "Compact-2 WAR%",
        ],
    );
    let ks = kernels(scale);
    let designs = [ClqKind::Ideal, ClqKind::Cam(4), ClqKind::Compact(2)];
    let per: Vec<Vec<f64>> = engine.per_kernel(&ks, |k| {
        let base_cycles = engine.baseline_cycles(k, 4);
        let mut row = vec![0.0; 6];
        for (i, &clq) in designs.iter().enumerate() {
            let r = engine.run(k, &RunSpec::new(Scheme::FastRelease).with_clq(clq));
            row[i] = r.metrics.counter(Counter::Cycles) as f64 / base_cycles;
            row[3 + i] = r.metrics.clq_war_free_ratio();
        }
        row
    });
    let mut sums = [0.0f64; 6];
    for (k, row) in ks.iter().zip(&per) {
        for (acc, v) in sums.iter_mut().zip(row.iter()) {
            *acc += v;
        }
        t.push(label(k), row.clone());
    }
    let n = ks.len() as f64;
    t.push("mean.all", sums.iter().map(|v| v / n).collect());
    t
}

/// Ablation figure for per-region adaptive protection: the `Adaptive`
/// rung versus every uniform scheme of the ladder, per kernel. "Best
/// uniform" is the lowest normalized time any uniform resilient rung
/// achieves on that kernel; "Win" is 1 when adaptive strictly beats it
/// (at equal-or-better coverage of the stores that matter — the
/// vulnerability pass only sheds verification for regions whose strikes
/// cannot reach memory or live-outs).
pub fn adaptive(engine: &Engine, scale: Scale) -> Table {
    let mut t = Table::new(
        "adaptive",
        "Adaptive region protection vs best uniform scheme (WCDL 10)",
        &["Adaptive", "Best uniform", "Ratio", "Win"],
    );
    let ks = kernels(scale);
    let uniform: Vec<RunSpec> = preset::LADDER
        .iter()
        .filter(|r| r.scheme != Scheme::Adaptive)
        .map(|r| RunSpec::new(r.scheme))
        .collect();
    let per: Vec<Vec<f64>> = engine.per_kernel(&ks, |k| {
        let base = engine.baseline_cycles(k, 4);
        let norm =
            |spec: &RunSpec| engine.run(k, spec).metrics.counter(Counter::Cycles) as f64 / base;
        let adaptive = norm(&RunSpec::new(Scheme::Adaptive));
        let best = uniform.iter().map(norm).fold(f64::INFINITY, f64::min);
        vec![
            adaptive,
            best,
            adaptive / best,
            f64::from(u8::from(adaptive < best)),
        ]
    });
    for (k, row) in ks.iter().zip(&per) {
        t.push(label(k), row.clone());
    }
    // Geomeans for the time columns; the Win column reports the win rate.
    let mut row: Vec<f64> = (0..3)
        .map(|c| {
            let xs: Vec<f64> = per.iter().map(|v| v[c]).collect();
            geomean(&xs)
        })
        .collect();
    row.push(per.iter().map(|v| v[3]).sum::<f64>() / per.len().max(1) as f64);
    t.push("geomean.all", row);
    t
}

/// One reproducible figure/table: its CLI name, the paper artifact it
/// regenerates, and its generator. This registry is the single source for
/// the `reproduce` binary's dispatch, `--list`, usage message, and what
/// `all` expands to — and for the serving layer's `figure` jobs.
pub struct Target {
    /// CLI / wire name, e.g. `"fig19"`.
    pub name: &'static str,
    /// The paper artifact this regenerates.
    pub paper_ref: &'static str,
    /// Generator.
    pub generate: fn(&Engine, Scale) -> Table,
}

/// Every target, in `all` output order.
pub const TARGETS: [Target; 18] = [
    Target {
        name: "ablation",
        paper_ref: "§6 ablation: Turnpike minus one technique at a time",
        generate: ablation,
    },
    Target {
        name: "fig4",
        paper_ref: "Figure 4: checkpoint/instruction ratio, 40- vs 4-entry SB",
        generate: fig4,
    },
    Target {
        name: "fig14",
        paper_ref: "Figure 14: ideal vs compact CLQ runtime overhead",
        generate: fig14,
    },
    Target {
        name: "fig15",
        paper_ref: "Figure 15: stores detected WAR-free, ideal vs compact CLQ",
        generate: fig15,
    },
    Target {
        name: "fig18",
        paper_ref: "Figure 18: detection latency vs deployed acoustic sensors",
        generate: |_, _| fig18(),
    },
    Target {
        name: "fig19",
        paper_ref: "Figure 19: Turnpike normalized time across WCDL 10..50",
        generate: fig19,
    },
    Target {
        name: "fig20",
        paper_ref: "Figure 20: Turnstile normalized time across WCDL 10..50",
        generate: fig20,
    },
    Target {
        name: "fig21",
        paper_ref: "Figure 21: optimization ladder plus the adaptive rung",
        generate: fig21,
    },
    Target {
        name: "fig22",
        paper_ref: "Figure 22: store-buffer size sensitivity at WCDL 10",
        generate: fig22,
    },
    Target {
        name: "fig23",
        paper_ref: "Figure 23: breakdown of all stores into release categories",
        generate: fig23,
    },
    Target {
        name: "fig24",
        paper_ref: "Figure 24: avg/max dynamic CLQ entries populated",
        generate: fig24,
    },
    Target {
        name: "fig25",
        paper_ref: "Figure 25: 2- vs 4-entry compact CLQ normalized time",
        generate: fig25,
    },
    Target {
        name: "fig26",
        paper_ref: "Figure 26: dynamic region size and code-size increase",
        generate: fig26,
    },
    Target {
        name: "table1",
        paper_ref: "Table 1: hardware cost comparison (area/energy, 22 nm)",
        generate: |_, _| table1(),
    },
    Target {
        name: "colors",
        paper_ref: "extension: checkpoint color-pool sizing sweep",
        generate: colors,
    },
    Target {
        name: "clq",
        paper_ref: "extension: three CLQ designs side by side (§4.3.1)",
        generate: clq_designs,
    },
    Target {
        name: "summary",
        paper_ref: "digest: headline geomeans of every scheme",
        generate: summary,
    },
    Target {
        name: "adaptive",
        paper_ref: "extension: per-region adaptive protection vs every uniform rung",
        generate: adaptive,
    },
];

/// Look up a target by CLI/wire name.
pub fn target_by_name(name: &str) -> Option<&'static Target> {
    TARGETS.iter().find(|t| t.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig18_shape() {
        let t = fig18();
        assert_eq!(t.rows.len(), 5);
        // More sensors -> lower latency; faster clock -> higher latency.
        let r30 = t.row("30 sensors").unwrap().to_vec();
        let r300 = t.row("300 sensors").unwrap().to_vec();
        assert!(r30[1] > r300[1]);
        assert!(r30[2] > r30[0]);
        // The paper's anchor: 300 sensors @2.5GHz = 10 cycles.
        assert_eq!(r300[1], 10.0);
    }

    #[test]
    fn table1_shape() {
        let t = table1();
        assert_eq!(t.rows.len(), 7);
        let ratio = t.row("Turnpike total / 4-entry SB (%)").unwrap();
        assert!(ratio[0] < 12.0 && ratio[0] > 8.0);
    }

    #[test]
    fn fig4_small_smoke() {
        let t = fig4(&Engine::serial(), Scale::Smoke);
        let mean = t.row("mean.all").unwrap();
        // 4-entry SB needs at least as many checkpoints as 40-entry.
        assert!(mean[1] >= mean[0], "{mean:?}");
        assert!(mean[1] > 0.0);
    }

    #[test]
    fn fig21_ladder_improves_smoke() {
        let t = fig21(&Engine::serial(), Scale::Smoke);
        let g = t.row("geomean.all").unwrap();
        let (turnstile, turnpike, adaptive) = (g[0], g[7], g[8]);
        assert!(
            turnpike <= turnstile,
            "turnpike {turnpike:.3} vs turnstile {turnstile:.3}"
        );
        assert!(
            adaptive <= turnpike,
            "adaptive {adaptive:.3} vs turnpike {turnpike:.3}"
        );
        assert!(turnstile >= 1.0);
    }

    #[test]
    fn adaptive_beats_every_uniform_scheme_somewhere() {
        let t = adaptive(&Engine::serial(), Scale::Smoke);
        let g = t.row("geomean.all").unwrap();
        // Adaptive never loses to the best uniform rung on aggregate...
        assert!(g[2] <= 1.0, "geomean ratio {:.4} > 1", g[2]);
        // ...and strictly beats every uniform scheme on >= 1 kernel.
        let wins: f64 = t
            .rows
            .iter()
            .filter(|(n, _)| !n.starts_with("geomean"))
            .map(|(_, r)| r[3])
            .sum();
        assert!(wins >= 1.0, "adaptive never beats the best uniform scheme");
    }
}
