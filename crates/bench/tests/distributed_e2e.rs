//! Distributed campaign execution, end to end: a coordinator sharding a
//! campaign across live in-process servers must produce a payload
//! byte-identical to the single-process run — including when part of the
//! fleet is dead or leaves mid-campaign — and deterministic job errors
//! must fail the coordination instead of being re-dispatched forever.

use std::net::SocketAddr;
use std::sync::Arc;

use turnpike_bench::{coordinate, CoordinateConfig, Engine, EngineExecutor};
use turnpike_serve::{Client, Executor, JobKind, JobRequest, Server, ServerConfig};

fn start_worker() -> Server {
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let exec = EngineExecutor::new(Engine::new(1));
    Server::start(config, Arc::new(exec) as Arc<dyn Executor>).expect("bind worker")
}

fn campaign(runs: u64) -> JobRequest {
    let mut req = JobRequest::new(JobKind::Campaign);
    req.runs = runs;
    req.seed = 0xC0FFEE;
    req.strikes = 1;
    req
}

fn direct_payload(req: &JobRequest) -> String {
    EngineExecutor::new(Engine::new(1))
        .execute_direct(req)
        .expect("direct campaign")
        .result
}

#[test]
fn coordinated_fleet_matches_the_single_process_payload_byte_for_byte() {
    let workers = [start_worker(), start_worker()];
    let addrs: Vec<SocketAddr> = workers.iter().map(Server::addr).collect();
    let cfg = CoordinateConfig {
        request: campaign(48),
        shards: 6,
        ..CoordinateConfig::default()
    };
    let report = coordinate(&addrs, &cfg, None).expect("coordinate");
    assert_eq!(report.payload, direct_payload(&cfg.request));
    assert_eq!(report.shards, 6);
    assert_eq!(report.totals.runs, 48);
    assert_eq!(
        report.workers.iter().map(|w| w.runs_done).sum::<u64>(),
        48,
        "every run is owned by exactly one worker"
    );
    for s in workers {
        s.shutdown();
    }
}

#[test]
fn dead_worker_shards_are_redispatched_and_the_merge_is_still_identical() {
    // Worker 1 is live; worker 0's address points at a freed port. Every
    // shard the coordinator hands to the dead worker must come back to
    // the queue and land on the survivor.
    let dead_addr = {
        let s = start_worker();
        let addr = s.addr();
        s.shutdown();
        addr
    };
    let live = start_worker();
    let addrs = [dead_addr, live.addr()];
    let cfg = CoordinateConfig {
        request: campaign(40),
        shards: 5,
        ..CoordinateConfig::default()
    };
    let report = coordinate(&addrs, &cfg, None).expect("coordinate with a dead worker");
    assert_eq!(report.payload, direct_payload(&cfg.request));
    assert!(
        report.reassigned >= 1,
        "the dead worker's shard was re-queued"
    );
    assert!(!report.workers[0].alive);
    assert_eq!(report.workers[0].shards_done, 0);
    assert_eq!(report.workers[1].runs_done, 40);
    live.shutdown();
}

#[test]
fn worker_leaving_mid_campaign_does_not_change_the_merged_bytes() {
    // A graceful drain mid-campaign: the leaving worker finishes what it
    // holds, then rejects further shards; the survivor absorbs the rest.
    // (CI's distributed-smoke job covers the harsher kill -9 variant with
    // real processes.) Whether the drain lands before or after the last
    // shard is timing — the byte-identity must hold either way.
    let leaver = start_worker();
    let survivor = start_worker();
    let addrs = [leaver.addr(), survivor.addr()];
    let leaver_addr = leaver.addr();
    let cfg = CoordinateConfig {
        request: campaign(2048),
        shards: 16,
        ..CoordinateConfig::default()
    };
    let (report, ()) = std::thread::scope(|scope| {
        let work = scope.spawn(|| coordinate(&addrs, &cfg, None));
        let drain = scope.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(40));
            if let Ok(mut c) = Client::connect(leaver_addr) {
                let _ = c.shutdown();
            }
        });
        (
            work.join().expect("coordinate thread"),
            drain.join().expect("drain thread"),
        )
    });
    let report = report.expect("coordinate during drain");
    assert_eq!(report.payload, direct_payload(&cfg.request));
    assert_eq!(report.totals.runs, 2048);
    leaver.join();
    survivor.shutdown();
}

#[test]
fn deterministic_job_errors_abort_instead_of_looping() {
    let worker = start_worker();
    let mut cfg = CoordinateConfig {
        request: campaign(8),
        ..CoordinateConfig::default()
    };
    cfg.request.kernel = "no-such-kernel".into();
    let err = coordinate(&[worker.addr()], &cfg, None).expect_err("bad kernel must fail");
    assert!(err.to_string().contains("kernel"), "{err}");
    worker.shutdown();
}
