//! Wire protocol: line-delimited JSON requests and streamed response
//! events.
//!
//! One request per line; the server answers with one or more event lines
//! and the final event (`done`, `error`, `overloaded`, `stats`,
//! `shutting_down`) ends the exchange for that request. Connections are
//! kept alive for further requests. All messages are single-line JSON with
//! a fixed key order (see [`crate::json`]); the `result` payload of a
//! `done` event is produced by the executor and embedded verbatim, which is
//! what makes a served result byte-identical to the direct-CLI rendering of
//! the same job.

use crate::json::{escape, Json};

/// What kind of work a job asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// Compile one kernel under a scheme and report pass statistics.
    Compile,
    /// Compile + simulate fault-free and report the run result.
    Run,
    /// A fault-injection campaign with an SDC audit.
    Campaign,
    /// Regenerate one figure/table of the paper's evaluation.
    Figure,
}

impl JobKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Compile => "compile",
            JobKind::Run => "run",
            JobKind::Campaign => "campaign",
            JobKind::Figure => "figure",
        }
    }

    /// Parse a wire name.
    pub fn parse(name: &str) -> Option<JobKind> {
        match name {
            "compile" => Some(JobKind::Compile),
            "run" => Some(JobKind::Run),
            "campaign" => Some(JobKind::Campaign),
            "figure" => Some(JobKind::Figure),
            _ => None,
        }
    }
}

/// A fully-parsed job request. Field applicability by kind:
/// `kernel`/`scheme`/`sb`/`wcdl` drive `compile`/`run`/`campaign`;
/// `runs`/`seed`/`strikes` drive `campaign` only; `target` drives `figure`
/// only. `scale` and `tag` apply to every kind (`tag` is an opaque client
/// token echoed in every event for this job — load generators use it to
/// prove no job is lost or duplicated).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobRequest {
    /// Work kind.
    pub kind: JobKind,
    /// Kernel name (e.g. `"bwaves"`), searched across all suites.
    pub kernel: String,
    /// Scheme CLI name (e.g. `"turnpike"`).
    pub scheme: String,
    /// Workload scale: `"smoke"` or `"full"`.
    pub scale: String,
    /// Store-buffer entries.
    pub sb: u32,
    /// Worst-case detection latency in cycles.
    pub wcdl: u64,
    /// Campaign: injected runs.
    pub runs: u64,
    /// Campaign: RNG seed.
    pub seed: u64,
    /// Campaign: strikes per run.
    pub strikes: u64,
    /// Figure: target name (e.g. `"fig19"`).
    pub target: String,
    /// Campaign: first global run index of this shard. `0` (the default)
    /// is a whole campaign; a distributed coordinator sets it so a worker
    /// executes the runs `run_offset .. run_offset + runs` of a larger
    /// campaign. Omitted from the wire when `0`, so unsharded requests
    /// render exactly as they always did.
    pub run_offset: u64,
    /// CLQ design override (e.g. `"compact-4"`, `"cam-4"`, `"off"`,
    /// `"ideal"`); empty (the default) keeps the scheme's own CLQ. The
    /// design-space explorer sets this; like `run_offset`, it is omitted
    /// from the wire when default so pre-explorer requests render exactly
    /// as they always did. The server validates the name at resolve time.
    pub clq: String,
    /// Color-pool size override; `0` (the default) keeps the scheme's own
    /// color count. Omitted from the wire when `0`.
    pub colors: u64,
    /// Cache geometry name (e.g. `"slim"`); empty (the default) keeps the
    /// simulator's default geometry. Omitted from the wire when empty.
    pub geom: String,
    /// Opaque client token echoed in every event; empty = none.
    pub tag: String,
}

impl JobRequest {
    /// A request with protocol defaults: smoke-scale `bwaves` under
    /// `turnpike`, 4-entry SB, WCDL 10, 8-run single-strike campaigns.
    pub fn new(kind: JobKind) -> JobRequest {
        JobRequest {
            kind,
            kernel: "bwaves".to_string(),
            scheme: "turnpike".to_string(),
            scale: "smoke".to_string(),
            sb: 4,
            wcdl: 10,
            runs: 8,
            seed: 0xF00D,
            strikes: 1,
            target: "summary".to_string(),
            run_offset: 0,
            clq: String::new(),
            colors: 0,
            geom: String::new(),
            tag: String::new(),
        }
    }

    /// Parse a request object (already dispatched on `"type"`).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field.
    pub fn from_json(kind: JobKind, v: &Json) -> Result<JobRequest, String> {
        let mut req = JobRequest::new(kind);
        let get_str = |key: &str, into: &mut String| -> Result<(), String> {
            if let Some(field) = v.get(key) {
                *into = field
                    .as_str()
                    .ok_or_else(|| format!("'{key}' must be a string"))?
                    .to_string();
            }
            Ok(())
        };
        let get_u64 = |key: &str, into: &mut u64| -> Result<(), String> {
            if let Some(field) = v.get(key) {
                *into = field
                    .as_u64()
                    .ok_or_else(|| format!("'{key}' must be a non-negative integer"))?;
            }
            Ok(())
        };
        get_str("kernel", &mut req.kernel)?;
        get_str("scheme", &mut req.scheme)?;
        get_str("scale", &mut req.scale)?;
        get_str("target", &mut req.target)?;
        get_str("tag", &mut req.tag)?;
        let mut sb = u64::from(req.sb);
        get_u64("sb", &mut sb)?;
        req.sb = u32::try_from(sb).map_err(|_| "'sb' out of range".to_string())?;
        get_u64("wcdl", &mut req.wcdl)?;
        get_u64("runs", &mut req.runs)?;
        get_u64("seed", &mut req.seed)?;
        get_u64("strikes", &mut req.strikes)?;
        get_u64("run_offset", &mut req.run_offset)?;
        get_str("clq", &mut req.clq)?;
        get_u64("colors", &mut req.colors)?;
        get_str("geom", &mut req.geom)?;
        if req.colors > 255 {
            return Err("'colors' must be <= 255".to_string());
        }
        if !matches!(req.scale.as_str(), "smoke" | "full") {
            return Err(format!(
                "'scale' must be 'smoke' or 'full', got '{}'",
                req.scale
            ));
        }
        if req.kind == JobKind::Campaign && (req.runs == 0 || req.strikes == 0) {
            return Err("'runs' and 'strikes' must be >= 1".to_string());
        }
        if req.run_offset.checked_add(req.runs).is_none() {
            return Err("'run_offset' + 'runs' overflows".to_string());
        }
        if req.sb == 0 {
            return Err("'sb' must be >= 1".to_string());
        }
        Ok(req)
    }

    /// Render the request as one wire line (no trailing newline). Key order
    /// is fixed; defaults are written out so the line is self-describing.
    pub fn to_line(&self) -> String {
        let mut out = format!(
            "{{\"type\":{},\"kernel\":{},\"scheme\":{},\"scale\":{},\"sb\":{},\"wcdl\":{},\
             \"runs\":{},\"seed\":{},\"strikes\":{},\"target\":{}",
            escape(self.kind.name()),
            escape(&self.kernel),
            escape(&self.scheme),
            escape(&self.scale),
            self.sb,
            self.wcdl,
            self.runs,
            self.seed,
            self.strikes,
            escape(&self.target),
        );
        if self.run_offset != 0 {
            out.push_str(&format!(",\"run_offset\":{}", self.run_offset));
        }
        if !self.clq.is_empty() {
            out.push_str(&format!(",\"clq\":{}", escape(&self.clq)));
        }
        if self.colors != 0 {
            out.push_str(&format!(",\"colors\":{}", self.colors));
        }
        if !self.geom.is_empty() {
            out.push_str(&format!(",\"geom\":{}", escape(&self.geom)));
        }
        if !self.tag.is_empty() {
            out.push_str(&format!(",\"tag\":{}", escape(&self.tag)));
        }
        out.push('}');
        out
    }
}

/// Any request a connection can carry.
// One `Request` exists per parsed line and is consumed immediately; the
// size skew against the dataless control variants buys nothing to box.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job.
    Job(JobRequest),
    /// Ask for a metrics/queue snapshot.
    Stats,
    /// Ask for a Prometheus-style text exposition of the live registry.
    Metrics,
    /// Begin graceful shutdown: drain in-flight jobs, then exit.
    Shutdown,
}

impl Request {
    /// Parse one request line.
    ///
    /// # Errors
    ///
    /// A human-readable message (sent back in an `error` event).
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| "request needs a string 'type' field".to_string())?;
        match kind {
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => match JobKind::parse(other) {
                Some(k) => Ok(Request::Job(JobRequest::from_json(k, &v)?)),
                None => Err(format!(
                    "unknown request type '{other}' (expected compile|run|campaign|figure|stats|metrics|shutdown)"
                )),
            },
        }
    }
}

/// Where a job's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreStatus {
    /// Served from the persistent artifact store.
    Hit,
    /// Computed (and written to the store if one is configured).
    Miss,
    /// No artifact store configured, or the job kind is not cacheable.
    Off,
}

impl StoreStatus {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            StoreStatus::Hit => "hit",
            StoreStatus::Miss => "miss",
            StoreStatus::Off => "off",
        }
    }
}

/// The campaign estimator payload carried by enriched `progress` events:
/// exact outcome counts over the completed runs, SDC/detection rates with
/// 95% Wilson confidence bounds, and windowed throughput/ETA.
///
/// All fields are optional on the wire as a unit — a `progress` line
/// either carries the full payload (new servers running campaign jobs) or
/// none of it (old servers, or job kinds without estimators). Old clients
/// ignore the extra keys; new clients parse a bare line as `stats: None`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProgressStats {
    /// Runs that detected and recovered every in-run strike.
    pub recovered: u64,
    /// Runs whose strikes all landed at or past completion.
    pub post_completion: u64,
    /// Runs with silent data corruption.
    pub sdc: u64,
    /// Runs aborted by the campaign watchdog.
    pub hangs: u64,
    /// Total detections across completed runs.
    pub detections: u64,
    /// Per-run SDC rate point estimate.
    pub sdc_rate: f64,
    /// Lower 95% Wilson bound on the SDC rate.
    pub sdc_ci_lo: f64,
    /// Upper 95% Wilson bound on the SDC rate.
    pub sdc_ci_hi: f64,
    /// Per-run detection (recovery) rate point estimate.
    pub det_rate: f64,
    /// Lower 95% Wilson bound on the detection rate.
    pub det_ci_lo: f64,
    /// Upper 95% Wilson bound on the detection rate.
    pub det_ci_hi: f64,
    /// Injected strikes per second, windowed.
    pub strikes_per_sec: f64,
    /// Host nanoseconds per simulated instruction, windowed.
    pub ns_per_inst: f64,
    /// Estimated milliseconds to completion; 0 = unknown.
    pub eta_ms: u64,
    /// Milliseconds since the campaign started.
    pub elapsed_ms: u64,
}

/// Format an `f64` like the [`crate::json`] writer: integral values as
/// integers, others via the shortest decimal form that round-trips.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl ProgressStats {
    /// Render the payload's key/value pairs (leading comma included), in
    /// the fixed wire order.
    fn to_fields(self) -> String {
        format!(
            ",\"recovered\":{},\"post_completion\":{},\"sdc\":{},\"hangs\":{},\
             \"detections\":{},\"sdc_rate\":{},\"sdc_ci_lo\":{},\"sdc_ci_hi\":{},\
             \"det_rate\":{},\"det_ci_lo\":{},\"det_ci_hi\":{},\"strikes_per_sec\":{},\
             \"ns_per_inst\":{},\"eta_ms\":{},\"elapsed_ms\":{}",
            self.recovered,
            self.post_completion,
            self.sdc,
            self.hangs,
            self.detections,
            fmt_f64(self.sdc_rate),
            fmt_f64(self.sdc_ci_lo),
            fmt_f64(self.sdc_ci_hi),
            fmt_f64(self.det_rate),
            fmt_f64(self.det_ci_lo),
            fmt_f64(self.det_ci_hi),
            fmt_f64(self.strikes_per_sec),
            fmt_f64(self.ns_per_inst),
            self.eta_ms,
            self.elapsed_ms,
        )
    }

    /// Extract the payload from a parsed `progress` object; `None` when
    /// the line predates the estimator payload (older servers). Unknown
    /// extra fields are ignored, so newer servers stay readable.
    pub fn from_json(v: &Json) -> Option<ProgressStats> {
        let u = |key: &str| v.get(key).and_then(Json::as_u64);
        let f = |key: &str| v.get(key).and_then(Json::as_f64);
        Some(ProgressStats {
            recovered: u("recovered")?,
            post_completion: u("post_completion")?,
            sdc: u("sdc")?,
            hangs: u("hangs")?,
            detections: u("detections")?,
            sdc_rate: f("sdc_rate")?,
            sdc_ci_lo: f("sdc_ci_lo")?,
            sdc_ci_hi: f("sdc_ci_hi")?,
            det_rate: f("det_rate")?,
            det_ci_lo: f("det_ci_lo")?,
            det_ci_hi: f("det_ci_hi")?,
            strikes_per_sec: f("strikes_per_sec")?,
            ns_per_inst: f("ns_per_inst")?,
            eta_ms: u("eta_ms")?,
            elapsed_ms: u("elapsed_ms")?,
        })
    }
}

/// Server→client event lines. Each renders as one line via
/// [`Event::to_line`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The job passed admission control and is queued.
    Accepted {
        /// Server-assigned job id.
        job: u64,
        /// Echoed client tag (empty = none).
        tag: String,
        /// Queue depth right after this job was enqueued.
        queue_depth: usize,
    },
    /// Admission control rejected the job: the queue is full.
    Overloaded {
        /// Echoed client tag (empty = none).
        tag: String,
        /// Hint: milliseconds to wait before retrying.
        retry_after_ms: u64,
    },
    /// The server is shutting down and takes no new jobs.
    ShuttingDown {
        /// Echoed client tag (empty = none).
        tag: String,
    },
    /// Periodic progress for long jobs (campaign runs completed so far),
    /// optionally enriched with the campaign estimator payload.
    Progress {
        /// Server-assigned job id.
        job: u64,
        /// Echoed client tag (empty = none).
        tag: String,
        /// Work units done.
        done: u64,
        /// Total work units.
        total: u64,
        /// Estimator payload; `None` renders the historical bare line.
        stats: Option<ProgressStats>,
    },
    /// The job finished; `result` is the executor's payload (valid
    /// single-line JSON, embedded verbatim).
    Done {
        /// Server-assigned job id.
        job: u64,
        /// Echoed client tag (empty = none).
        tag: String,
        /// Artifact-store disposition of the result.
        store: StoreStatus,
        /// Executor payload (single-line JSON).
        result: String,
    },
    /// The job (or request) failed.
    Error {
        /// Server-assigned job id; 0 when the request never became a job.
        job: u64,
        /// Echoed client tag (empty = none).
        tag: String,
        /// What went wrong.
        message: String,
    },
    /// Snapshot answer to a `stats` request; `body` is a pre-rendered
    /// single-line JSON object.
    Stats {
        /// Pre-rendered JSON object.
        body: String,
    },
    /// Answer to a `metrics` request: the server's live registry as
    /// Prometheus text exposition, carried as one JSON string (newlines
    /// escaped on the wire).
    Metrics {
        /// Exposition text (multi-line, stable line order).
        body: String,
    },
}

impl Event {
    /// Render as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let tag_field = |tag: &str| {
            if tag.is_empty() {
                String::new()
            } else {
                format!(",\"tag\":{}", escape(tag))
            }
        };
        match self {
            Event::Accepted {
                job,
                tag,
                queue_depth,
            } => format!(
                "{{\"event\":\"accepted\",\"job\":{job}{},\"queue_depth\":{queue_depth}}}",
                tag_field(tag)
            ),
            Event::Overloaded {
                tag,
                retry_after_ms,
            } => format!(
                "{{\"event\":\"overloaded\"{},\"retry_after_ms\":{retry_after_ms}}}",
                tag_field(tag)
            ),
            Event::ShuttingDown { tag } => {
                format!("{{\"event\":\"shutting_down\"{}}}", tag_field(tag))
            }
            Event::Progress {
                job,
                tag,
                done,
                total,
                stats,
            } => {
                format!(
                "{{\"event\":\"progress\",\"job\":{job}{},\"done\":{done},\"total\":{total}{}}}",
                tag_field(tag),
                stats.map(ProgressStats::to_fields).unwrap_or_default()
            )
            }
            Event::Done {
                job,
                tag,
                store,
                result,
            } => format!(
                "{{\"event\":\"done\",\"job\":{job}{},\"store\":\"{}\",\"result\":{result}}}",
                tag_field(tag),
                store.name()
            ),
            Event::Error { job, tag, message } => format!(
                "{{\"event\":\"error\",\"job\":{job}{},\"message\":{}}}",
                tag_field(tag),
                escape(message)
            ),
            Event::Stats { body } => format!("{{\"event\":\"stats\",\"server\":{body}}}"),
            Event::Metrics { body } => {
                format!("{{\"event\":\"metrics\",\"body\":{}}}", escape(body))
            }
        }
    }
}

/// Default [`LineReader`] line-length cap: longer than any legitimate
/// request by orders of magnitude, small enough that a garbage peer can't
/// grow a connection buffer without bound.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Read half of a connection's buffer state machine: raw byte chunks go in
/// (whatever a nonblocking read returned), complete trimmed request lines
/// come out. Blank lines are swallowed, exactly like the blocking
/// `read_line` loop this replaces. Bytes past the last newline stay
/// buffered across calls, so a request split over any number of TCP
/// segments reassembles transparently.
#[derive(Debug, Default)]
pub struct LineReader {
    buf: Vec<u8>,
    overflowed: bool,
}

impl LineReader {
    /// An empty reader.
    pub fn new() -> LineReader {
        LineReader::default()
    }

    /// Feed one chunk of raw bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.overflowed {
            return;
        }
        self.buf.extend_from_slice(bytes);
        if self.buf.len() > MAX_LINE_BYTES && !self.buf.contains(&b'\n') {
            // A peer streaming an unbounded newline-free line is hostile
            // or broken either way; stop buffering and let the connection
            // owner drop it.
            self.overflowed = true;
            self.buf.clear();
        }
    }

    /// Whether the peer exceeded the line-length cap; the connection
    /// should be closed.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Pop the next complete non-blank line, trimmed, if one is buffered.
    pub fn next_line(&mut self) -> Option<String> {
        loop {
            let pos = self.buf.iter().position(|&b| b == b'\n')?;
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line);
            let line = line.trim();
            if !line.is_empty() {
                return Some(line.to_string());
            }
        }
    }
}

/// Write half of a connection's buffer state machine: whole event lines go
/// in, and [`write_to`](WriteQueue::write_to) drains as many bytes as the
/// nonblocking socket will take, keeping the rest (a partially-written
/// line included) queued for the next readiness notification. Lines are
/// therefore never interleaved or torn on the wire regardless of how the
/// kernel slices the writes.
#[derive(Debug, Default)]
pub struct WriteQueue {
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the socket.
    head: usize,
}

impl WriteQueue {
    /// An empty queue.
    pub fn new() -> WriteQueue {
        WriteQueue::default()
    }

    /// Queue one event line (newline appended).
    pub fn push_line(&mut self, line: &str) {
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
    }

    /// Whether everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }

    /// Bytes still waiting to go out.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Write as much queued output as `w` will take without blocking.
    /// Returns the bytes written; a `WouldBlock` from the writer is not an
    /// error, it just leaves the remainder queued (register write
    /// interest and call again on readiness).
    ///
    /// # Errors
    ///
    /// Propagates real I/O errors (connection reset, broken pipe, …);
    /// `WouldBlock` and `Interrupted` are absorbed.
    pub fn write_to<W: std::io::Write>(&mut self, w: &mut W) -> std::io::Result<usize> {
        let mut written = 0;
        while self.head < self.buf.len() {
            match w.write(&self.buf[self.head..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(n) => {
                    self.head += n;
                    written += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        // Reclaim drained capacity once the backlog clears (or the dead
        // prefix dominates) so long-lived connections don't hold peak-size
        // buffers forever.
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head > 4096 && self.head * 2 > self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_request_round_trips_through_the_wire() {
        let mut req = JobRequest::new(JobKind::Campaign);
        req.kernel = "hmmer".into();
        req.runs = 12;
        req.seed = 99;
        req.tag = "c1-j7".into();
        let line = req.to_line();
        match Request::parse(&line).unwrap() {
            Request::Job(parsed) => assert_eq!(parsed, req),
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn defaults_apply_for_sparse_requests() {
        let parsed = Request::parse("{\"type\":\"run\",\"kernel\":\"mcf\"}").unwrap();
        match parsed {
            Request::Job(req) => {
                assert_eq!(req.kind, JobKind::Run);
                assert_eq!(req.kernel, "mcf");
                assert_eq!(req.scheme, "turnpike");
                assert_eq!(req.scale, "smoke");
                assert_eq!(req.sb, 4);
                assert_eq!(req.wcdl, 10);
                assert!(req.tag.is_empty());
            }
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn admin_requests_parse() {
        assert_eq!(
            Request::parse("{\"type\":\"stats\"}").unwrap(),
            Request::Stats
        );
        assert_eq!(
            Request::parse("{\"type\":\"metrics\"}").unwrap(),
            Request::Metrics
        );
        assert_eq!(
            Request::parse("{\"type\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn progress_event_round_trips_with_estimator_payload() {
        let stats = ProgressStats {
            recovered: 11,
            post_completion: 3,
            sdc: 0,
            hangs: 1,
            detections: 14,
            sdc_rate: 0.0,
            sdc_ci_lo: 0.0,
            sdc_ci_hi: 0.204_047_656_259_748_5,
            det_rate: 0.733_333_333_333_333_4,
            det_ci_lo: 0.468_353_053_247_329_2,
            det_ci_hi: 0.895_138_186_807_640_6,
            strikes_per_sec: 812.5,
            ns_per_inst: 143.071_6,
            eta_ms: 1234,
            elapsed_ms: 567,
        };
        let event = Event::Progress {
            job: 9,
            tag: "w3".into(),
            done: 15,
            total: 64,
            stats: Some(stats),
        };
        let line = event.to_line();
        assert!(!line.contains('\n'));
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("event").and_then(Json::as_str), Some("progress"));
        assert_eq!(v.get("done").and_then(Json::as_u64), Some(15));
        assert_eq!(v.get("total").and_then(Json::as_u64), Some(64));
        // The shortest-round-trip float encoding makes decode exact, not
        // approximate: the parsed payload equals the original bit for bit.
        let parsed = ProgressStats::from_json(&v).expect("payload present");
        assert_eq!(parsed, stats);
    }

    #[test]
    fn bare_progress_lines_and_unknown_fields_tolerated() {
        // A line from a pre-estimator server: no payload, not an error.
        let old = "{\"event\":\"progress\",\"job\":2,\"done\":1,\"total\":8}";
        let v = Json::parse(old).unwrap();
        assert_eq!(ProgressStats::from_json(&v), None);
        assert_eq!(v.get("done").and_then(Json::as_u64), Some(1));
        // A line from a *newer* server with fields this build never heard
        // of: lookups are by key, so the known payload still decodes.
        let newer = Event::Progress {
            job: 2,
            tag: String::new(),
            done: 4,
            total: 8,
            stats: Some(ProgressStats {
                recovered: 4,
                det_rate: 1.0,
                det_ci_lo: 0.51,
                det_ci_hi: 1.0,
                ..ProgressStats::default()
            }),
        }
        .to_line();
        let future = format!(
            "{},\"flux_capacitance\":3.14,\"q\":[1,2]}}",
            newer.strip_suffix('}').unwrap()
        );
        let v = Json::parse(&future).unwrap();
        let parsed = ProgressStats::from_json(&v).expect("unknown fields are ignored");
        assert_eq!(parsed.recovered, 4);
        assert_eq!(parsed.det_ci_lo, 0.51);
        // A half-present payload (field dropped mid-schema) degrades to
        // None rather than a partially-zeroed struct.
        let torn = newer.replace(",\"hangs\":0", "");
        let parsed = ProgressStats::from_json(&Json::parse(&torn).unwrap());
        assert_eq!(parsed, None);
    }

    #[test]
    fn run_offset_rides_the_wire_only_when_sharded() {
        // Unsharded requests render exactly as they always did: no
        // `run_offset` key, so old servers and golden transcripts are
        // untouched.
        let whole = JobRequest::new(JobKind::Campaign);
        assert!(!whole.to_line().contains("run_offset"));
        match Request::parse(&whole.to_line()).unwrap() {
            Request::Job(parsed) => assert_eq!(parsed.run_offset, 0),
            other => panic!("expected job, got {other:?}"),
        }
        // A shard round-trips its offset.
        let mut shard = JobRequest::new(JobKind::Campaign);
        shard.runs = 4;
        shard.run_offset = 12;
        let line = shard.to_line();
        assert!(line.contains("\"run_offset\":12"), "{line}");
        match Request::parse(&line).unwrap() {
            Request::Job(parsed) => assert_eq!(parsed, shard),
            other => panic!("expected job, got {other:?}"),
        }
        // Offset + runs must stay representable.
        let err = Request::parse(&format!(
            "{{\"type\":\"campaign\",\"runs\":2,\"run_offset\":{}}}",
            u64::MAX
        ))
        .expect_err("overflowing shard");
        assert!(err.contains("run_offset"), "{err}");
    }

    #[test]
    fn explorer_overrides_ride_the_wire_only_when_set() {
        // A default request renders without any of the explorer's override
        // keys — old servers and golden transcripts never see them.
        let plain = JobRequest::new(JobKind::Run);
        let line = plain.to_line();
        for key in ["clq", "colors", "geom"] {
            assert!(!line.contains(key), "{line}");
        }
        match Request::parse(&line).unwrap() {
            Request::Job(parsed) => {
                assert!(parsed.clq.is_empty());
                assert_eq!(parsed.colors, 0);
                assert!(parsed.geom.is_empty());
            }
            other => panic!("expected job, got {other:?}"),
        }
        // An explorer point round-trips every override.
        let mut point = JobRequest::new(JobKind::Campaign);
        point.clq = "cam-4".into();
        point.colors = 8;
        point.geom = "slim".into();
        let line = point.to_line();
        assert!(line.contains("\"clq\":\"cam-4\""), "{line}");
        assert!(line.contains("\"colors\":8"), "{line}");
        assert!(line.contains("\"geom\":\"slim\""), "{line}");
        match Request::parse(&line).unwrap() {
            Request::Job(parsed) => assert_eq!(parsed, point),
            other => panic!("expected job, got {other:?}"),
        }
        // `colors` must fit the simulator's u8 pool size.
        let err = Request::parse("{\"type\":\"run\",\"colors\":256}").expect_err("overflow");
        assert!(err.contains("colors"), "{err}");
    }

    #[test]
    fn line_reader_reassembles_split_lines_and_skips_blanks() {
        let mut r = LineReader::new();
        r.push(b"{\"type\":\"sta");
        assert_eq!(r.next_line(), None);
        r.push(b"ts\"}\r\n\n  \n{\"type\":\"metrics\"}\n{\"par");
        assert_eq!(r.next_line(), Some("{\"type\":\"stats\"}".to_string()));
        assert_eq!(r.next_line(), Some("{\"type\":\"metrics\"}".to_string()));
        assert_eq!(r.next_line(), None, "partial line stays buffered");
        r.push(b"tial\":1}\n");
        assert_eq!(r.next_line(), Some("{\"partial\":1}".to_string()));
        assert_eq!(r.next_line(), None);
        assert!(!r.overflowed());
    }

    #[test]
    fn line_reader_flags_unbounded_newline_free_input() {
        let mut r = LineReader::new();
        r.push(&vec![b'x'; MAX_LINE_BYTES + 1]);
        assert!(r.overflowed());
        assert_eq!(r.next_line(), None);
        // Once overflowed the reader stays inert — the connection is dead.
        r.push(b"{\"type\":\"stats\"}\n");
        assert_eq!(r.next_line(), None);
    }

    /// A writer that accepts a fixed number of bytes per call, then
    /// `WouldBlock`s — the shape of a nonblocking socket with a full
    /// send buffer.
    struct Throttle {
        accepted: Vec<u8>,
        per_call: usize,
        calls_before_block: usize,
    }

    impl std::io::Write for Throttle {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.calls_before_block == 0 {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.calls_before_block -= 1;
            let n = buf.len().min(self.per_call);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_survives_partial_writes_without_tearing_lines() {
        let mut q = WriteQueue::new();
        q.push_line("{\"event\":\"accepted\",\"job\":1}");
        q.push_line("{\"event\":\"done\",\"job\":1}");
        let total = q.pending();
        let mut w = Throttle {
            accepted: Vec::new(),
            per_call: 7,
            calls_before_block: 2,
        };
        assert_eq!(q.write_to(&mut w).unwrap(), 14);
        assert!(!q.is_empty());
        assert_eq!(q.pending(), total - 14);
        // Socket drains; the rest goes out on the next readiness pass.
        w.calls_before_block = usize::MAX;
        q.write_to(&mut w).unwrap();
        assert!(q.is_empty());
        assert_eq!(
            String::from_utf8(w.accepted).unwrap(),
            "{\"event\":\"accepted\",\"job\":1}\n{\"event\":\"done\",\"job\":1}\n"
        );
    }

    #[test]
    fn bad_requests_name_the_problem() {
        let cases = [
            ("{\"type\":\"warp\"}", "unknown request type"),
            ("{\"no_type\":1}", "'type'"),
            ("{\"type\":\"run\",\"sb\":0}", "'sb'"),
            ("{\"type\":\"run\",\"scale\":\"huge\"}", "'scale'"),
            ("{\"type\":\"campaign\",\"runs\":0}", "'runs'"),
            ("{\"type\":\"run\",\"wcdl\":\"ten\"}", "'wcdl'"),
            ("not json", "parse error"),
        ];
        for (line, needle) in cases {
            let err = Request::parse(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn events_render_stable_single_lines() {
        let done = Event::Done {
            job: 3,
            tag: "t".into(),
            store: StoreStatus::Hit,
            result: "{\"cycles\":10}".into(),
        };
        assert_eq!(
            done.to_line(),
            "{\"event\":\"done\",\"job\":3,\"tag\":\"t\",\"store\":\"hit\",\"result\":{\"cycles\":10}}"
        );
        let over = Event::Overloaded {
            tag: String::new(),
            retry_after_ms: 40,
        };
        assert_eq!(
            over.to_line(),
            "{\"event\":\"overloaded\",\"retry_after_ms\":40}"
        );
        for e in [
            done,
            over,
            Event::Accepted {
                job: 1,
                tag: "x".into(),
                queue_depth: 2,
            },
            Event::Progress {
                job: 1,
                tag: String::new(),
                done: 3,
                total: 8,
                stats: None,
            },
            Event::Metrics {
                body: "# TYPE turnpike_campaign_runs counter\nturnpike_campaign_runs 4\n".into(),
            },
            Event::Error {
                job: 0,
                tag: String::new(),
                message: "bad \"quote\"".into(),
            },
            Event::ShuttingDown { tag: String::new() },
            Event::Stats {
                body: "{\"queue_depth\":0}".into(),
            },
        ] {
            let line = e.to_line();
            assert!(!line.contains('\n'));
            assert!(crate::json::Json::parse(&line).is_ok(), "{line}");
        }
    }
}
