//! Compile-and-simulate driver.

use crate::preset::CacheGeom;
use crate::scheme::Scheme;
use std::sync::Arc;
use turnpike_compiler::{
    compile, CompileError, CompileOutput, CompilerConfig, PassStats, ProtectionPolicy,
};
use turnpike_ir::Program;
use turnpike_sim::{
    ClqKind, Core, CoreSnapshot, FaultPlan, ReplayGuide, SimConfig, SimError, SimOutcome,
    Translation,
};

/// A fully-specified run: scheme, platform knobs, and optional hardware
/// overrides for the sensitivity studies.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Design point.
    pub scheme: Scheme,
    /// Store buffer entries.
    pub sb_size: u32,
    /// Worst-case detection latency in cycles.
    pub wcdl: u64,
    /// Override the CLQ design (Figures 14/15/24/25); `None` keeps the
    /// scheme's default.
    pub clq_override: Option<ClqKind>,
    /// Record latency histograms (SB residency, verification latency,
    /// detection latency, recovery penalty) into the run's stats and
    /// metrics. Recording never changes the timing model.
    pub histograms: bool,
    /// Override the scheme's snapshot cadence
    /// ([`SimConfig::snapshot_interval`]): `Some(interval)` replaces it,
    /// `None` keeps the scheme default. Fault campaigns read the resulting
    /// config to decide whether to fork strike runs from fault-free prefix
    /// snapshots; `with_snapshot_interval(None)` forces the from-scratch
    /// path. Snapshots never change any simulated outcome.
    pub snapshot_override: Option<Option<u64>>,
    /// Override the scheme's per-region protection policy (degenerate
    /// equivalence tests, custom thresholds); `None` keeps the scheme's
    /// own policy. Applied in [`RunSpec::compiler_config`], so it rides
    /// through campaigns and the engine's compile cache untouched.
    pub policy_override: Option<ProtectionPolicy>,
    /// Override the color-pool size (the explorer's color axis); `None`
    /// keeps the scheme's default. Only meaningful when the scheme's
    /// configuration has coloring on — otherwise the simulator ignores it.
    pub colors_override: Option<u8>,
    /// Override the cache geometry (the explorer's cache axis); `None`
    /// keeps the simulator's Cortex-A53-like default.
    pub geom_override: Option<CacheGeom>,
}

impl RunSpec {
    /// A spec with the paper's defaults (4-entry SB, 10-cycle WCDL).
    pub fn new(scheme: Scheme) -> Self {
        RunSpec {
            scheme,
            sb_size: 4,
            wcdl: 10,
            clq_override: None,
            histograms: false,
            snapshot_override: None,
            policy_override: None,
            colors_override: None,
            geom_override: None,
        }
    }

    /// Same spec with a different WCDL.
    pub fn with_wcdl(mut self, wcdl: u64) -> Self {
        self.wcdl = wcdl;
        self
    }

    /// Same spec with a different SB size.
    pub fn with_sb(mut self, sb: u32) -> Self {
        self.sb_size = sb;
        self
    }

    /// Same spec with a CLQ override.
    pub fn with_clq(mut self, clq: ClqKind) -> Self {
        self.clq_override = Some(clq);
        self
    }

    /// Same spec with latency histograms recorded.
    pub fn with_histograms(mut self) -> Self {
        self.histograms = true;
        self
    }

    /// Same spec with the snapshot cadence overridden: `Some(n)` captures a
    /// fault-free prefix snapshot roughly every `n` cycles during campaign
    /// golden runs, `None` disables snapshots (campaigns then simulate every
    /// strike run from scratch). Either way the campaign output is
    /// bit-identical — snapshots only change how much prefix work is redone.
    pub fn with_snapshot_interval(mut self, interval: Option<u64>) -> Self {
        self.snapshot_override = Some(interval);
        self
    }

    /// Same spec with the protection policy overridden.
    pub fn with_policy(mut self, policy: ProtectionPolicy) -> Self {
        self.policy_override = Some(policy);
        self
    }

    /// Same spec with the color-pool size overridden.
    pub fn with_colors(mut self, colors: u8) -> Self {
        self.colors_override = Some(colors);
        self
    }

    /// Same spec with the cache geometry overridden.
    pub fn with_geom(mut self, geom: CacheGeom) -> Self {
        self.geom_override = Some(geom);
        self
    }

    /// The compiler configuration this spec compiles under. Two specs with
    /// equal configurations produce identical machine code, which is what
    /// lets the evaluation engine share one compile across run points.
    pub fn compiler_config(&self) -> CompilerConfig {
        let mut cc = self.scheme.compiler_config(self.sb_size);
        if let Some(policy) = self.policy_override {
            cc.policy = policy;
        }
        cc
    }

    /// The simulator configuration this spec runs under, with the CLQ
    /// override (and its implied WAR-free gating) applied.
    pub fn sim_config(&self) -> SimConfig {
        let mut sc = self.scheme.sim_config(self.sb_size, self.wcdl);
        if let Some(clq) = self.clq_override {
            sc.clq = clq;
            sc.war_free = !matches!(clq, ClqKind::Off) && sc.resilient;
        }
        sc.histograms = self.histograms;
        if let Some(interval) = self.snapshot_override {
            sc.snapshot_interval = interval;
        }
        if let Some(colors) = self.colors_override {
            sc.colors = colors;
        }
        if let Some(geom) = self.geom_override {
            sc.l1_bytes = geom.l1_bytes;
            sc.l1_ways = geom.l1_ways;
            sc.l2_bytes = geom.l2_bytes;
            sc.l2_ways = geom.l2_ways;
        }
        sc
    }
}

/// Result of a run: simulation outcome plus the compiler statistics.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Simulator outcome (cycles, stats, final memory).
    pub outcome: SimOutcome,
    /// Compiler pass statistics (store breakdown, code size).
    pub compile_stats: PassStats,
    /// The run's unified metrics registry: the compile's `compile.*` keys
    /// merged with the simulation's `sim.*` keys. The evaluation harness
    /// reads every statistic from here.
    pub metrics: turnpike_metrics::MetricSet,
}

impl RunResult {
    /// Assemble a result from a compile and a simulation, merging both
    /// layers' metrics into the unified registry.
    fn assemble(compiled: &CompileOutput, outcome: SimOutcome) -> Self {
        let mut metrics = compiled.metrics.clone();
        metrics.merge(&outcome.stats.to_metrics());
        RunResult {
            outcome,
            compile_stats: compiled.stats.clone(),
            metrics,
        }
    }
}

/// Driver failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// Compilation failed.
    Compile(CompileError),
    /// Simulation failed.
    Sim(SimError),
    /// The caller's cancellation hook fired before the work finished (see
    /// [`crate::campaign::CampaignHook`]); partial results are discarded.
    Canceled,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Compile(e) => write!(f, "compile: {e}"),
            RunError::Sim(e) => write!(f, "simulate: {e}"),
            RunError::Canceled => write!(f, "canceled"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<CompileError> for RunError {
    fn from(e: CompileError) -> Self {
        RunError::Compile(e)
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// Compile `program` under `spec` and simulate it fault-free.
///
/// # Errors
///
/// Propagates compiler and simulator failures.
pub fn run_kernel(program: &Program, spec: &RunSpec) -> Result<RunResult, RunError> {
    run_kernel_with_faults(program, spec, &FaultPlan::none())
}

/// Compile and simulate under explicit compiler/simulator configurations,
/// bypassing the [`Scheme`] presets. This is the entry point for ablation
/// studies (e.g. "Turnpike minus instruction scheduling").
///
/// # Errors
///
/// Propagates compiler and simulator failures.
pub fn run_custom(
    program: &Program,
    cc: &turnpike_compiler::CompilerConfig,
    sc: &turnpike_sim::SimConfig,
) -> Result<RunResult, RunError> {
    let compiled = compile(program, cc)?;
    let outcome = Core::new(&compiled.program, sc.clone()).run()?;
    Ok(RunResult::assemble(&compiled, outcome))
}

/// Compile and simulate with a fault plan.
///
/// # Errors
///
/// Propagates compiler and simulator failures.
pub fn run_kernel_with_faults(
    program: &Program,
    spec: &RunSpec,
    faults: &FaultPlan,
) -> Result<RunResult, RunError> {
    let compiled = compile(program, &spec.compiler_config())?;
    run_compiled_with_faults(&compiled, spec, faults)
}

/// Simulate an already-compiled program fault-free under an explicit
/// simulator configuration. The evaluation engine's run cache sits on top
/// of this: one compile feeds every (WCDL, CLQ, colors, ...) sim point.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn run_compiled(compiled: &CompileOutput, sc: &SimConfig) -> Result<RunResult, RunError> {
    let outcome = Core::new(&compiled.program, sc.clone()).run()?;
    Ok(RunResult::assemble(compiled, outcome))
}

/// Simulate an already-compiled program under `spec` with a fault plan.
/// Fault campaigns and the evaluation engine use this to compile a kernel
/// once and reuse the machine code across many simulations.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn run_compiled_with_faults(
    compiled: &CompileOutput,
    spec: &RunSpec,
    faults: &FaultPlan,
) -> Result<RunResult, RunError> {
    let outcome = Core::new(&compiled.program, spec.sim_config()).run_with_faults(faults)?;
    Ok(RunResult::assemble(compiled, outcome))
}

/// Simulate an already-compiled program under `spec`, capturing a
/// [`CoreSnapshot`] roughly every `interval` cycles. The result is
/// bit-identical to [`run_compiled_with_faults`] with the same plan —
/// capture is pure observation. Fault campaigns run the fault-free golden
/// execution through this once and [`resume_compiled_with_faults`] each
/// strike run from the latest usable snapshot.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn run_compiled_collecting_snapshots(
    compiled: &CompileOutput,
    spec: &RunSpec,
    faults: &FaultPlan,
    interval: u64,
) -> Result<(RunResult, Vec<CoreSnapshot>), RunError> {
    let (outcome, snaps) = Core::new(&compiled.program, spec.sim_config())
        .run_collecting_snapshots(faults, interval)?;
    Ok((RunResult::assemble(compiled, outcome), snaps))
}

/// Continue an already-compiled program from `snap` under a new fault plan.
/// Bit-identical to the from-scratch run of the same plan provided every
/// strike lands strictly after `snap.cycle()` (see the [`CoreSnapshot`]
/// determinism contract).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn resume_compiled_with_faults(
    compiled: &CompileOutput,
    snap: &CoreSnapshot,
    faults: &FaultPlan,
) -> Result<RunResult, RunError> {
    let outcome = Core::resume(&compiled.program, snap, faults)?;
    Ok(RunResult::assemble(compiled, outcome))
}

/// [`run_compiled_with_faults`] with campaign sharing applied: an optional
/// pre-built [`Translation`] of the compiled program (superblock dispatch
/// once the run goes quiet) and an optional early-exit [`ReplayGuide`]
/// (stop at the first provable reconvergence with the golden run). Both are
/// pure accelerations — the outcome is bit-identical either way, except
/// that an early-exited outcome reports `replay_saved` and carries empty
/// memory maps (the convergence proof already matched them).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn run_compiled_replay(
    compiled: &CompileOutput,
    spec: &RunSpec,
    faults: &FaultPlan,
    translation: Option<Arc<Translation>>,
    guide: Option<&ReplayGuide<'_>>,
) -> Result<RunResult, RunError> {
    let mut core = Core::new(&compiled.program, spec.sim_config());
    if let Some(tr) = translation {
        core.attach_translation(tr);
    }
    let outcome = match guide {
        Some(g) => core.run_with_replay(faults, g)?,
        None => core.run_with_faults(faults)?,
    };
    Ok(RunResult::assemble(compiled, outcome))
}

/// [`resume_compiled_with_faults`] with the same campaign sharing as
/// [`run_compiled_replay`]: fault campaigns fork thousands of strike runs
/// from one compiled program, so the superblock pre-decode happens once and
/// every run probes the same golden snapshots for an early exit.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn resume_compiled_replay(
    compiled: &CompileOutput,
    snap: &CoreSnapshot,
    faults: &FaultPlan,
    translation: Option<Arc<Translation>>,
    guide: Option<&ReplayGuide<'_>>,
) -> Result<RunResult, RunError> {
    let outcome = Core::resume_replay(&compiled.program, snap, faults, translation, guide)?;
    Ok(RunResult::assemble(compiled, outcome))
}

/// Normalized execution time of `spec` relative to the unprotected baseline
/// on the same kernel (the paper's y-axis on every performance figure).
///
/// # Errors
///
/// Propagates compiler and simulator failures.
pub fn normalized_time(program: &Program, spec: &RunSpec) -> Result<f64, RunError> {
    let base = run_kernel(
        program,
        &RunSpec::new(Scheme::Baseline).with_sb(spec.sb_size),
    )?;
    let run = run_kernel(program, spec)?;
    Ok(run.outcome.stats.cycles as f64 / base.outcome.stats.cycles as f64)
}

/// Geometric mean of a nonempty slice (used for per-suite summaries).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let s: f64 = xs.iter().map(|x| x.ln()).sum();
    (s / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_workloads::{kernel_by_name, Scale, Suite};

    fn kernel(name: &str) -> Program {
        kernel_by_name(Suite::Cpu2006, name, Scale::Smoke)
            .expect("known kernel")
            .program
    }

    #[test]
    fn baseline_and_turnpike_agree_functionally() {
        for name in ["bwaves", "hmmer", "mcf", "gcc"] {
            let p = kernel(name);
            let base = run_kernel(&p, &RunSpec::new(Scheme::Baseline)).unwrap();
            let tp = run_kernel(&p, &RunSpec::new(Scheme::Turnpike)).unwrap();
            assert_eq!(base.outcome.ret, tp.outcome.ret, "{name}");
        }
    }

    #[test]
    fn ladder_overheads_are_ordered_on_average() {
        // Turnpike must beat Turnstile on the geomean over a few kernels.
        let names = ["bwaves", "hmmer", "leslie3d", "libquan"];
        let mut ts = Vec::new();
        let mut tp = Vec::new();
        for n in names {
            let p = kernel(n);
            ts.push(normalized_time(&p, &RunSpec::new(Scheme::Turnstile)).unwrap());
            tp.push(normalized_time(&p, &RunSpec::new(Scheme::Turnpike)).unwrap());
        }
        let (g_ts, g_tp) = (geomean(&ts), geomean(&tp));
        assert!(
            g_tp < g_ts,
            "turnpike ({g_tp:.3}) must beat turnstile ({g_ts:.3})"
        );
        assert!(g_ts > 1.0, "turnstile costs something: {g_ts:.3}");
    }

    #[test]
    fn clq_override_applies() {
        let p = kernel("bwaves");
        let ideal = run_kernel(
            &p,
            &RunSpec::new(Scheme::FastRelease).with_clq(ClqKind::Ideal),
        )
        .unwrap();
        let compact = run_kernel(
            &p,
            &RunSpec::new(Scheme::FastRelease).with_clq(ClqKind::Compact(2)),
        )
        .unwrap();
        // The ideal design proves at least as many stores WAR-free.
        assert!(ideal.outcome.stats.clq.war_free >= compact.outcome.stats.clq.war_free);
    }

    #[test]
    fn run_metrics_span_compile_and_sim() {
        use turnpike_metrics::Counter;
        let p = kernel("bwaves");
        let r = run_kernel(&p, &RunSpec::new(Scheme::Turnpike)).unwrap();
        // Both layers' keys are present in the one registry...
        assert_eq!(r.metrics.counter(Counter::Cycles), r.outcome.stats.cycles);
        assert_eq!(
            r.metrics.counter(Counter::CkptsInserted),
            u64::from(r.compile_stats.ckpts_inserted)
        );
        assert!(r.metrics.counter(Counter::CkptsInserted) > 0);
        // ...and the typed views agree with the registry.
        assert_eq!(r.metrics.ipc(), r.outcome.stats.ipc());
        assert_eq!(
            r.metrics.code_size_increase(),
            r.compile_stats.code_size_increase()
        );
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn spec_builders_chain() {
        let s = RunSpec::new(Scheme::Turnstile)
            .with_wcdl(50)
            .with_sb(8)
            .with_clq(ClqKind::Ideal);
        assert_eq!(s.wcdl, 50);
        assert_eq!(s.sb_size, 8);
        assert_eq!(s.clq_override, Some(ClqKind::Ideal));
    }

    #[test]
    fn colors_and_geom_overrides_reach_the_sim_config() {
        use crate::preset::cache_geom;
        let slim = cache_geom("slim").unwrap();
        let s = RunSpec::new(Scheme::Turnpike)
            .with_colors(8)
            .with_geom(slim);
        let sc = s.sim_config();
        assert_eq!(sc.colors, 8);
        assert_eq!(sc.l1_bytes, slim.l1_bytes);
        assert_eq!(sc.l1_ways, slim.l1_ways);
        assert_eq!(sc.l2_bytes, slim.l2_bytes);
        assert_eq!(sc.l2_ways, slim.l2_ways);
        // The default spec leaves both knobs at the scheme's values.
        let default = RunSpec::new(Scheme::Turnpike).sim_config();
        assert_eq!(default.colors, 4);
        assert_eq!(default.l1_bytes, 64 * 1024);
    }
}
