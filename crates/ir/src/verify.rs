//! Structural well-formedness checks for IR functions.

use crate::block::{BlockId, Terminator};
use crate::function::Function;
use crate::reg::Reg;
use std::error::Error;
use std::fmt;

/// A structural defect found by [`verify_function`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A block was created but never given a terminator.
    UnterminatedBlock(BlockId),
    /// A terminator targets a block index that does not exist.
    BadBranchTarget {
        /// Block containing the bad terminator.
        from: BlockId,
        /// The out-of-range target.
        target: BlockId,
    },
    /// An instruction references a register `>= num_regs`.
    RegOutOfRange {
        /// Block containing the instruction.
        block: BlockId,
        /// The offending register.
        reg: Reg,
    },
    /// The entry block index is out of range.
    BadEntry(BlockId),
    /// A parameter register is out of range.
    BadParam(Reg),
    /// The function has no blocks at all.
    NoBlocks,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnterminatedBlock(b) => write!(f, "block {b} has no terminator"),
            VerifyError::BadBranchTarget { from, target } => {
                write!(f, "terminator of {from} targets nonexistent {target}")
            }
            VerifyError::RegOutOfRange { block, reg } => {
                write!(f, "register {reg} in {block} is out of range")
            }
            VerifyError::BadEntry(b) => write!(f, "entry block {b} does not exist"),
            VerifyError::BadParam(r) => write!(f, "parameter register {r} is out of range"),
            VerifyError::NoBlocks => write!(f, "function has no blocks"),
        }
    }
}

impl Error for VerifyError {}

/// Check structural invariants of a function.
///
/// # Errors
///
/// Returns the first defect found; see [`VerifyError`] for the catalogue.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    if f.blocks.is_empty() {
        return Err(VerifyError::NoBlocks);
    }
    if f.entry.index() >= f.blocks.len() {
        return Err(VerifyError::BadEntry(f.entry));
    }
    for &p in &f.params {
        if p.0 >= f.num_regs {
            return Err(VerifyError::BadParam(p));
        }
    }
    let check_reg = |block: BlockId, reg: Reg| -> Result<(), VerifyError> {
        if reg.0 >= f.num_regs {
            Err(VerifyError::RegOutOfRange { block, reg })
        } else {
            Ok(())
        }
    };
    for (id, b) in f.iter_blocks() {
        for inst in &b.insts {
            if let Some(d) = inst.def() {
                check_reg(id, d)?;
            }
            for u in inst.uses() {
                check_reg(id, u)?;
            }
        }
        for u in b.term.uses() {
            check_reg(id, u)?;
        }
        let targets: Vec<BlockId> = match b.term {
            Terminator::Jump(t) => vec![t],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![then_bb, else_bb],
            Terminator::Ret { .. } => vec![],
        };
        for t in targets {
            if t.index() >= f.blocks.len() {
                return Err(VerifyError::BadBranchTarget {
                    from: id,
                    target: t,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BasicBlock;
    use crate::inst::Inst;
    use crate::reg::Operand;

    #[test]
    fn empty_function_verifies() {
        assert_eq!(verify_function(&Function::empty("ok")), Ok(()));
    }

    #[test]
    fn method_hook_matches_free_function() {
        let mut f = Function::empty("hook");
        assert_eq!(f.verify(), Ok(()));
        f.blocks[0].term = Terminator::Jump(BlockId(7));
        assert_eq!(f.verify(), verify_function(&f));
        assert!(f.verify().is_err());
    }

    #[test]
    fn detects_bad_branch_target() {
        let mut f = Function::empty("b");
        f.blocks[0].term = Terminator::Jump(BlockId(9));
        let err = verify_function(&f).unwrap_err();
        assert_eq!(
            err,
            VerifyError::BadBranchTarget {
                from: BlockId(0),
                target: BlockId(9)
            }
        );
        assert!(err.to_string().contains("bb9"));
    }

    #[test]
    fn detects_reg_out_of_range() {
        let mut f = Function::empty("r");
        f.num_regs = 1;
        f.blocks[0].insts.push(Inst::Mov {
            dst: Reg(5),
            src: Operand::Imm(0),
        });
        let err = verify_function(&f).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::RegOutOfRange { reg: Reg(5), .. }
        ));
    }

    #[test]
    fn detects_bad_entry_and_params() {
        let mut f = Function::empty("e");
        f.entry = BlockId(3);
        assert_eq!(verify_function(&f), Err(VerifyError::BadEntry(BlockId(3))));
        let mut g = Function::empty("p");
        g.params = vec![Reg(0)];
        assert_eq!(verify_function(&g), Err(VerifyError::BadParam(Reg(0))));
    }

    #[test]
    fn detects_no_blocks() {
        let f = Function {
            name: "n".into(),
            blocks: vec![],
            entry: BlockId(0),
            num_regs: 0,
            params: vec![],
        };
        assert_eq!(verify_function(&f), Err(VerifyError::NoBlocks));
    }

    #[test]
    fn terminator_reg_checked() {
        let mut f = Function::empty("t");
        f.blocks = vec![BasicBlock::new(Terminator::Ret {
            value: Some(Operand::Reg(Reg(2))),
        })];
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::RegOutOfRange { reg: Reg(2), .. })
        ));
    }
}
