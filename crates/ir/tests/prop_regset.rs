//! Model-based property tests: `RegSet` must behave exactly like a
//! `BTreeSet<u32>` under any operation sequence.

use proptest::prelude::*;
use std::collections::BTreeSet;
use turnpike_ir::{Reg, RegSet};

#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    Remove(u32),
    Clear,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..160).prop_map(Op::Insert),
        (0u32..160).prop_map(Op::Remove),
        Just(Op::Clear),
    ]
}

proptest! {
    #[test]
    fn regset_matches_btreeset(ops in prop::collection::vec(op(), 0..120)) {
        let mut sut = RegSet::new(160);
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for o in ops {
            match o {
                Op::Insert(r) => {
                    let a = sut.insert(Reg(r));
                    let b = model.insert(r);
                    prop_assert_eq!(a, b);
                }
                Op::Remove(r) => {
                    let a = sut.remove(Reg(r));
                    let b = model.remove(&r);
                    prop_assert_eq!(a, b);
                }
                Op::Clear => {
                    sut.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(sut.len(), model.len());
            prop_assert_eq!(sut.is_empty(), model.is_empty());
            let got: Vec<u32> = sut.iter().map(|r| r.0).collect();
            let want: Vec<u32> = model.iter().copied().collect();
            prop_assert_eq!(got, want, "iteration order must be sorted and complete");
        }
    }

    #[test]
    fn union_subtract_intersect_match_model(
        a in prop::collection::btree_set(0u32..120, 0..40),
        b in prop::collection::btree_set(0u32..120, 0..40),
    ) {
        let mk = |s: &BTreeSet<u32>| {
            let mut r = RegSet::new(128);
            for &x in s {
                r.insert(Reg(x));
            }
            r
        };
        let (ra, rb) = (mk(&a), mk(&b));

        let mut u = ra.clone();
        u.union_with(&rb);
        let mu: BTreeSet<u32> = a.union(&b).copied().collect();
        prop_assert_eq!(u.iter().map(|r| r.0).collect::<BTreeSet<_>>(), mu);

        let mut d = ra.clone();
        d.subtract(&rb);
        let md: BTreeSet<u32> = a.difference(&b).copied().collect();
        prop_assert_eq!(d.iter().map(|r| r.0).collect::<BTreeSet<_>>(), md);

        let mut i = ra.clone();
        i.intersect_with(&rb);
        let mi: BTreeSet<u32> = a.intersection(&b).copied().collect();
        prop_assert_eq!(i.iter().map(|r| r.0).collect::<BTreeSet<_>>(), mi);
    }

    /// union_with returns whether anything changed, and unioning twice is
    /// idempotent.
    #[test]
    fn union_change_reporting(
        a in prop::collection::btree_set(0u32..64, 0..20),
        b in prop::collection::btree_set(0u32..64, 0..20),
    ) {
        let mut ra = RegSet::new(64);
        for &x in &a {
            ra.insert(Reg(x));
        }
        let mut rb = RegSet::new(64);
        for &x in &b {
            rb.insert(Reg(x));
        }
        let changed = ra.union_with(&rb);
        prop_assert_eq!(changed, !b.is_subset(&a));
        prop_assert!(!ra.union_with(&rb), "second union is a fixed point");
    }
}
