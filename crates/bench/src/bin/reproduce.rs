//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce <target> [--smoke] [--json] [--threads N] [--no-cache]
//!
//! targets: fig4 fig14 fig15 fig18 fig19 fig20 fig21 fig22 fig23
//!          fig24 fig25 fig26 table1 ablation clq colors summary all
//! ```
//!
//! `--smoke` runs the reduced-size kernels (fast; used by CI); the default
//! is full evaluation scale. `--json` prints machine-readable output.
//! `--threads N` caps the evaluation engine's worker threads (default: all
//! hardware threads); stdout is byte-identical at any thread count.
//! `--no-cache` disables the engine's compile/run memoization (the seed
//! harness's behavior, kept for perf comparisons).
//!
//! Every invocation also writes `BENCH_reproduce.json` to the current
//! directory — target, scale, threads, cache flag, and total plus
//! per-figure wall-clock milliseconds — so harness performance is tracked
//! over time. Timing goes there and to stderr, never to stdout.

use std::process::ExitCode;
use std::time::Instant;
use turnpike_bench::{
    ablation, clq_designs, colors, fig14, fig15, fig18, fig19, fig20, fig21, fig22, fig23, fig24,
    fig25, fig26, fig4, json_string, summary, table1, Engine, Table,
};
use turnpike_resilience::par_map;
use turnpike_workloads::Scale;

/// Everything `all` expands to, in output order.
const ALL_TARGETS: [&str; 17] = [
    "ablation", "fig4", "fig14", "fig15", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
    "fig24", "fig25", "fig26", "table1", "colors", "clq", "summary",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: reproduce <target> [--smoke] [--json] [--threads N] [--no-cache]\n\
         targets: fig4 fig14 fig15 fig18 fig19 fig20 fig21 fig22 fig23 \
         fig24 fig25 fig26 table1 ablation clq colors summary all"
    );
    ExitCode::from(2)
}

fn generate_one(target: &str, scale: Scale, engine: &Engine) -> Option<Table> {
    Some(match target {
        "fig4" => fig4(engine, scale),
        "fig14" => fig14(engine, scale),
        "fig15" => fig15(engine, scale),
        "fig18" => fig18(),
        "fig19" => fig19(engine, scale),
        "fig20" => fig20(engine, scale),
        "fig21" => fig21(engine, scale),
        "fig22" => fig22(engine, scale),
        "fig23" => fig23(engine, scale),
        "fig24" => fig24(engine, scale),
        "fig25" => fig25(engine, scale),
        "fig26" => fig26(engine, scale),
        "table1" => table1(),
        "ablation" => ablation(engine, scale),
        "colors" => colors(engine, scale),
        "clq" => clq_designs(engine, scale),
        "summary" => summary(engine, scale),
        _ => return None,
    })
}

/// Generate the requested tables with per-figure wall-clock. For `all`,
/// figures run concurrently (each with a slice of the thread budget) while
/// compiles and baseline runs dedup through the shared caches; results are
/// gathered in `ALL_TARGETS` order so output is deterministic.
fn generate(target: &str, scale: Scale, engine: &Engine) -> Option<Vec<(Table, u128)>> {
    if target != "all" {
        let t0 = Instant::now();
        let t = generate_one(target, scale, engine)?;
        return Some(vec![(t, t0.elapsed().as_millis())]);
    }
    let outer = engine.threads().min(ALL_TARGETS.len());
    let inner = (engine.threads() / outer.max(1)).max(1);
    let per_figure = engine.with_threads(inner);
    Some(par_map(&ALL_TARGETS, outer, |_, name| {
        let t0 = Instant::now();
        let t = generate_one(name, scale, &per_figure).expect("all targets are known");
        (t, t0.elapsed().as_millis())
    }))
}

/// Machine-readable perf record (hand-rolled JSON; see `table.rs`).
fn bench_json(
    target: &str,
    scale: Scale,
    threads: usize,
    cache: bool,
    wall_ms: u128,
    figures: &[(Table, u128)],
) -> String {
    let scale_name = match scale {
        Scale::Smoke => "smoke",
        Scale::Full => "full",
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"target\": {},\n", json_string(target)));
    out.push_str(&format!("  \"scale\": {},\n", json_string(scale_name)));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"cache\": {cache},\n"));
    out.push_str(&format!("  \"wall_ms\": {wall_ms},\n"));
    out.push_str("  \"figures\": [");
    for (i, (t, ms)) in figures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"id\": {}, \"wall_ms\": {ms}}}",
            json_string(&t.id)
        ));
    }
    if !figures.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target: Option<String> = None;
    let mut scale = Scale::Full;
    let mut json = false;
    let mut cache = true;
    let mut threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--json" => json = true,
            "--no-cache" => cache = false,
            "--threads" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage();
                };
                if n == 0 {
                    return usage();
                }
                threads = n;
            }
            t if target.is_none() && !t.starts_with('-') => target = Some(t.to_string()),
            _ => return usage(),
        }
    }
    let Some(target) = target else {
        return usage();
    };
    let mut engine = Engine::new(threads);
    if !cache {
        engine = engine.without_cache();
    }
    let t0 = Instant::now();
    let Some(tables) = generate(&target, scale, &engine) else {
        return usage();
    };
    let wall_ms = t0.elapsed().as_millis();
    for (t, _) in &tables {
        if json {
            println!("{}", t.to_json());
        } else {
            println!("{t}");
        }
    }
    for (t, ms) in &tables {
        eprintln!("# {}: {ms} ms", t.id);
    }
    eprintln!(
        "# total: {wall_ms} ms ({} threads, cache {}, {} compiles, {} sims)",
        threads,
        if cache { "on" } else { "off" },
        engine.compile_count(),
        engine.sim_count()
    );
    let record = bench_json(&target, scale, threads, cache, wall_ms, &tables);
    if let Err(e) = std::fs::write("BENCH_reproduce.json", record) {
        eprintln!("# warning: could not write BENCH_reproduce.json: {e}");
    }
    ExitCode::SUCCESS
}
