//! The gated store buffer (GSB).
//!
//! In a resilient configuration every store is held here after commit —
//! *quarantined* — until its region is verified to be error-free (region end
//! plus WCDL with no detection). Verified entries then drain to the cache at
//! one per cycle. On an error, unverified entries are discarded wholesale.
//!
//! Two entry kinds exist:
//!
//! * **Data** — a regular store; released to data memory.
//! * **CkptFallback** — a checkpoint store that could not take the coloring
//!   fast path (or coloring is disabled, i.e. Turnstile); released to the
//!   register's *verified* checkpoint slot, because by release time its
//!   region is verified and this value becomes the new verified checkpoint.
//!
//! Same-address stores from the same region coalesce into one entry (real
//! store buffers write-combine); this also bounds the entries a long dynamic
//! region with in-loop checkpoints can occupy.

use std::collections::VecDeque;

/// Kind and destination of a buffered store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// Regular data store to an architectural address.
    Data {
        /// Destination byte address.
        addr: u64,
    },
    /// Quarantined checkpoint of a register (slot resolved at release).
    CkptFallback {
        /// The checkpointed register.
        reg: u8,
    },
}

/// One store buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbEntry {
    /// What is stored and where it goes on release.
    pub kind: EntryKind,
    /// The stored value.
    pub value: i64,
    /// Dynamic region instance the store belongs to.
    pub region_seq: u64,
    /// Cycle the entry was allocated (quarantine start, for residency
    /// accounting). Coalescing keeps the original allocation time.
    pub issued_at: u64,
    /// Cycle at which the entry leaves the SB, once its region is verified.
    pub release_at: Option<u64>,
}

/// The gated store buffer.
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    entries: VecDeque<SbEntry>,
    capacity: usize,
    last_release: u64,
    /// Peak occupancy observed.
    pub peak: usize,
    /// Total entries ever allocated (coalesced stores count once).
    pub allocated: u64,
    /// Stores that coalesced into an existing entry.
    pub coalesced: u64,
    /// Entries discarded by error recovery.
    pub discarded: u64,
}

impl StoreBuffer {
    /// An empty buffer with `capacity` entries.
    pub fn new(capacity: u32) -> Self {
        StoreBuffer {
            entries: VecDeque::new(),
            capacity: capacity as usize,
            last_release: 0,
            peak: 0,
            allocated: 0,
            coalesced: 0,
            discarded: 0,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a push (without coalescing) would need a free slot that does
    /// not exist.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Would `kind` from `region_seq` coalesce into an existing entry?
    ///
    /// Only the *youngest* entry of the same kind is a coalescing candidate:
    /// merging into an older one while a newer same-address entry exists
    /// would reorder the release stream and break store-to-load forwarding.
    pub fn can_coalesce(&self, kind: EntryKind, region_seq: u64) -> bool {
        self.entries
            .iter()
            .rev()
            .find(|e| e.kind == kind)
            .is_some_and(|e| e.region_seq == region_seq && e.release_at.is_none())
    }

    /// Insert or coalesce a store. Caller must have ensured capacity via
    /// [`is_full`](Self::is_full)/[`can_coalesce`](Self::can_coalesce).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full and the store cannot coalesce.
    pub fn push(&mut self, kind: EntryKind, value: i64, region_seq: u64, now: u64) {
        if let Some(e) = self.entries.iter_mut().rev().find(|e| e.kind == kind) {
            if e.region_seq == region_seq && e.release_at.is_none() {
                e.value = value;
                self.coalesced += 1;
                return;
            }
        }
        assert!(
            self.entries.len() < self.capacity,
            "store buffer overflow: caller must stall"
        );
        self.entries.push_back(SbEntry {
            kind,
            value,
            region_seq,
            issued_at: now,
            release_at: None,
        });
        self.allocated += 1;
        self.peak = self.peak.max(self.entries.len());
    }

    /// Whether any entry (gated or scheduled) targets this data address.
    /// A fast release past such an entry would reorder the store stream:
    /// the older value would drain over the newer one.
    pub fn has_pending_data(&self, addr: u64) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e.kind, EntryKind::Data { addr: a } if a == addr))
    }

    /// Youngest pending value for a data address (store-to-load forwarding).
    pub fn forward(&self, addr: u64) -> Option<i64> {
        self.entries
            .iter()
            .rev()
            .find(|e| matches!(e.kind, EntryKind::Data { addr: a } if a == addr))
            .map(|e| e.value)
    }

    /// Mark all entries of `region_seq` releasable starting at `verify_time`
    /// (drain rate: one entry per cycle, FIFO across regions).
    pub fn mark_verified(&mut self, region_seq: u64, verify_time: u64) {
        let mut t = self.last_release.max(verify_time);
        for e in self.entries.iter_mut() {
            if e.region_seq == region_seq && e.release_at.is_none() {
                t = t.max(verify_time).max(self.last_release + 1);
                e.release_at = Some(t);
                self.last_release = t;
                t += 1;
            }
        }
    }

    /// Pop every entry whose release time has arrived, in FIFO order.
    /// Returns the released entries.
    pub fn drain_until(&mut self, now: u64) -> Vec<SbEntry> {
        let mut out = Vec::new();
        while let Some(e) = self.drain_next(now) {
            out.push(e);
        }
        out
    }

    /// Pop the oldest entry whose release time has arrived, if any — the
    /// allocation-free form of [`StoreBuffer::drain_until`] for the
    /// simulator's per-instruction settle loop.
    pub fn drain_next(&mut self, now: u64) -> Option<SbEntry> {
        match self.entries.front()?.release_at {
            Some(t) if t <= now => self.entries.pop_front(),
            _ => None,
        }
    }

    /// Earliest cycle at which a slot will free up, given current release
    /// schedules. `None` if no entry is scheduled (caller must first verify
    /// a region).
    pub fn earliest_release(&self) -> Option<u64> {
        self.entries.front().and_then(|e| e.release_at)
    }

    /// Discard all unverified entries (error recovery). Entries already
    /// scheduled for release (their regions verified before the detection)
    /// stay. Returns the number discarded.
    pub fn discard_unverified(&mut self) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.release_at.is_some());
        let n = before - self.entries.len();
        self.discarded += n as u64;
        n
    }

    /// Replay equivalence against a golden-run buffer whose timeline trails
    /// this one by `dc` cycles and `ds` region sequence numbers: every
    /// future operation behaves identically on both buffers (with strike
    /// times/seqs shifted by `dc`/`ds`) iff this returns `true`.
    ///
    /// Entries must match exactly under the shift — values and kinds equal,
    /// `region_seq + ds`, `issued_at + dc` (residency histogram samples
    /// depend on it), `release_at + dc`. `last_release` may instead be
    /// *stale* on both sides (no scheduled entry, `<= now`, and agreeing on
    /// whether it equals `now`): future schedules read it only through
    /// `max(verify_time, last_release + 1)`, and every future `verify_time`
    /// is `>= now`, so a stale value only matters through that tie.
    pub(crate) fn replay_equivalent(
        &self,
        golden: &StoreBuffer,
        dc: u64,
        ds: u64,
        self_now: u64,
        golden_now: u64,
    ) -> bool {
        if self.entries.len() != golden.entries.len() {
            return false;
        }
        let mut scheduled = false;
        for (a, b) in self.entries.iter().zip(golden.entries.iter()) {
            if a.kind != b.kind
                || a.value != b.value
                || a.region_seq != b.region_seq.wrapping_add(ds)
                || a.issued_at != b.issued_at + dc
                || a.release_at != b.release_at.map(|t| t + dc)
            {
                return false;
            }
            scheduled |= a.release_at.is_some();
        }
        if self.last_release == golden.last_release + dc {
            return true;
        }
        !scheduled
            && self.last_release <= self_now
            && golden.last_release <= golden_now
            && (self.last_release == self_now) == (golden.last_release == golden_now)
    }

    /// Force-release everything that is scheduled, ignoring time (end of
    /// simulation drain). Returns released entries and the cycle the last
    /// one left.
    pub fn drain_all_scheduled(&mut self) -> (Vec<SbEntry>, u64) {
        let mut out = Vec::new();
        let mut last = self.last_release;
        while let Some(front) = self.entries.front() {
            if front.release_at.is_some() {
                let e = self.entries.pop_front().expect("front");
                last = last.max(e.release_at.expect("scheduled"));
                out.push(e);
            } else {
                break;
            }
        }
        (out, last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(addr: u64) -> EntryKind {
        EntryKind::Data { addr }
    }

    #[test]
    fn push_and_forward() {
        let mut sb = StoreBuffer::new(4);
        sb.push(data(0x100), 1, 0, 0);
        sb.push(data(0x108), 2, 0, 0);
        sb.push(data(0x100), 3, 1, 0); // same addr, different region: new entry
        assert_eq!(sb.len(), 3);
        assert_eq!(sb.forward(0x100), Some(3)); // youngest wins
        assert_eq!(sb.forward(0x108), Some(2));
        assert_eq!(sb.forward(0x999), None);
    }

    #[test]
    fn same_region_same_addr_coalesces() {
        let mut sb = StoreBuffer::new(2);
        sb.push(data(0x100), 1, 0, 0);
        assert!(sb.can_coalesce(data(0x100), 0));
        assert!(!sb.can_coalesce(data(0x100), 1));
        sb.push(data(0x100), 7, 0, 0);
        assert_eq!(sb.len(), 1);
        assert_eq!(sb.coalesced, 1);
        assert_eq!(sb.forward(0x100), Some(7));
    }

    #[test]
    fn ckpt_fallback_coalesces_per_reg() {
        let mut sb = StoreBuffer::new(2);
        let k = EntryKind::CkptFallback { reg: 5 };
        sb.push(k, 1, 0, 0);
        sb.push(k, 2, 0, 0);
        assert_eq!(sb.len(), 1);
        sb.push(k, 3, 1, 0);
        assert_eq!(sb.len(), 2);
    }

    #[test]
    #[should_panic(expected = "store buffer overflow")]
    fn overflow_panics() {
        let mut sb = StoreBuffer::new(1);
        sb.push(data(0x100), 1, 0, 0);
        sb.push(data(0x108), 2, 0, 0);
    }

    #[test]
    fn verification_schedules_fifo_drain() {
        let mut sb = StoreBuffer::new(4);
        sb.push(data(0x100), 1, 0, 0);
        sb.push(data(0x108), 2, 0, 0);
        sb.push(data(0x110), 3, 1, 0);
        sb.mark_verified(0, 50);
        assert_eq!(sb.earliest_release(), Some(50));
        // Region 1 verifies later; drains after region 0's entries.
        sb.mark_verified(1, 51);
        let out = sb.drain_until(50);
        assert_eq!(out.len(), 1);
        let out = sb.drain_until(52);
        assert_eq!(out.len(), 2);
        assert!(sb.is_empty());
    }

    #[test]
    fn discard_keeps_verified() {
        let mut sb = StoreBuffer::new(4);
        sb.push(data(0x100), 1, 0, 0);
        sb.push(data(0x108), 2, 1, 0);
        sb.mark_verified(0, 10);
        assert_eq!(sb.discard_unverified(), 1);
        assert_eq!(sb.len(), 1);
        assert_eq!(sb.discarded, 1);
        let (rest, last) = sb.drain_all_scheduled();
        assert_eq!(rest.len(), 1);
        assert_eq!(last, 10);
    }

    #[test]
    fn peak_tracks_occupancy() {
        let mut sb = StoreBuffer::new(4);
        sb.push(data(0x100), 1, 0, 0);
        sb.push(data(0x108), 2, 0, 0);
        sb.mark_verified(0, 5);
        sb.drain_until(10);
        assert_eq!(sb.peak, 2);
        assert!(sb.is_empty());
        assert!(!sb.is_full());
    }
}
