//! Criterion micro-benchmarks: the paged sparse flat store against the
//! `BTreeMap<u64, i64>` it replaced as the core's functional memory.
//!
//! The access pattern mirrors what the simulator actually does per
//! instruction: stores and loads clustered in a small data segment (a few
//! pages), a sprinkling of far checkpoint-slot traffic, and periodic
//! whole-memory checkpoints (`clone`) — O(pages) Arc bumps for `PagedMem`
//! versus a deep tree copy for the map.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use turnpike_sim::PagedMem;

/// Deterministic (addr, value) workload: mostly sequential data-segment
/// words with a strided revisit pattern, plus occasional far addresses.
fn workload(n: usize) -> Vec<(u64, i64)> {
    let mut out = Vec::with_capacity(n);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let addr = if i % 31 == 0 {
            0x8000_0000 + (x % 64) * 8 // checkpoint-slot page, far away
        } else {
            0x1000 + (x % 4096) * 8 // ~64 KiB data segment
        };
        out.push((addr, x as i64));
    }
    out
}

fn bench_store_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem_store_load");
    group.sample_size(20);
    let ops = workload(50_000);
    group.bench_with_input(BenchmarkId::new("paged", "50k"), &ops, |b, ops| {
        b.iter(|| {
            let mut m = PagedMem::new();
            let mut acc = 0i64;
            for &(a, v) in ops {
                m.insert(a, v);
                acc ^= m.get(a ^ 8).unwrap_or(0);
            }
            acc
        });
    });
    group.bench_with_input(BenchmarkId::new("btree", "50k"), &ops, |b, ops| {
        b.iter(|| {
            let mut m: BTreeMap<u64, i64> = BTreeMap::new();
            let mut acc = 0i64;
            for &(a, v) in ops {
                m.insert(a, v);
                acc ^= m.get(&(a ^ 8)).copied().unwrap_or(0);
            }
            acc
        });
    });
    group.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem_checkpoint");
    group.sample_size(20);
    let ops = workload(50_000);
    // Populate once, then measure snapshot (clone) plus a short burst of
    // post-snapshot writes — the COW path the fork API leans on.
    let paged: PagedMem = ops.iter().copied().collect();
    let btree: BTreeMap<u64, i64> = ops.iter().copied().collect();
    group.bench_with_input(BenchmarkId::new("paged", "clone+64w"), &paged, |b, m| {
        b.iter(|| {
            let snap = m.clone();
            let mut live = m.clone();
            for i in 0..64u64 {
                live.insert(0x1000 + i * 8, i as i64);
            }
            (snap.len(), live.get(0x1000))
        });
    });
    group.bench_with_input(BenchmarkId::new("btree", "clone+64w"), &btree, |b, m| {
        b.iter(|| {
            let snap = m.clone();
            let mut live = m.clone();
            for i in 0..64u64 {
                live.insert(0x1000 + i * 8, i as i64);
            }
            (snap.len(), live.get(&0x1000).copied())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_store_load, bench_checkpoint);
criterion_main!(benches);
