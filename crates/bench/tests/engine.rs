//! Evaluation-engine contract tests: thread-count determinism and the
//! memoization accounting the ISSUE's acceptance criteria pin down.

use turnpike_bench::{fig19, summary, Engine};
use turnpike_workloads::{all_kernels, Scale};

/// Byte-identical JSON at `--threads 1` vs `--threads 8`: the parallel
/// executor must gather results in kernel order regardless of scheduling.
#[test]
fn fig19_json_is_byte_identical_across_thread_counts() {
    let serial = fig19(&Engine::new(1), Scale::Smoke).to_json();
    let parallel = fig19(&Engine::new(8), Scale::Smoke).to_json();
    assert_eq!(serial, parallel);
}

/// Compile count equals kernels × distinct compiler configs — NOT
/// kernels × run calls. fig19 touches two configs per kernel (baseline and
/// Turnpike; the five WCDL points differ only in SimConfig) and six sim
/// points per kernel (one baseline + five WCDLs).
#[test]
fn compile_count_is_kernels_times_distinct_configs() {
    let n = all_kernels(Scale::Smoke).len();
    let e = Engine::new(1);
    fig19(&e, Scale::Smoke);
    assert_eq!(e.compile_count(), 2 * n, "baseline + turnpike per kernel");
    assert_eq!(e.sim_count(), 6 * n, "baseline + 5 WCDL points per kernel");

    // A repeated figure is fully served from the cache.
    fig19(&e, Scale::Smoke);
    assert_eq!(e.compile_count(), 2 * n);
    assert_eq!(e.sim_count(), 6 * n);

    // A figure over the same grid subset adds sims only for new points:
    // summary reuses the baseline and the WCDL 10/30/50 Turnpike points,
    // adding only Turnstile (1 compile + 3 sims per kernel).
    summary(&e, Scale::Smoke);
    assert_eq!(e.compile_count(), 3 * n, "only turnstile compiles are new");
    assert_eq!(e.sim_count(), 9 * n, "3 new turnstile sims per kernel");
}

/// The cache, not just the thread pool, must be deterministic: cached and
/// uncached evaluation agree exactly.
#[test]
fn cached_and_uncached_results_agree() {
    let cached = fig19(&Engine::new(1), Scale::Smoke).to_json();
    let uncached = fig19(&Engine::new(1).without_cache(), Scale::Smoke).to_json();
    assert_eq!(cached, uncached);
}
