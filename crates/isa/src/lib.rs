//! Machine ISA for the Turnpike reproduction.
//!
//! The compiler lowers IR to this flat, load/store RISC machine code, which
//! the cycle-level simulator in `turnpike-sim` executes. The ISA mirrors the
//! subset of an ARMv8-class in-order embedded core that the paper's
//! mechanisms interact with, plus the two resilience instructions:
//!
//! * [`MachInst::Ckpt`] — a checkpoint store saving a physical register to
//!   its checkpoint storage slot (the hardware picks the colored slot).
//! * [`MachInst::RegionBoundary`] — ends the current verifiable region and
//!   starts the next; the simulator allocates an RBB entry when it commits.
//!
//! A [`MachProgram`] carries, alongside the instruction stream, the
//! per-region recovery blocks the compiler generated (used by the recovery
//! controller after an error) and the static data image.
//!
//! # Example
//!
//! ```
//! use turnpike_isa::{MachInst, MachProgram, MOperand, PhysReg, interp};
//! use turnpike_ir::DataSegment;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let r0 = PhysReg::new(0)?;
//! let r1 = PhysReg::new(1)?;
//! let prog = MachProgram::from_insts(
//!     "double",
//!     vec![
//!         MachInst::Mov { dst: r0, src: MOperand::Imm(21) },
//!         MachInst::Bin {
//!             op: turnpike_ir::BinOp::Add,
//!             dst: r1,
//!             lhs: r0,
//!             rhs: MOperand::Reg(r0),
//!         },
//!         MachInst::Ret { value: Some(MOperand::Reg(r1)) },
//!     ],
//!     DataSegment::zeroed(0x1000, 0),
//! );
//! let out = interp::run(&prog, &interp::MachInterpConfig::default())?;
//! assert_eq!(out.ret, Some(42));
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod encode;
pub mod inst;
pub mod interp;
pub mod program;
pub mod reg;
pub mod regions;

pub use asm::{parse_asm, AsmError};
pub use encode::{decode_program, encode_program, EncodeError};
pub use inst::{MachAddr, MachInst};
pub use program::{MachProgram, ProtectionMode, RecoveryBlock, RegionId, ValidateError};
pub use reg::{MOperand, PhysReg, RegParseError, NUM_PHYS_REGS};
pub use regions::{region_summaries, RegionSummary};

// The machine shares arithmetic semantics with the IR.
pub use turnpike_ir::{BinOp, CmpOp};
