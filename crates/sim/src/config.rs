//! Simulator configuration.

/// Preset default for [`SimConfig::translate`]: on, unless the
/// `TURNPIKE_TRANSLATE=0` environment variable disables it (read once per
/// process — the CI byte-diff jobs use it to force the per-instruction
/// reference path without touching any call site).
fn translate_default() -> bool {
    static TRANSLATE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *TRANSLATE.get_or_init(|| std::env::var_os("TURNPIKE_TRANSLATE").is_none_or(|v| v != "0"))
}

/// Which committed-load-queue design the core uses (paper §4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClqKind {
    /// No CLQ: no WAR-free fast release (Turnstile hardware).
    Off,
    /// Ideal design: unbounded per-region address matching (the paper's
    /// 100%-accurate comparison point in Figures 14/15).
    Ideal,
    /// Compact design: `entries` per-region `[min, max]` address ranges with
    /// the selective-control overflow automaton of Figure 13.
    Compact(u32),
    /// Bounded content-addressed design: exact matching over `entries` load
    /// addresses (the costly alternative §4.3.1 argues against).
    Cam(u32),
}

/// Full microarchitectural configuration of the simulated core.
///
/// Defaults model the paper's target: an ARM Cortex-A53-class dual-issue
/// in-order core at 2.5 GHz with 64 KB L1D (2-way, 2-cycle), 128 KB L2
/// (16-way, 20-cycle), a 4-entry store buffer, and a 10-cycle worst-case
/// detection latency.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimConfig {
    /// Instructions issued per cycle (in order).
    pub issue_width: u32,
    /// Extra cycles after a taken conditional branch (fetch redirect).
    pub branch_penalty: u64,
    /// Extra cycles after an unconditional jump.
    pub jump_penalty: u64,
    /// L1 data cache hit latency in cycles.
    pub l1_hit: u64,
    /// L1D size in bytes.
    pub l1_bytes: u64,
    /// L1D associativity.
    pub l1_ways: u32,
    /// L2 hit latency in cycles (L1 miss, L2 hit total = l1 + l2).
    pub l2_hit: u64,
    /// L2 size in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Main memory latency in cycles beyond an L2 miss.
    pub mem_latency: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Store buffer entries.
    pub sb_size: u32,
    /// Region boundary buffer entries (outstanding unverified regions).
    /// Sized to cover a full WCDL window of short regions, as in Turnstile.
    pub rbb_size: u32,
    /// Worst-case sensor detection latency in cycles.
    pub wcdl: u64,
    /// Quarantine stores for region verification at all. `false` models the
    /// baseline core without resilience (stores release immediately).
    pub resilient: bool,
    /// Fast release of WAR-free regular stores (requires a CLQ).
    pub war_free: bool,
    /// Hardware coloring for checkpoint fast release.
    pub coloring: bool,
    /// Committed load queue design.
    pub clq: ClqKind,
    /// Colors per register in the coloring pool.
    pub colors: u8,
    /// Abort the simulation after this many cycles.
    pub cycle_limit: u64,
    /// Fixed pipeline-flush cost charged on each recovery, on top of the
    /// recovery block's own instructions.
    pub recovery_flush_cycles: u64,
    /// Record latency histograms (SB residency, verification latency,
    /// detection latency, recovery penalty) into the run's stats. Off by
    /// default: disabled runs skip every recording site behind one `None`
    /// check, and the timing model is identical either way.
    pub histograms: bool,
    /// Dispatch through pre-decoded superblocks
    /// ([`Translation`](crate::Translation)) whenever the core is in a
    /// quiet state (no pending faults/detections, no trace sink, no
    /// snapshot capture). Pure execution strategy: results, stats, and
    /// snapshots are bit-identical with it on or off — `false` forces the
    /// per-instruction interpreter everywhere (the reference path CI diffs
    /// against). Defaults to `true`; the `TURNPIKE_TRANSLATE=0`
    /// environment variable flips the preset default off process-wide.
    pub translate: bool,
    /// Snapshot cadence (cycles) for fault campaigns: the fault-free golden
    /// run captures a copy-on-write [`CoreSnapshot`](crate::CoreSnapshot)
    /// at this interval and every strike run forks from the latest snapshot
    /// before its strike instead of replaying the prefix. `None` runs every
    /// campaign simulation from cycle 0 (the from-scratch reference path).
    /// Ordinary (non-campaign) runs never capture snapshots, so this knob
    /// cannot affect any simulation outcome.
    pub snapshot_interval: Option<u64>,
}

impl SimConfig {
    /// The unprotected baseline core (normalization target of every figure).
    pub fn baseline() -> Self {
        SimConfig {
            issue_width: 2,
            branch_penalty: 2,
            jump_penalty: 1,
            l1_hit: 2,
            l1_bytes: 64 * 1024,
            l1_ways: 2,
            l2_hit: 20,
            l2_bytes: 128 * 1024,
            l2_ways: 16,
            mem_latency: 100,
            line_bytes: 64,
            sb_size: 4,
            rbb_size: 32,
            wcdl: 10,
            resilient: false,
            war_free: false,
            coloring: false,
            clq: ClqKind::Off,
            colors: 4,
            cycle_limit: 2_000_000_000,
            recovery_flush_cycles: 5,
            histograms: false,
            translate: translate_default(),
            snapshot_interval: Some(512),
        }
    }

    /// Turnstile hardware: gated SB + RBB, no Turnpike structures.
    pub fn turnstile(sb_size: u32, wcdl: u64) -> Self {
        SimConfig {
            sb_size,
            wcdl,
            resilient: true,
            ..SimConfig::baseline()
        }
    }

    /// Full Turnpike hardware: WAR-free fast release through a compact
    /// 2-entry CLQ plus 4-color checkpoint coloring.
    pub fn turnpike(sb_size: u32, wcdl: u64) -> Self {
        SimConfig {
            sb_size,
            wcdl,
            resilient: true,
            war_free: true,
            coloring: true,
            clq: ClqKind::Compact(2),
            ..SimConfig::baseline()
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::turnpike(4, 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let b = SimConfig::baseline();
        assert!(!b.resilient && !b.war_free && !b.coloring);
        assert_eq!(b.clq, ClqKind::Off);
        let t = SimConfig::turnstile(4, 30);
        assert!(t.resilient && !t.war_free);
        assert_eq!(t.wcdl, 30);
        let p = SimConfig::turnpike(4, 10);
        assert!(p.resilient && p.war_free && p.coloring);
        assert_eq!(p.clq, ClqKind::Compact(2));
        assert_eq!(SimConfig::default(), p);
    }

    #[test]
    fn geometry_matches_the_paper() {
        let c = SimConfig::baseline();
        assert_eq!(c.issue_width, 2);
        assert_eq!(c.l1_bytes, 64 * 1024);
        assert_eq!(c.l1_ways, 2);
        assert_eq!(c.l2_bytes, 128 * 1024);
        assert_eq!(c.l2_ways, 16);
        assert_eq!(c.l1_hit, 2);
        assert_eq!(c.l2_hit, 20);
        assert_eq!(c.sb_size, 4);
    }
}
