//! A thin std-only wrapper over `poll(2)`.
//!
//! The readiness loop in [`crate::server`] multiplexes one listener, a
//! wakeup socket, and every client connection on a single thread; all it
//! needs from the OS is "which of these sockets can make progress". That
//! is exactly `poll(2)`, and the libc symbol is already linked into every
//! Rust binary — so the wrapper is a `#[repr(C)]` struct and one
//! `extern "C"` declaration, no new dependency. Edge-triggered epoll/kqueue
//! would scale past tens of thousands of descriptors, but a coordinator
//! fleet is thousands at most, and `poll`'s level-triggered contract keeps
//! the loop's state machine trivial (no readiness can ever be "missed").
//!
//! On non-Unix hosts the wrapper degrades to a bounded sleep that reports
//! every registered socket ready: with all sockets nonblocking, spurious
//! readiness costs one `WouldBlock` syscall each — correct, just not
//! efficient. The repository's CI targets are all Unix.

use std::time::Duration;

/// One registered socket: which events the caller cares about, and (after
/// [`poll`]) which are ready.
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    #[cfg(unix)]
    fd: std::os::fd::RawFd,
    read: bool,
    write: bool,
    ready: Readiness,
}

/// What [`poll`] reported for one socket. `hangup`/`error` arrive whether
/// or not they were asked for (kernel contract); treat either as "read
/// until EOF, then close".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Readiness {
    /// A read will make progress (data, EOF, or a pending accept).
    pub readable: bool,
    /// A write will make progress.
    pub writable: bool,
    /// The peer closed its end.
    pub hangup: bool,
    /// The socket is in an error state.
    pub error: bool,
}

impl Readiness {
    /// Any condition the loop should act on.
    pub fn any(self) -> bool {
        self.readable || self.writable || self.hangup || self.error
    }
}

impl PollFd {
    /// Register `sock` with read and/or write interest.
    #[cfg(unix)]
    pub fn new<S: std::os::fd::AsRawFd>(sock: &S, read: bool, write: bool) -> PollFd {
        PollFd {
            fd: sock.as_raw_fd(),
            read,
            write,
            ready: Readiness::default(),
        }
    }

    /// Register `sock` with read and/or write interest.
    #[cfg(not(unix))]
    pub fn new<S>(_sock: &S, read: bool, write: bool) -> PollFd {
        PollFd {
            read,
            write,
            ready: Readiness::default(),
        }
    }

    /// The readiness the last [`poll`] call reported for this socket.
    pub fn readiness(&self) -> Readiness {
        self.ready
    }
}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_short};

    #[repr(C)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    // `nfds_t` is `c_ulong` on Linux and the BSDs' `u32` on macOS. The
    // lowercase name matches the C type it mirrors.
    #[cfg(target_os = "macos")]
    #[allow(non_camel_case_types)]
    pub type nfds_t = u32;
    #[cfg(not(target_os = "macos"))]
    #[allow(non_camel_case_types)]
    pub type nfds_t = std::os::raw::c_ulong;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    }
}

/// Block until at least one registered socket is ready or `timeout`
/// elapses (`None` = wait indefinitely). Returns the number of ready
/// sockets (0 on timeout); per-socket results land in each entry's
/// [`PollFd::readiness`]. `EINTR` retries transparently.
///
/// # Errors
///
/// Propagates `poll(2)` failures other than `EINTR`.
#[cfg(unix)]
pub fn poll(entries: &mut [PollFd], timeout: Option<Duration>) -> std::io::Result<usize> {
    let mut fds: Vec<sys::pollfd> = entries
        .iter()
        .map(|e| sys::pollfd {
            fd: e.fd,
            events: if e.read { sys::POLLIN } else { 0 } | if e.write { sys::POLLOUT } else { 0 },
            revents: 0,
        })
        .collect();
    // Round partial milliseconds *up*: rounding down would turn short
    // deadlines into a zero-timeout busy spin.
    let timeout_ms: std::os::raw::c_int = match timeout {
        None => -1,
        Some(d) => d.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32,
    };
    let n = loop {
        let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as sys::nfds_t, timeout_ms) };
        if rc >= 0 {
            break rc as usize;
        }
        let err = std::io::Error::last_os_error();
        if err.kind() != std::io::ErrorKind::Interrupted {
            return Err(err);
        }
    };
    for (e, f) in entries.iter_mut().zip(&fds) {
        e.ready = Readiness {
            readable: f.revents & sys::POLLIN != 0,
            writable: f.revents & sys::POLLOUT != 0,
            hangup: f.revents & sys::POLLHUP != 0,
            error: f.revents & sys::POLLERR != 0,
        };
    }
    Ok(n)
}

/// Non-Unix fallback: sleep briefly, then report every registered interest
/// as ready. Nonblocking sockets turn the spurious readiness into cheap
/// `WouldBlock`s, so the loop stays correct at the price of a bounded
/// polling cadence.
///
/// # Errors
///
/// Never fails on this fallback path.
#[cfg(not(unix))]
pub fn poll(entries: &mut [PollFd], timeout: Option<Duration>) -> std::io::Result<usize> {
    let nap = timeout
        .unwrap_or(Duration::from_millis(5))
        .min(Duration::from_millis(5));
    if !nap.is_zero() {
        std::thread::sleep(nap);
    }
    for e in entries.iter_mut() {
        e.ready = Readiness {
            readable: e.read,
            writable: e.write,
            hangup: false,
            error: false,
        };
    }
    Ok(entries.len())
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn quiet_socket_times_out_readable_socket_does_not() {
        let (a, mut b) = pair();
        let mut entries = [PollFd::new(&a, true, false)];
        assert_eq!(
            poll(&mut entries, Some(Duration::from_millis(10))).unwrap(),
            0
        );
        assert!(!entries[0].readiness().any());

        b.write_all(b"ping").unwrap();
        let n = poll(&mut entries, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(entries[0].readiness().readable);
        assert!(!entries[0].readiness().writable);
    }

    #[test]
    fn write_interest_and_hangup_are_reported() {
        let (a, b) = pair();
        // An idle socket with buffer space is immediately writable.
        let mut entries = [PollFd::new(&a, false, true)];
        assert_eq!(poll(&mut entries, Some(Duration::from_secs(5))).unwrap(), 1);
        assert!(entries[0].readiness().writable);

        // Peer closes: readable (EOF pending), possibly with hangup.
        drop(b);
        let mut entries = [PollFd::new(&a, true, false)];
        assert_eq!(poll(&mut entries, Some(Duration::from_secs(5))).unwrap(), 1);
        assert!(entries[0].readiness().readable || entries[0].readiness().hangup);
        let mut buf = [0u8; 8];
        let mut a = a;
        assert_eq!(a.read(&mut buf).unwrap(), 0, "EOF");
    }

    #[test]
    fn a_pending_accept_reads_as_listener_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut entries = [PollFd::new(&listener, true, false)];
        assert_eq!(
            poll(&mut entries, Some(Duration::from_millis(10))).unwrap(),
            0
        );
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        assert_eq!(poll(&mut entries, Some(Duration::from_secs(5))).unwrap(), 1);
        assert!(entries[0].readiness().readable);
        assert!(listener.accept().is_ok());
    }
}
