//! Early-exit strike replay must be observationally identical to running
//! every strike to completion.
//!
//! A strike run that reaches a quiet state matching a golden snapshot
//! (modulo a uniform time shift) is provably on the golden timeline for the
//! rest of its execution, so exiting with synthesized stats must reproduce
//! the full run's report, records, and metrics byte for byte — across the
//! Fig-21 scheme ladder and at every thread count. The only observable
//! difference is the [`ForkStats`] replay accounting.

use turnpike_resilience::{fault_campaign_forked, CampaignConfig, RunSpec, Scheme};
use turnpike_workloads::{kernel_by_name, Scale, Suite};

fn config(early_exit: bool) -> CampaignConfig {
    CampaignConfig {
        runs: 10,
        seed: 0x51AB,
        strikes_per_run: 1,
        early_exit,
        ..Default::default()
    }
}

#[test]
fn early_exit_campaign_is_byte_identical_across_ladder() {
    let program = kernel_by_name(Suite::Cpu2006, "bwaves", Scale::Smoke)
        .expect("bwaves is in the catalog")
        .program;
    let mut ladder_exits = 0;
    for scheme in Scheme::LADDER {
        let spec = RunSpec::new(scheme)
            .with_histograms()
            .with_snapshot_interval(Some(64));
        for threads in [1, 4] {
            let (on_report, on_records, on_stats) =
                fault_campaign_forked(&program, &spec, &config(true), threads).unwrap();
            let (off_report, off_records, off_stats) =
                fault_campaign_forked(&program, &spec, &config(false), threads).unwrap();
            assert_eq!(
                on_report, off_report,
                "{scheme} x{threads}: reports diverge"
            );
            assert_eq!(
                on_records, off_records,
                "{scheme} x{threads}: records diverge"
            );
            // The kill switch really kills the path...
            assert_eq!(off_stats.replay_exits, 0, "{scheme} x{threads}");
            assert_eq!(off_stats.replay_cycles_saved, 0, "{scheme} x{threads}");
            // ...and exits only ever ride along with saved cycles.
            assert_eq!(
                on_stats.replay_exits == 0,
                on_stats.replay_cycles_saved == 0,
                "{scheme} x{threads}: exits and savings disagree"
            );
            if threads == 1 {
                ladder_exits += on_stats.replay_exits;
            }
        }
    }
    // Not every scheme converges (an undetected baseline corruption keeps
    // its parity flag forever), but the resilient schemes recover onto the
    // golden path and must actually exercise the exit somewhere.
    assert!(ladder_exits > 0, "no strike run ever exited early");
}

#[test]
fn early_exit_equivalence_holds_with_multiple_strikes_per_run() {
    // Each recovery perturbs cache residency/LRU order a little more, so
    // heavily-struck runs on short kernels often never pass the structural
    // cache check and simply run to completion — mcf at two strikes is a
    // configuration where some runs provably realign.
    let program = kernel_by_name(Suite::Cpu2006, "mcf", Scale::Smoke)
        .expect("mcf is in the catalog")
        .program;
    let spec = RunSpec::new(Scheme::Turnpike)
        .with_histograms()
        .with_snapshot_interval(Some(64));
    let cfg = |early_exit| CampaignConfig {
        runs: 6,
        seed: 9,
        strikes_per_run: 2,
        early_exit,
        ..Default::default()
    };
    let (on_report, on_records, on_stats) =
        fault_campaign_forked(&program, &spec, &cfg(true), 2).unwrap();
    let (off_report, off_records, _) =
        fault_campaign_forked(&program, &spec, &cfg(false), 2).unwrap();
    assert_eq!(on_report, off_report);
    assert_eq!(on_records, off_records);
    assert!(
        on_stats.replay_exits > 0,
        "multi-strike runs should still reconverge after the last recovery"
    );
}

#[test]
fn early_exit_needs_snapshots() {
    // Without a snapshot interval there is no guide; the flag must be a
    // no-op rather than an error.
    let program = kernel_by_name(Suite::Cpu2006, "hmmer", Scale::Smoke)
        .expect("hmmer is in the catalog")
        .program;
    let spec = RunSpec::new(Scheme::Turnpike).with_snapshot_interval(None);
    let (report, _, stats) = fault_campaign_forked(
        &program,
        &spec,
        &CampaignConfig {
            runs: 4,
            seed: 3,
            strikes_per_run: 1,
            early_exit: true,
            ..Default::default()
        },
        2,
    )
    .unwrap();
    assert!(report.sdc_free());
    assert_eq!(stats.replay_exits, 0);
    assert_eq!(stats.hits, 0);
}
