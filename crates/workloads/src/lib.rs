//! Synthetic evaluation kernels for the Turnpike reproduction.
//!
//! The paper evaluates on 36 benchmarks from SPEC CPU2006, SPEC CPU2017,
//! and SPLASH3, which cannot be redistributed. This crate supplies 36
//! synthetic stand-ins, one per benchmark name, each built from a small set
//! of [`templates`] and parameterized to exercise the behavioral axis that
//! makes the original program interesting for *this* paper:
//!
//! * store density and store-buffer pressure (streaming/stencil kernels);
//! * write-after-read patterns that defeat WAR-free fast release
//!   (read-modify-write tables);
//! * extra loop induction variables from strength-reduced addressing
//!   (LIVM targets);
//! * boundary-free reduction loops whose per-iteration checkpoints LICM can
//!   sink out (leela/exchange2-style);
//! * load-use chains that stall eager checkpoints (pointer chasing, mcf);
//! * register pressure that makes spill-store placement matter
//!   (gemsfdtd/lbm-style).
//!
//! Absolute cycle counts are not comparable to the paper's gem5 runs; the
//! per-mechanism *shapes* (who wins, what scales with WCDL and SB size) are.

pub mod catalog;
pub mod generator;
pub mod templates;

pub use catalog::{all_kernels, kernel_by_name, Kernel, KernelId, Scale, Suite};
pub use generator::{generate, GeneratorConfig};
