//! Pass-by-pass snapshots: compile while recording the IR after every
//! pipeline stage. Powers debugging sessions and the `compiler_pipeline`
//! example; not used on the hot path.

use crate::checkpoint::{insert_checkpoints, strip_ckpts};
use crate::codegen::codegen;
use crate::config::{CompilerConfig, PassStats};
use crate::dce::dce;
use crate::legalize::legalize;
use crate::licm::licm_sink;
use crate::livm::livm;
use crate::partition::{ensure_ckpt_loops, partition, split_overfull};
use crate::pipeline::{CompileError, CompileOutput};
use crate::prune::{prune_checkpoints, PruneRecipes};
use crate::regalloc::regalloc;
use crate::sched::schedule;
use turnpike_ir::Program;

/// The IR text after one pipeline stage.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Stage name (`"legalize"`, `"regalloc"`, ...).
    pub stage: &'static str,
    /// Pretty-printed function after the stage.
    pub ir: String,
    /// Checkpoint count after the stage.
    pub ckpts: usize,
    /// Boundary count after the stage.
    pub boundaries: usize,
}

/// Compile like [`crate::compile`] but record a [`Snapshot`] after each
/// stage that ran.
///
/// # Errors
///
/// Same failure modes as [`crate::compile`].
pub fn compile_with_snapshots(
    program: &Program,
    config: &CompilerConfig,
) -> Result<(CompileOutput, Vec<Snapshot>), CompileError> {
    let mut stats = PassStats::default();
    let mut prog = program.clone();
    let mut snaps = Vec::new();
    let snap = |stage: &'static str, f: &turnpike_ir::Function| Snapshot {
        stage,
        ir: f.to_string(),
        ckpts: f.ckpt_count(),
        boundaries: f.boundary_count(),
    };

    legalize(&mut prog.func);
    snaps.push(snap("legalize", &prog.func));
    if config.livm {
        stats.ivs_merged = livm(&mut prog.func);
        dce(&mut prog.func);
        snaps.push(snap("livm+dce", &prog.func));
    }
    regalloc(&mut prog.func, config.store_aware_ra, &mut stats)?;
    snaps.push(snap("regalloc", &prog.func));

    {
        let base = codegen(&prog, &PruneRecipes::default())?;
        stats.baseline_insts = base.insts.len() as u32;
    }

    let mut recipes = PruneRecipes::default();
    if config.resilient {
        let budget = config.region_budget();
        partition(&mut prog.func, budget);
        snaps.push(snap("partition", &prog.func));
        for _ in 0..32 {
            strip_ckpts(&mut prog.func);
            stats.ckpts_inserted = insert_checkpoints(&mut prog.func);
            let loop_ckpt_cap = (config.sb_size - budget).max(1);
            let extra = split_overfull(&mut prog.func, budget)
                + ensure_ckpt_loops(&mut prog.func, loop_ckpt_cap);
            stats.split_iterations += 1;
            if extra == 0 {
                break;
            }
        }
        snaps.push(snap("checkpoint", &prog.func));
        if config.prune {
            recipes = prune_checkpoints(&mut prog.func);
            stats.ckpts_pruned = recipes.len() as u32;
            snaps.push(snap("prune", &prog.func));
        }
        if config.licm {
            let out = licm_sink(&mut prog.func, config.sb_size);
            stats.ckpts_licm_removed = out.removed;
            snaps.push(snap("licm", &prog.func));
        }
        if config.sched {
            schedule(&mut prog.func);
            snaps.push(snap("sched", &prog.func));
        }
        stats.boundaries = prog.func.boundary_count() as u32;
    }

    let machine = codegen(&prog, &recipes)?;
    stats.final_insts = machine.insts.len() as u32;
    Ok((
        CompileOutput {
            program: machine,
            stats,
        },
        snaps,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::{DataSegment, FunctionBuilder, Operand};

    fn sample() -> Program {
        let mut b = FunctionBuilder::new("snap");
        let x = b.fresh_reg();
        let c = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(x, 0i64);
        b.jump(body);
        b.switch_to(body);
        b.store_abs(x, 0x1000);
        b.add(x, x, 1i64);
        b.cmp_lt(c, x, 8i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(x)));
        Program::new(b.finish().unwrap(), DataSegment::zeroed(0x1000, 1))
    }

    #[test]
    fn snapshots_cover_enabled_stages() {
        let p = sample();
        let (_, snaps) =
            compile_with_snapshots(&p, &CompilerConfig::turnpike(4)).unwrap();
        let stages: Vec<&str> = snaps.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec![
                "legalize",
                "livm+dce",
                "regalloc",
                "partition",
                "checkpoint",
                "prune",
                "licm",
                "sched"
            ]
        );
        // Checkpoints appear at the checkpoint stage.
        let idx = stages.iter().position(|s| *s == "checkpoint").unwrap();
        assert!(snaps[idx].ckpts > 0);
        assert!(snaps[idx].boundaries > 0);
        assert!(snaps[idx].ir.contains("ckpt"));
        // Earlier stages have none.
        assert_eq!(snaps[0].ckpts, 0);
    }

    #[test]
    fn disabled_stages_leave_no_snapshot() {
        let p = sample();
        let (_, snaps) =
            compile_with_snapshots(&p, &CompilerConfig::turnstile(4)).unwrap();
        let stages: Vec<&str> = snaps.iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec!["legalize", "regalloc", "partition", "checkpoint"]);
    }

    #[test]
    fn snapshot_compile_agrees_with_plain_compile() {
        let p = sample();
        let plain = crate::compile(&p, &CompilerConfig::turnpike(4)).unwrap();
        let (snapped, _) =
            compile_with_snapshots(&p, &CompilerConfig::turnpike(4)).unwrap();
        assert_eq!(plain.program, snapped.program);
        assert_eq!(plain.stats, snapped.stats);
    }
}
