//! Static region analysis over machine programs.
//!
//! Summarizes each static region (the code between consecutive boundary
//! markers in PC order) — instruction, store, and checkpoint counts plus
//! the vulnerability inputs (loop depth, live-out pressure) the adaptive
//! protection policy scores regions by — for tests and tooling that audit
//! the partitioner's output at the machine level.

use crate::inst::MachInst;
use crate::program::{MachProgram, RegionId};
use crate::reg::NUM_PHYS_REGS;

/// Static summary of one region.
///
/// Every field is *static*: computed from the flat instruction stream (and
/// the program's compile-time metadata) without executing anything. The
/// dynamic counterpart of a region — the instruction count, stores, and
/// protection mode the simulator actually observes for a region *instance*
/// — lives in the sim's RBB, which since the per-region protection refactor
/// consumes the program's [`region_modes`](MachProgram::region_modes)
/// metadata; nothing here changes at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSummary {
    /// Region id (0 = the implicit entry region). Static.
    pub id: RegionId,
    /// First PC of the region's code. Static.
    pub start_pc: u32,
    /// One past the last PC (the next boundary or program end). Static.
    pub end_pc: u32,
    /// Instructions in the region (boundary markers excluded). Static: a
    /// dynamic instance may execute more (loops) or fewer (branches out).
    pub insts: u32,
    /// Regular stores. Static count of store instructions in the range.
    pub stores: u32,
    /// Checkpoint stores. Static.
    pub ckpts: u32,
    /// Whether the compiler supplied a recovery block for this region.
    pub has_recovery: bool,
    /// Loop-nesting estimate: how many backward-branch spans (a branch at
    /// `pc` targeting `t <= pc` covers `[t, pc]`) overlap this region's
    /// range. Static approximation of dynamic loop depth — a vulnerability
    /// input (deeper regions execute more often, exposing more strikes).
    pub loop_depth: u32,
    /// Live-out pressure estimate: distinct registers written in this
    /// region and read at any later PC in the flat stream. Static
    /// approximation of the values escaping the region — a vulnerability
    /// input (corruption of escaping state propagates).
    pub live_out: u32,
}

impl RegionSummary {
    /// All stores (regular + checkpoint) in the region.
    pub fn all_stores(&self) -> u32 {
        self.stores + self.ckpts
    }
}

/// Summaries of every static region, in PC order.
///
/// Note: these are *static* (flat code) counts; a dynamic region instance
/// follows branches and may execute instructions from several static
/// regions' ranges or repeat its own. The per-path store bound is enforced
/// by the compiler's partitioner dataflow, not recomputable from this
/// flat view alone. The sim does consume region *metadata*
/// ([`MachProgram::region_modes`]) at run time, but none of these summary
/// fields — they remain purely static audit data.
pub fn region_summaries(p: &MachProgram) -> Vec<RegionSummary> {
    let blank = |id: RegionId, start_pc: u32, p: &MachProgram| RegionSummary {
        id,
        start_pc,
        end_pc: start_pc,
        insts: 0,
        stores: 0,
        ckpts: 0,
        has_recovery: p.recovery.contains_key(&id),
        loop_depth: 0,
        live_out: 0,
    };
    let mut out = Vec::new();
    let mut cur = blank(RegionId(0), 0, p);
    for (pc, inst) in p.insts.iter().enumerate() {
        match inst {
            MachInst::RegionBoundary { id } => {
                cur.end_pc = pc as u32;
                out.push(cur);
                cur = blank(*id, pc as u32 + 1, p);
            }
            MachInst::Ckpt { .. } => {
                cur.ckpts += 1;
                cur.insts += 1;
            }
            MachInst::Store { .. } => {
                cur.stores += 1;
                cur.insts += 1;
            }
            _ => {
                cur.insts += 1;
            }
        }
    }
    cur.end_pc = p.insts.len() as u32;
    out.push(cur);

    // Backward-branch spans: a branch at `pc` with target `t <= pc` marks
    // `[t, pc]` as (an approximation of) a loop body.
    let spans: Vec<(u32, u32)> = p
        .insts
        .iter()
        .enumerate()
        .filter_map(|(pc, inst)| {
            let pc = pc as u32;
            match *inst {
                MachInst::Jump { target } | MachInst::BranchNz { target, .. } if target <= pc => {
                    Some((target, pc))
                }
                _ => None,
            }
        })
        .collect();
    // For each register, the last flat PC that reads it (usize::MAX = never).
    let mut last_read = [0u32; NUM_PHYS_REGS as usize];
    let mut ever_read = [false; NUM_PHYS_REGS as usize];
    for (pc, inst) in p.insts.iter().enumerate() {
        for &r in inst.uses().iter() {
            last_read[r.index()] = pc as u32;
            ever_read[r.index()] = true;
        }
    }
    for s in &mut out {
        s.loop_depth = spans
            .iter()
            .filter(|&&(t, b)| t < s.end_pc && b >= s.start_pc)
            .count() as u32;
        let mut escapes = [false; NUM_PHYS_REGS as usize];
        for inst in &p.insts[s.start_pc as usize..s.end_pc as usize] {
            if let Some(d) = inst.def() {
                if ever_read[d.index()] && last_read[d.index()] >= s.end_pc {
                    escapes[d.index()] = true;
                }
            }
        }
        s.live_out = escapes.iter().filter(|&&e| e).count() as u32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{MOperand, PhysReg};
    use crate::MachAddr;
    use turnpike_ir::DataSegment;

    fn r(i: u8) -> PhysReg {
        PhysReg::new(i).unwrap()
    }

    #[test]
    fn summaries_partition_the_program() {
        let insts = vec![
            MachInst::Mov {
                dst: r(0),
                src: MOperand::Imm(1),
            },
            MachInst::Store {
                src: MOperand::Reg(r(0)),
                addr: MachAddr::Abs(0x1000),
            },
            MachInst::RegionBoundary { id: RegionId(1) },
            MachInst::Ckpt { reg: r(0) },
            MachInst::RegionBoundary { id: RegionId(2) },
            MachInst::Ret { value: None },
        ];
        let p = MachProgram::from_insts("s", insts, DataSegment::zeroed(0, 0));
        let rs = region_summaries(&p);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].id, RegionId(0));
        assert_eq!(rs[0].stores, 1);
        assert_eq!(rs[0].ckpts, 0);
        assert_eq!(rs[0].insts, 2);
        assert_eq!(rs[1].id, RegionId(1));
        assert_eq!(rs[1].ckpts, 1);
        assert_eq!(rs[1].all_stores(), 1);
        assert_eq!(rs[2].id, RegionId(2));
        assert_eq!(rs[2].insts, 1); // ret
        assert_eq!(rs[2].start_pc, 5);
        assert_eq!(rs[2].end_pc, 6);
        assert!(!rs[0].has_recovery);
        // Straight-line code: no backward branches anywhere.
        assert!(rs.iter().all(|s| s.loop_depth == 0));
        // r0 is written in region 0 and read in region 1's checkpoint.
        assert_eq!(rs[0].live_out, 1);
        assert_eq!(rs[1].live_out, 0);
    }

    #[test]
    fn loop_depth_counts_overlapping_backedges() {
        // Region 0: a two-deep nest (outer backedge spans the inner one);
        // region 1: loop-free tail.
        let insts = vec![
            MachInst::Mov {
                dst: r(0),
                src: MOperand::Imm(4),
            },
            MachInst::BranchNz {
                cond: r(0),
                target: 1,
            }, // inner: [1,1]
            MachInst::BranchNz {
                cond: r(0),
                target: 0,
            }, // outer: [0,2]
            MachInst::RegionBoundary { id: RegionId(1) },
            MachInst::Mov {
                dst: r(1),
                src: MOperand::Reg(r(0)),
            },
            MachInst::Ret {
                value: Some(MOperand::Reg(r(1))),
            },
        ];
        let p = MachProgram::from_insts("loops", insts, DataSegment::zeroed(0, 0));
        let rs = region_summaries(&p);
        assert_eq!(rs[0].loop_depth, 2);
        assert_eq!(rs[1].loop_depth, 0);
        // r0 escapes region 0 (read by region 1); r1 is read by the ret
        // inside its own region, so it does not escape.
        assert_eq!(rs[0].live_out, 1);
        assert_eq!(rs[1].live_out, 0);
    }

    #[test]
    fn boundary_free_program_is_one_region() {
        let p = MachProgram::from_insts(
            "one",
            vec![MachInst::Nop, MachInst::Ret { value: None }],
            DataSegment::zeroed(0, 0),
        );
        let rs = region_summaries(&p);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].insts, 2);
        assert_eq!(rs[0].end_pc, 2);
    }
}
