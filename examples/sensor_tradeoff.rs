//! Design-space sweep: how many acoustic sensors should an in-order core
//! deploy? Fewer sensors cost less die area but lengthen the worst-case
//! detection latency, which lengthens store quarantine and (for Turnstile)
//! execution time. This example joins the three models — sensor grid,
//! hardware cost, and the cycle-level simulator — into one table.
//!
//! ```sh
//! cargo run --release --example sensor_tradeoff
//! ```

use turnpike::model::CostModel;
use turnpike::resilience::{geomean, run_kernel, RunSpec, Scheme};
use turnpike::sensor::SensorGrid;
use turnpike::workloads::{all_kernels, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernels: Vec<_> = all_kernels(Scale::Smoke)
        .into_iter()
        .step_by(6) // a spread of template shapes
        .collect();
    let cost = CostModel::calibrated();
    let turnpike_hw = {
        let maps = cost.color_maps(32, 4);
        let clq = cost.compact_clq(2);
        maps.area_um2 + clq.area_um2
    };

    println!(
        "{:>8} {:>6} {:>9} {:>12} {:>12} {:>14}",
        "sensors", "WCDL", "die ovh", "Turnstile", "Turnpike", "TP hw (um^2)"
    );
    for sensors in [300u32, 100, 50, 30, 15] {
        let grid = SensorGrid::new(sensors);
        let wcdl = grid.wcdl_cycles();
        let mut ts = Vec::new();
        let mut tp = Vec::new();
        for k in &kernels {
            let base = run_kernel(&k.program, &RunSpec::new(Scheme::Baseline))?;
            let b = base.outcome.stats.cycles as f64;
            let t1 = run_kernel(&k.program, &RunSpec::new(Scheme::Turnstile).with_wcdl(wcdl))?;
            let t2 = run_kernel(&k.program, &RunSpec::new(Scheme::Turnpike).with_wcdl(wcdl))?;
            ts.push(t1.outcome.stats.cycles as f64 / b);
            tp.push(t2.outcome.stats.cycles as f64 / b);
        }
        println!(
            "{:>8} {:>6} {:>8.2}% {:>11.3}x {:>11.3}x {:>14.1}",
            sensors,
            wcdl,
            grid.area_overhead() * 100.0,
            geomean(&ts),
            geomean(&tp),
            turnpike_hw,
        );
    }
    println!(
        "\nTakeaway: Turnpike keeps its overhead nearly flat as the sensor \
         budget shrinks,\nso a design can trade sensors (die area) for WCDL \
         without giving up performance —\nthe paper's motivation for \
         tolerating 10..50-cycle detection latencies."
    );
    Ok(())
}
