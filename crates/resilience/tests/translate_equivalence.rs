//! Superblock-translated dispatch must be observationally identical to the
//! per-instruction interpreter.
//!
//! The fast path elides work the quiet guard proves is a no-op — it must
//! never change a cycle count, a stat, a stall attribution, or a byte of
//! final memory. These tests pin that across the whole kernel catalog and
//! the scheme ladder, under random fault plans (where translation engages
//! only once every strike has resolved), and with snapshot capture enabled
//! at intervals that straddle superblock edges (which suppresses the fast
//! path entirely and must still agree with the untranslated run,
//! snapshots included).

use proptest::prelude::*;
use std::sync::Arc;
use turnpike_compiler::compile;
use turnpike_resilience::{RunSpec, Scheme};
use turnpike_sim::{Core, Fault, FaultKind, FaultPlan, SimOutcome, Translation};
use turnpike_workloads::{all_kernels, Scale};

/// Fault-free outcome of one compiled kernel, interpreter or superblocks.
fn golden(
    spec: &RunSpec,
    compiled: &turnpike_compiler::CompileOutput,
    translate: bool,
) -> SimOutcome {
    let mut cfg = spec.sim_config();
    cfg.translate = translate;
    let mut core = Core::new(&compiled.program, cfg);
    if translate {
        // Shared pre-decoded translation, as campaigns attach it.
        core.attach_translation(Arc::new(Translation::new(&compiled.program)));
    }
    core.run().unwrap()
}

#[test]
fn translated_golden_path_matches_interpreter_over_catalog() {
    for k in all_kernels(Scale::Smoke) {
        for scheme in std::iter::once(Scheme::Baseline).chain(Scheme::LADDER.iter().copied()) {
            let spec = RunSpec::new(scheme);
            let compiled = compile(&k.program, &spec.compiler_config()).unwrap();
            let interp = golden(&spec, &compiled, false);
            let fast = golden(&spec, &compiled, true);
            assert_eq!(
                interp, fast,
                "{}/{:?} {scheme}: translated golden run diverges",
                k.name, k.suite
            );
            assert!(interp.stats.insts > 0, "{} ran nothing", k.name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Strike runs: translation may only engage after the last fault has
    /// fired and resolved, and the handoff back and forth must not disturb
    /// the outcome — stats, stall cycles, recovery counts, final memory.
    #[test]
    fn translated_strike_runs_match_interpreter(
        kernel_idx in 0usize..36,
        scheme_idx in 0usize..8,
        strikes in prop::collection::vec(
            (1u64..30_000, 0u64..8, any::<bool>(), 0u8..24, 0u8..64),
            1..3,
        ),
    ) {
        let k = &all_kernels(Scale::Smoke)[kernel_idx];
        let scheme = Scheme::LADDER[scheme_idx % Scheme::LADDER.len()];
        let spec = RunSpec::new(scheme);
        let compiled = compile(&k.program, &spec.compiler_config()).unwrap();
        let wcdl = spec.sim_config().wcdl;
        let plan = FaultPlan::new(
            strikes
                .iter()
                .map(|&(cycle, lat, parity, reg, bit)| Fault {
                    strike_cycle: cycle,
                    detect_latency: lat.min(wcdl),
                    kind: if parity {
                        FaultKind::RegisterParity { reg, bit }
                    } else {
                        FaultKind::Datapath { bit }
                    },
                })
                .collect(),
        );
        let run = |translate: bool| {
            let mut cfg = spec.sim_config();
            cfg.translate = translate;
            let mut core = Core::new(&compiled.program, cfg);
            if translate {
                core.attach_translation(Arc::new(Translation::new(&compiled.program)));
            }
            core.run_with_faults(&plan).unwrap()
        };
        prop_assert_eq!(run(false), run(true), "{} {}: strike run diverges", k.name, scheme);
    }

    /// Snapshot capture keeps the core non-quiet, so a translated config
    /// with an interval — including ones far shorter than a superblock, so
    /// capture points land mid-block — must take the interpreter path and
    /// reproduce the untranslated run exactly: same outcome, same snapshot
    /// cadence, same captured state.
    #[test]
    fn snapshot_intervals_straddling_blocks_are_unaffected(
        kernel_idx in 0usize..36,
        turnpike in any::<bool>(),
        interval in 1u64..400,
    ) {
        let k = &all_kernels(Scale::Smoke)[kernel_idx];
        let scheme = if turnpike { Scheme::Turnpike } else { Scheme::Baseline };
        let spec = RunSpec::new(scheme);
        let compiled = compile(&k.program, &spec.compiler_config()).unwrap();
        let run = |translate: bool| {
            let mut cfg = spec.sim_config();
            cfg.translate = translate;
            let mut core = Core::new(&compiled.program, cfg);
            if translate {
                core.attach_translation(Arc::new(Translation::new(&compiled.program)));
            }
            core.run_collecting_snapshots(&FaultPlan::none(), interval).unwrap()
        };
        let (out_i, snaps_i) = run(false);
        let (out_t, snaps_t) = run(true);
        prop_assert_eq!(&out_i, &out_t, "{}: snapshot run outcome diverges", k.name);
        prop_assert_eq!(snaps_i.len(), snaps_t.len(), "{}: snapshot cadence diverges", k.name);
        for (a, b) in snaps_i.iter().zip(&snaps_t) {
            prop_assert_eq!(a.cycle(), b.cycle(), "{}: capture cycles diverge", k.name);
        }
        // Resuming from corresponding snapshots must agree too — the
        // captured states are behaviorally identical. First and last
        // bound the work; intermediate captures add nothing structural.
        for (a, b) in snaps_i.iter().zip(&snaps_t).take(1).chain(
            snaps_i.iter().zip(&snaps_t).last(),
        ) {
            let ra = Core::resume(&compiled.program, a, &FaultPlan::none()).unwrap();
            let rb = Core::resume(&compiled.program, b, &FaultPlan::none()).unwrap();
            prop_assert_eq!(ra, rb, "{}: resumed outcomes diverge", k.name);
        }
    }
}
