//! Committed load queue designs (paper §4.3.1).
//!
//! The CLQ proves a committing regular store *WAR-free*: its address was not
//! read by any still-unverified region, so even if its (unverified) value is
//! corrupted, re-executing from the oldest unverified region rewrites it
//! before anything reads it and recovery still succeeds (paper Figure 12).
//! WAR-free stores bypass the gated store buffer entirely. The check must
//! span *all* unverified regions — recovery rolls back to the oldest one, so
//! a load anywhere in the unverified window is replayed and would observe a
//! prematurely released value.
//!
//! Two designs share the [`Clq`] trait:
//!
//! * [`IdealClq`] — unbounded per-region address matching (CAM); the
//!   100%-accurate comparison point of Figures 14/15.
//! * [`CompactClq`] — N entries (default 2), one `[min, max]` address range
//!   per region; conservative (a store inside the range counts as WAR even
//!   if the exact address was never loaded) and subject to overflow, which
//!   triggers the selective-control automaton of Figure 13: fast release is
//!   disabled, the queue is cleared, and insertion resumes at a region
//!   boundary once the prior region has been verified.

/// Statistics every CLQ design collects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClqStats {
    /// Regular stores checked against the CLQ.
    pub stores_checked: u64,
    /// Stores proven WAR-free (fast released).
    pub war_free: u64,
    /// Loads recorded.
    pub loads_recorded: u64,
    /// Overflows (compact design only).
    pub overflows: u64,
    /// Sum of entry occupancy sampled at each load (for the average).
    pub occupancy_sum: u64,
    /// Samples taken for the average.
    pub occupancy_samples: u64,
    /// Peak entries populated.
    pub peak_entries: u32,
}

impl ClqStats {
    /// Average populated entries over the run.
    pub fn avg_entries(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.occupancy_samples as f64
        }
    }

    /// Fraction of checked stores proven WAR-free.
    pub fn war_free_ratio(&self) -> f64 {
        if self.stores_checked == 0 {
            0.0
        } else {
            self.war_free as f64 / self.stores_checked as f64
        }
    }
}

/// Common interface of the CLQ designs.
///
/// `Send + Sync` because a CLQ rides inside [`crate::CoreSnapshot`]s,
/// which fault campaigns share across worker threads; every design is
/// plain data. [`Clq::boxed_clone`] makes the
/// trait object cloneable for the same snapshot machinery.
pub trait Clq: std::fmt::Debug + Send + Sync {
    /// Record a committed load in the current region.
    fn record_load(&mut self, addr: u64, region_seq: u64);
    /// Check (and count) whether a store may bypass verification.
    fn check_war_free(&mut self, addr: u64, region_seq: u64) -> bool;
    /// A new region starts.
    fn on_region_start(&mut self, region_seq: u64, prior_verified: bool);
    /// A region was verified; its entries can be reclaimed.
    fn on_region_verified(&mut self, region_seq: u64);
    /// Error recovery: reset transient state.
    fn on_recovery(&mut self);
    /// Collected statistics.
    fn stats(&self) -> ClqStats;
    /// Clone the design behind the trait object (snapshot support).
    fn boxed_clone(&self) -> Box<dyn Clq>;
    /// Append a canonical encoding of every piece of state that affects
    /// future queries, with region sequence numbers made relative to
    /// `seq_base`. Two same-design CLQs whose signatures agree answer every
    /// future call sequence identically (the early-exit replay compares a
    /// strike run at `seq_base = ds` against a golden snapshot at `0`).
    /// Statistics counters are deliberately excluded — the replay
    /// synthesizes them.
    fn replay_signature(&self, seq_base: u64, out: &mut Vec<u64>);
}

impl Clone for Box<dyn Clq> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// A CLQ that never exists: every store is quarantined (Turnstile).
#[derive(Debug, Clone, Default)]
pub struct NoClq {
    stats: ClqStats,
}

impl Clq for NoClq {
    fn record_load(&mut self, _addr: u64, _region_seq: u64) {}
    fn check_war_free(&mut self, _addr: u64, _region_seq: u64) -> bool {
        self.stats.stores_checked += 1;
        false
    }
    fn on_region_start(&mut self, _region_seq: u64, _prior_verified: bool) {}
    fn on_region_verified(&mut self, _region_seq: u64) {}
    fn on_recovery(&mut self) {}
    fn stats(&self) -> ClqStats {
        self.stats
    }

    fn boxed_clone(&self) -> Box<dyn Clq> {
        Box::new(self.clone())
    }

    fn replay_signature(&self, _seq_base: u64, _out: &mut Vec<u64>) {
        // Stateless: every answer is "quarantine".
    }
}

/// Unbounded address-matching CLQ.
#[derive(Debug, Clone, Default)]
pub struct IdealClq {
    /// (region, sorted-unique load addresses).
    regions: Vec<(u64, Vec<u64>)>,
    stats: ClqStats,
}

impl Clq for IdealClq {
    fn record_load(&mut self, addr: u64, region_seq: u64) {
        self.stats.loads_recorded += 1;
        let entry = match self.regions.iter_mut().find(|(r, _)| *r == region_seq) {
            Some(e) => e,
            None => {
                self.regions.push((region_seq, Vec::new()));
                self.regions.last_mut().expect("just pushed")
            }
        };
        if let Err(pos) = entry.1.binary_search(&addr) {
            entry.1.insert(pos, addr);
        }
        let occ = self.regions.len() as u64;
        self.stats.occupancy_sum += occ;
        self.stats.occupancy_samples += 1;
        self.stats.peak_entries = self.stats.peak_entries.max(occ as u32);
    }

    fn check_war_free(&mut self, addr: u64, _region_seq: u64) -> bool {
        self.stats.stores_checked += 1;
        // Any unverified region's load blocks the release, not only the
        // storing region's own: rollback replays the whole unverified window.
        let war = self
            .regions
            .iter()
            .any(|(_, addrs)| addrs.binary_search(&addr).is_ok());
        if !war {
            self.stats.war_free += 1;
        }
        !war
    }

    fn on_region_start(&mut self, _region_seq: u64, _prior_verified: bool) {}

    fn on_region_verified(&mut self, region_seq: u64) {
        self.regions.retain(|(r, _)| *r != region_seq);
    }

    fn on_recovery(&mut self) {
        self.regions.clear();
    }

    fn stats(&self) -> ClqStats {
        self.stats
    }

    fn boxed_clone(&self) -> Box<dyn Clq> {
        Box::new(self.clone())
    }

    fn replay_signature(&self, seq_base: u64, out: &mut Vec<u64>) {
        for (seq, addrs) in &self.regions {
            out.push(seq.wrapping_sub(seq_base));
            out.push(addrs.len() as u64);
            out.extend_from_slice(addrs);
        }
    }
}

/// Range-compressed CLQ with the Figure-13 overflow automaton.
#[derive(Debug, Clone)]
pub struct CompactClq {
    entries: Vec<RangeEntry>,
    capacity: usize,
    enabled: bool,
    stats: ClqStats,
}

#[derive(Debug, Clone, Copy)]
struct RangeEntry {
    region_seq: u64,
    min: u64,
    max: u64,
}

impl CompactClq {
    /// A compact CLQ with `entries` range entries (the paper defaults to 2).
    pub fn new(entries: u32) -> Self {
        CompactClq {
            entries: Vec::new(),
            capacity: entries.max(1) as usize,
            enabled: true,
            stats: ClqStats::default(),
        }
    }

    /// Whether fast release is currently enabled (Figure 13 state).
    pub fn enabled(&self) -> bool {
        self.enabled
    }
}

impl Clq for CompactClq {
    fn record_load(&mut self, addr: u64, region_seq: u64) {
        if !self.enabled {
            return;
        }
        self.stats.loads_recorded += 1;
        match self.entries.iter_mut().find(|e| e.region_seq == region_seq) {
            Some(e) => {
                e.min = e.min.min(addr);
                e.max = e.max.max(addr);
            }
            None => {
                if self.entries.len() >= self.capacity {
                    // Overflow: disable fast release and wipe the queue.
                    self.enabled = false;
                    self.entries.clear();
                    self.stats.overflows += 1;
                    return;
                }
                self.entries.push(RangeEntry {
                    region_seq,
                    min: addr,
                    max: addr,
                });
            }
        }
        let occ = self.entries.len() as u64;
        self.stats.occupancy_sum += occ;
        self.stats.occupancy_samples += 1;
        self.stats.peak_entries = self.stats.peak_entries.max(occ as u32);
    }

    fn check_war_free(&mut self, addr: u64, _region_seq: u64) -> bool {
        self.stats.stores_checked += 1;
        if !self.enabled {
            return false;
        }
        let war = self.entries.iter().any(|e| addr >= e.min && addr <= e.max);
        if !war {
            self.stats.war_free += 1;
        }
        !war
    }

    fn on_region_start(&mut self, _region_seq: u64, prior_verified: bool) {
        if !self.enabled && prior_verified {
            self.enabled = true;
        }
    }

    fn on_region_verified(&mut self, region_seq: u64) {
        self.entries.retain(|e| e.region_seq != region_seq);
    }

    fn on_recovery(&mut self) {
        self.entries.clear();
        self.enabled = true;
    }

    fn stats(&self) -> ClqStats {
        self.stats
    }

    fn boxed_clone(&self) -> Box<dyn Clq> {
        Box::new(self.clone())
    }

    fn replay_signature(&self, seq_base: u64, out: &mut Vec<u64>) {
        out.push(u64::from(self.enabled));
        for e in &self.entries {
            out.push(e.region_seq.wrapping_sub(seq_base));
            out.push(e.min);
            out.push(e.max);
        }
    }
}

/// Bounded content-addressed CLQ: exact address matching like the ideal
/// design, but with a fixed number of address entries and the Figure-13
/// overflow automaton. This is the design the paper argues against on
/// hardware-cost grounds (CAM search per store); it bounds the precision
/// loss the compact range design accepts in exchange for RAM-only lookups.
#[derive(Debug, Clone)]
pub struct CamClq {
    /// (region, address) pairs.
    entries: Vec<(u64, u64)>,
    capacity: usize,
    enabled: bool,
    stats: ClqStats,
}

impl CamClq {
    /// A CAM CLQ holding at most `entries` load addresses.
    pub fn new(entries: u32) -> Self {
        CamClq {
            entries: Vec::new(),
            capacity: entries.max(1) as usize,
            enabled: true,
            stats: ClqStats::default(),
        }
    }

    /// Whether fast release is currently enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }
}

impl Clq for CamClq {
    fn record_load(&mut self, addr: u64, region_seq: u64) {
        if !self.enabled {
            return;
        }
        self.stats.loads_recorded += 1;
        if self.entries.contains(&(region_seq, addr)) {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.enabled = false;
            self.entries.clear();
            self.stats.overflows += 1;
            return;
        }
        self.entries.push((region_seq, addr));
        let occ = self.entries.len() as u64;
        self.stats.occupancy_sum += occ;
        self.stats.occupancy_samples += 1;
        self.stats.peak_entries = self.stats.peak_entries.max(occ as u32);
    }

    fn check_war_free(&mut self, addr: u64, _region_seq: u64) -> bool {
        self.stats.stores_checked += 1;
        if !self.enabled {
            return false;
        }
        let war = self.entries.iter().any(|&(_, a)| a == addr);
        if !war {
            self.stats.war_free += 1;
        }
        !war
    }

    fn on_region_start(&mut self, _region_seq: u64, prior_verified: bool) {
        if !self.enabled && prior_verified {
            self.enabled = true;
        }
    }

    fn on_region_verified(&mut self, region_seq: u64) {
        self.entries.retain(|&(r, _)| r != region_seq);
    }

    fn on_recovery(&mut self) {
        self.entries.clear();
        self.enabled = true;
    }

    fn stats(&self) -> ClqStats {
        self.stats
    }

    fn boxed_clone(&self) -> Box<dyn Clq> {
        Box::new(self.clone())
    }

    fn replay_signature(&self, seq_base: u64, out: &mut Vec<u64>) {
        out.push(u64::from(self.enabled));
        for &(seq, addr) in &self.entries {
            out.push(seq.wrapping_sub(seq_base));
            out.push(addr);
        }
    }
}

/// Construct the CLQ named by a [`ClqKind`](crate::ClqKind).
pub fn build_clq(kind: crate::ClqKind) -> Box<dyn Clq> {
    match kind {
        crate::ClqKind::Off => Box::new(NoClq::default()),
        crate::ClqKind::Ideal => Box::new(IdealClq::default()),
        crate::ClqKind::Compact(n) => Box::new(CompactClq::new(n)),
        crate::ClqKind::Cam(n) => Box::new(CamClq::new(n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_detects_exact_war() {
        let mut c = IdealClq::default();
        c.record_load(0x100, 0);
        c.record_load(0x200, 0);
        assert!(!c.check_war_free(0x100, 0)); // WAR
        assert!(c.check_war_free(0x180, 0)); // between loads: still free
                                             // Another region's store still conflicts while region 0 is
                                             // unverified: rollback replays region 0's loads.
        assert!(!c.check_war_free(0x100, 1));
        c.on_region_verified(0);
        assert!(c.check_war_free(0x100, 1)); // reclaimed: free
        assert_eq!(c.stats().war_free, 2);
        assert_eq!(c.stats().stores_checked, 4);
    }

    #[test]
    fn compact_ranges_are_conservative() {
        let mut c = CompactClq::new(2);
        c.record_load(0x100, 0);
        c.record_load(0x200, 0);
        assert!(
            !c.check_war_free(0x180, 0),
            "inside range: conservative WAR"
        );
        assert!(c.check_war_free(0x300, 0));
        assert!(c.check_war_free(0x080, 0));
    }

    #[test]
    fn compact_overflow_disables_until_verified_boundary() {
        let mut c = CompactClq::new(1);
        c.record_load(0x100, 0);
        c.record_load(0x100, 1); // needs a second entry: overflow
        assert!(!c.enabled());
        assert_eq!(c.stats().overflows, 1);
        // While disabled, everything is quarantined.
        assert!(!c.check_war_free(0x999, 1));
        // Region boundary without prior verification: stays disabled.
        c.on_region_start(2, false);
        assert!(!c.enabled());
        // Boundary with prior region verified: re-enables.
        c.on_region_start(3, true);
        assert!(c.enabled());
        assert!(c.check_war_free(0x999, 3));
    }

    #[test]
    fn verification_reclaims_entries() {
        let mut c = CompactClq::new(2);
        c.record_load(0x100, 0);
        c.record_load(0x500, 1);
        assert_eq!(c.stats().peak_entries, 2);
        c.on_region_verified(0);
        c.record_load(0x900, 2); // fits again, no overflow
        assert!(c.enabled());
        assert_eq!(c.stats().overflows, 0);
    }

    #[test]
    fn no_clq_never_bypasses() {
        let mut c = NoClq::default();
        c.record_load(0x100, 0);
        assert!(!c.check_war_free(0x200, 0));
        assert_eq!(c.stats().war_free, 0);
        assert_eq!(c.stats().stores_checked, 1);
    }

    #[test]
    fn recovery_resets_compact_state() {
        let mut c = CompactClq::new(1);
        c.record_load(0x100, 0);
        c.record_load(0x100, 1);
        assert!(!c.enabled());
        c.on_recovery();
        assert!(c.enabled());
        assert!(c.check_war_free(0x100, 5));
    }

    #[test]
    fn stats_ratios() {
        let mut s = ClqStats::default();
        assert_eq!(s.avg_entries(), 0.0);
        assert_eq!(s.war_free_ratio(), 0.0);
        s.stores_checked = 4;
        s.war_free = 3;
        s.occupancy_sum = 10;
        s.occupancy_samples = 5;
        assert!((s.war_free_ratio() - 0.75).abs() < 1e-12);
        assert!((s.avg_entries() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cam_matches_exactly_and_overflows() {
        let mut c = CamClq::new(2);
        c.record_load(0x100, 0);
        c.record_load(0x200, 0);
        assert!(!c.check_war_free(0x100, 0), "exact WAR");
        assert!(
            c.check_war_free(0x180, 0),
            "between loads: free (unlike range)"
        );
        // Third distinct address overflows.
        c.record_load(0x300, 0);
        assert!(!c.enabled());
        assert!(!c.check_war_free(0x999, 0), "disabled quarantines all");
        c.on_region_start(1, true);
        assert!(c.enabled());
        // Duplicate loads do not consume entries.
        c.record_load(0x500, 1);
        c.record_load(0x500, 1);
        assert!(c.enabled());
        // Unverified region 1's load blocks any region's store to 0x500.
        assert!(!c.check_war_free(0x500, 2));
        c.on_region_verified(1);
        assert!(c.check_war_free(0x500, 2));
    }

    #[test]
    fn replay_signatures_are_shift_invariant() {
        // Same load pattern, one run offset by 3 region seqs: signatures
        // agree once the strike side rebases by its shift.
        for kind in [
            crate::ClqKind::Off,
            crate::ClqKind::Ideal,
            crate::ClqKind::Compact(2),
            crate::ClqKind::Cam(4),
        ] {
            let mut golden = build_clq(kind);
            let mut strike = build_clq(kind);
            for (addr, seq) in [(0x100u64, 0u64), (0x200, 0), (0x140, 1)] {
                golden.record_load(addr, seq);
                strike.record_load(addr, seq + 3);
            }
            let (mut g, mut s) = (Vec::new(), Vec::new());
            golden.replay_signature(0, &mut g);
            strike.replay_signature(3, &mut s);
            assert_eq!(g, s, "{kind:?}");
            // A divergent address breaks the match (stateful designs).
            strike.record_load(0x999, 4);
            s.clear();
            strike.replay_signature(3, &mut s);
            if !matches!(kind, crate::ClqKind::Off) {
                assert_ne!(g, s, "{kind:?}");
            }
        }
    }

    #[test]
    fn builder_dispatches() {
        let c = build_clq(crate::ClqKind::Off);
        assert_eq!(c.stats().stores_checked, 0);
        let c = build_clq(crate::ClqKind::Ideal);
        assert_eq!(c.stats().loads_recorded, 0);
        let c = build_clq(crate::ClqKind::Compact(2));
        assert_eq!(c.stats().overflows, 0);
    }
}
